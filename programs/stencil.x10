// X10-Lite: a mini stencil code exercising the condensed-form frontend.
def relax() {
  foreach (point p : interior) { compute; }
}
def halo() {
  ateach (place q : dist) { compute; }
}
def main() {
  for (int it = 0; it < iters; it++) {
    finish { relax(); }
    halo();
  }
  async at (here.next()) { compute; }
  end;
}
