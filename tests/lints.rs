//! Property tests for the lint suite's dynamic-evidence contract.
//!
//! Two properties tie the static lint engine to the exact semantics:
//!
//! 1. **Witness replay** — every witness the bounded search finds is a
//!    real schedule: replaying its successor choices from the initial
//!    state reaches a tree where the two racing labels are co-enabled
//!    (`parallel(T)` contains the pair).
//! 2. **No confirmed ghost races** — on programs the explorer can fully
//!    enumerate, a race diagnostic at confidence `confirmed` always names
//!    a pair the exact dynamic MHP contains. The explorer is ground
//!    truth; `confirmed` must never overclaim.

use fx10::analysis::analyze_ci;
use fx10::analysis::race::{accesses, detect_races_with};
use fx10::lints::{lint, Confidence, LintOptions};
use fx10::robust::CancelToken;
use fx10::semantics::witness::{find_witness_simple, witness_exhibits, WitnessSearch};
use fx10::semantics::{explore, ExploreConfig};
use fx10::suite::{random_fx10_loop_free, RandomConfig};
use proptest::prelude::*;

fn cfg(seed: u64, methods: usize, stmts: usize, depth: usize) -> RandomConfig {
    RandomConfig {
        methods,
        stmts_per_method: stmts,
        max_depth: depth,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: found witness schedules replay to co-occurring
    /// redexes. (Loop-free programs keep the raw space finite.)
    #[test]
    fn witness_schedules_replay_to_co_enabled_pairs(
        seed in 0u64..10_000,
        methods in 1usize..3,
        stmts in 1usize..5,
        depth in 0usize..3,
    ) {
        let p = random_fx10_loop_free(cfg(seed, methods, stmts, depth));
        let ci = analyze_ci(&p);
        let races = detect_races_with(&accesses(&p), |x, y| ci.may_happen_in_parallel(x, y));
        for race in &races {
            let target = (race.first.label, race.second.label);
            if let WitnessSearch::Found(w) =
                find_witness_simple(&p, &[], target.0, target.1, 60_000)
            {
                prop_assert!(
                    witness_exhibits(&p, &[], &w.schedule, target),
                    "schedule {:?} does not exhibit {:?}",
                    w.schedule,
                    target
                );
            }
        }
    }

    /// Property 2: on fully-explorable programs, `confirmed` race
    /// diagnostics only name pairs the exact dynamic MHP contains.
    #[test]
    fn confirmed_races_are_in_the_exact_dynamic_mhp(
        seed in 0u64..10_000,
        methods in 1usize..3,
        stmts in 1usize..5,
        depth in 0usize..3,
    ) {
        let p = random_fx10_loop_free(cfg(seed, methods, stmts, depth));
        let e = explore(&p, &[], ExploreConfig {
            max_states: 60_000,
            ..ExploreConfig::default()
        });
        prop_assume!(!e.truncated);

        let report = lint(
            &p,
            &LintOptions { witness_states: 60_000, ..LintOptions::default() },
            &CancelToken::new(),
        ).unwrap();
        for d in &report.diagnostics {
            if !d.code.starts_with("race-") || d.confidence != Confidence::Confirmed {
                continue;
            }
            let (a, b) = d.pair.expect("race diagnostics carry their pair");
            let key = (a.min(b), a.max(b));
            prop_assert!(
                e.mhp.contains(&key),
                "lint confirmed {:?} but the explorer's exact MHP refutes it",
                key
            );
            prop_assert!(d.witness.is_some(), "confirmed races carry a witness");
        }
    }
}
