//! The differential soundness gate for the abstract interpreter, run as
//! a repo-wide test: on every checked-in `.fx10` program and on random
//! programs, the abstract facts must over-approximate the exact
//! explorer's reachable states (every visited concrete state at every
//! front label is admitted by the label's abstract environment), and no
//! MHP pair the feasibility oracle prunes may occur in the exact dynamic
//! MHP relation. Both checks run at all three domains — const, interval,
//! parity — because each has a different Galois connection to break.

use fx10_absint::{soundness_gate_all, Domain, MAX_VIOLATIONS};
use fx10_suite::{random_fx10, RandomConfig};
use fx10_syntax::Program;
use proptest::prelude::*;

const GATE_STATES: usize = 30_000;

fn fixture_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/programs");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "fx10"))
        .filter(|p| {
            // `bad_*` fixtures exist to fail the parser.
            !p.file_name().unwrap().to_string_lossy().starts_with("bad_")
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 10,
        "fixture sweep looks too small: {files:?}"
    );
    files
}

#[test]
fn gate_holds_on_every_checked_in_program() {
    for path in fixture_files() {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let p = Program::parse(&src).expect("checked-in fixtures parse");
        for input in [&[][..], &[1, 2, 0, 3][..]] {
            let reports = soundness_gate_all(&p, input, GATE_STATES)
                .unwrap_or_else(|e| panic!("{path:?}: {e}"));
            assert_eq!(reports.len(), Domain::ALL.len());
            for r in reports {
                assert!(
                    r.sound(),
                    "{path:?} input {input:?} {}: {:?}",
                    r.domain,
                    r.violations
                );
                assert!(r.violations.len() <= MAX_VIOLATIONS + 1);
                assert!(
                    r.pairs_after <= r.pairs_before,
                    "{path:?}: pruning must never add pairs"
                );
            }
        }
    }
}

#[test]
fn gate_reports_name_every_domain() {
    let p = Program::parse("def main() { async { a[0] = a[0] + 1; } a[0] = a[1] + 1; }").unwrap();
    let reports = soundness_gate_all(&p, &[0, 0], GATE_STATES).unwrap();
    let domains: Vec<Domain> = reports.iter().map(|r| r.domain).collect();
    assert_eq!(domains, Domain::ALL.to_vec());
    for r in &reports {
        assert!(r.states > 0 && r.checks > 0);
    }
}

fn rand_cfg(seed: u64, methods: usize, stmts: usize, depth: usize) -> RandomConfig {
    RandomConfig {
        methods,
        stmts_per_method: stmts,
        max_depth: depth,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Galois soundness on random programs: whatever the generator
    /// emits — loops, nested finish/async, calls — the abstract facts
    /// contain the exact semantics at every domain, and pruned pairs
    /// never show up dynamically. Truncated explorations keep the gate
    /// valid on the explored prefix, so no prop_assume is needed.
    #[test]
    fn random_programs_pass_the_gate_at_all_domains(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..5,
        depth in 0usize..3,
        input in proptest::collection::vec(-3i64..4, 0..4),
    ) {
        let p = random_fx10(rand_cfg(seed, methods, stmts, depth));
        let reports = soundness_gate_all(&p, &input, 10_000).expect("gate runs");
        for r in reports {
            prop_assert!(
                r.sound(),
                "seed {} {}: {:?}",
                seed,
                r.domain,
                r.violations
            );
        }
    }
}
