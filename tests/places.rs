//! E12: the §8 places extension — same-place refinement of MHP.

use fx10::analysis::analysis::SolverKind;
use fx10::analysis::Mode;
use fx10::frontend::{analyze_condensed, parse, same_place_pairs, PlaceAssignment};
use fx10::syntax::Label;

#[test]
fn place_refinement_never_adds_pairs() {
    for src in [
        "def main() { async at (p) { compute; } compute; }",
        "def f() { compute; } def main() { f(); async at (q) { f(); } }",
        "def main() { ateach (q) { compute; } foreach (r) { compute; } }",
    ] {
        let p = parse(src).unwrap();
        let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
        let places = PlaceAssignment::compute(&p);
        let refined = same_place_pairs(&a, &places);
        assert!(refined.is_subset(a.mhp()));
    }
}

#[test]
fn cross_place_parallelism_is_filtered() {
    // Two `async at` bodies run in parallel with each other and the main
    // task, but at three distinct places — the same-place relation on
    // their compute labels is empty.
    let p = parse(
        "def main() {\n\
           async at (p1) { compute; compute; }\n\
           async at (p2) { compute; }\n\
           compute;\n\
         }",
    )
    .unwrap();
    // Labels: 0=async1, 1,2=bodies, 3=async2, 4=body, 5=main compute.
    let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
    let places = PlaceAssignment::compute(&p);
    assert!(a.may_happen_in_parallel(Label(1), Label(4)));
    assert!(a.may_happen_in_parallel(Label(1), Label(5)));
    let refined = same_place_pairs(&a, &places);
    assert!(!refined.contains(Label(1), Label(4)), "different at-places");
    assert!(!refined.contains(Label(1), Label(5)), "body vs place 0");
    // Statements within one at-body still share their place.
    assert_eq!(places.place(Label(1)), places.place(Label(2)));
}

#[test]
fn same_place_contention_is_kept() {
    // A plain async stays at the spawner's place: the race remains in the
    // refined relation.
    let p = parse("def main() { async { compute; } compute; }").unwrap();
    let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
    let places = PlaceAssignment::compute(&p);
    let refined = same_place_pairs(&a, &places);
    assert!(refined.contains(Label(1), Label(2)));
    assert_eq!(&refined, a.mhp());
}

#[test]
fn migratory_methods_stay_sound() {
    // f runs at place 0 (first call) and at the at-body's place (second
    // call): its labels must remain in the same-place relation with both
    // contexts.
    let p = parse(
        "def f() { async { compute; } }\n\
         def main() {\n\
           f();\n\
           async at (q) { f(); compute; }\n\
           compute;\n\
         }",
    )
    .unwrap();
    let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
    let places = PlaceAssignment::compute(&p);
    let refined = same_place_pairs(&a, &places);
    // f's async body (label 1) may happen in parallel with main's tail
    // compute; since f is migratory the pair must survive refinement.
    let f_body = Label(1);
    let main_tail = p.method(p.main()).body.nodes.last().unwrap().label;
    if a.may_happen_in_parallel(f_body, main_tail) {
        assert!(refined.contains(f_body, main_tail));
    }
    assert_eq!(places.place(f_body).0, u32::MAX);
}

#[test]
fn benchmarks_refine_without_losing_soundness() {
    for name in ["sor", "moldyn", "mg", "plasma"] {
        let bm = fx10::suite::benchmark(name).unwrap();
        let a = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Worklist);
        let places = PlaceAssignment::compute(&bm.program);
        let refined = same_place_pairs(&a, &places);
        assert!(refined.is_subset(a.mhp()), "{name}");
        assert!(
            refined.len() <= a.mhp().len(),
            "{name}: refinement can only shrink"
        );
        // Consistency: the refinement removes exactly the cross-place
        // pairs.
        let removed = a.mhp().len() - refined.len();
        let cross = a
            .mhp()
            .iter_pairs()
            .filter(|&(x, y)| !places.may_share_place(x, y))
            .count();
        assert_eq!(removed, cross, "{name}");
    }
}
