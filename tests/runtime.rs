//! The runtime's two differential oracles, executed for real.
//!
//! - **Sequential elision** (FX10's defining property, §2): for
//!   race-free programs, dropping every `async`/`finish` and running
//!   serially is *indistinguishable* from any parallel schedule. We run
//!   the instrumented serial elider against the work-stealing runtime at
//!   `jobs ∈ {1, 2, 8}` across many schedule seeds and demand identical
//!   final arrays, step counts, and termination verdicts.
//! - **Dynamic ⊆ static** (Theorem 2 as an executable oracle): every
//!   race pair the vector-clock detector observes on a real run must be
//!   contained in the explorer's exact dynamic MHP and in the
//!   context-sensitive static over-approximation. A detected race
//!   *outside* the static relation would be a counterexample to the
//!   paper's soundness theorem.
//!
//! Plus the witness bridge: every race the lint suite *confirmed* with a
//! replayable schedule must replay to an actually-detected race on the
//! instrumented runtime — static analysis, bounded exploration and real
//! execution all agreeing on the same pair.

use std::collections::BTreeSet;

use fx10::analysis::race::{accesses, detect_races_with};
use fx10::analysis::{analyze, analyze_ci};
use fx10::robust::{Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error, PanicFault};
use fx10::runtime::{replay_detect, run_elision, run_parallel, RtConfig, RunReport};
use fx10::semantics::{explore, ExploreConfig};
use fx10::suite::{random_fx10, RandomConfig};
use fx10::syntax::Program;
use proptest::prelude::*;

const STEP_CAP: u64 = 400_000;

fn elide(p: &Program) -> RunReport {
    run_elision(p, &[], STEP_CAP, Budget::unlimited(), &CancelToken::new())
        .expect("elision must not fail on test programs")
}

fn par(p: &Program, jobs: usize, seed: u64) -> RunReport {
    let cfg = RtConfig {
        jobs,
        seed,
        grain: 0,
        max_steps: STEP_CAP,
    };
    run_parallel(
        p,
        &[],
        &cfg,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
    )
    .expect("parallel run must not fail on test programs")
}

fn statically_racy(p: &Program) -> bool {
    let cs = analyze(p);
    let acc = accesses(p);
    !detect_races_with(&acc, |x, y| cs.may_happen_in_parallel(x, y)).is_empty()
}

fn fixture(name: &str) -> Program {
    let path = format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Program::parse(&src).unwrap_or_else(|e| panic!("parse {path}: {e:?}"))
}

/// Every `.fx10` fixture that parses (the `bad_*` family exists to
/// exercise parse errors and is skipped).
fn all_fixtures() -> Vec<(String, Program)> {
    let dir = format!("{}/programs", env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("programs/ directory")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) if n.ends_with(".fx10") && !n.starts_with("bad_") => n.to_string(),
            _ => continue,
        };
        let src = std::fs::read_to_string(&path).expect("read fixture");
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("parse {name}: {e:?}"));
        out.push((name, p));
    }
    assert!(out.len() >= 10, "fixture sweep looks too small");
    out
}

// ---------------------------------------------------------------------
// Oracle (a): sequential elision on the race-free fixtures.
// ---------------------------------------------------------------------

#[test]
fn race_free_fixtures_match_elision_across_jobs_and_seeds() {
    for name in ["rt_fanout.fx10", "example22.fx10", "lint_clean.fx10"] {
        let p = fixture(name);
        assert!(!statically_racy(&p), "{name} is meant to be race-free");
        let serial = elide(&p);
        assert!(serial.completed, "{name} elision must complete");
        assert!(serial.races.is_empty(), "{name}: elision saw a race");
        for jobs in [1, 2, 8] {
            for seed in 0..16u64 {
                let r = par(&p, jobs, seed);
                assert_eq!(r.array, serial.array, "{name} jobs={jobs} seed={seed}");
                assert_eq!(r.steps, serial.steps, "{name} jobs={jobs} seed={seed}");
                assert!(r.completed, "{name} jobs={jobs} seed={seed}");
                assert!(r.races.is_empty(), "{name} jobs={jobs} seed={seed}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Oracle (b): dynamic ⊆ exact dynamic MHP ⊆ CS static, fixture sweep.
// ---------------------------------------------------------------------

#[test]
fn detected_races_are_contained_in_dynamic_and_static_mhp_on_all_fixtures() {
    for (name, p) in all_fixtures() {
        let cs = analyze(&p);
        let mut observed: BTreeSet<(fx10::syntax::Label, fx10::syntax::Label)> = BTreeSet::new();
        let serial = elide(&p);
        observed.extend(serial.race_pairs());
        for (jobs, seed) in [(2, 0), (2, 3), (8, 1), (8, 7)] {
            observed.extend(par(&p, jobs, seed).race_pairs());
        }
        for &(x, y) in &observed {
            assert!(
                cs.may_happen_in_parallel(x, y),
                "{name}: detected race ({}, {}) escapes the static MHP — \
                 Theorem 2 counterexample",
                p.labels().display(x),
                p.labels().display(y)
            );
        }
        // The explorer's dynamic MHP is exact only when untruncated; on
        // the chaos fixtures the interleaving space alone overflows any
        // reasonable cap, so the middle leg is checked where exhaustive.
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 60_000,
                ..ExploreConfig::default()
            },
        );
        if !e.truncated {
            for &(x, y) in &observed {
                assert!(
                    e.mhp.contains(&(x, y)),
                    "{name}: detected race ({}, {}) not in the exact dynamic MHP",
                    p.labels().display(x),
                    p.labels().display(y)
                );
            }
        }
    }
}

#[test]
fn the_racy_fixture_pins_both_planted_pairs() {
    let p = fixture("rt_racy.fx10");
    assert!(statically_racy(&p));
    let l = |n: &str| p.labels().lookup(n).expect("fixture label");
    let want: BTreeSet<_> = [
        fx10::semantics::parallel::pair(l("W1"), l("W2")),
        fx10::semantics::parallel::pair(l("W3"), l("R1")),
    ]
    .into_iter()
    .collect();
    // The detector sees both pairs under instrumented elision (the
    // detector is schedule-independent on the executed path) and on
    // every real parallel run.
    assert_eq!(elide(&p).race_pairs(), want, "elision");
    for seed in 0..8u64 {
        assert_eq!(par(&p, 4, seed).race_pairs(), want, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Witness bridge: confirmed lint schedules replay to detected races.
// ---------------------------------------------------------------------

#[test]
fn confirmed_lint_witnesses_replay_to_detected_races() {
    use fx10::lints::{races::race_pass, Confidence};
    let mut confirmed = 0usize;
    for name in [
        "rt_racy.fx10",
        "racey.fx10",
        "lint_rw_race.fx10",
        "lint_ww_race.fx10",
    ] {
        let p = fixture(name);
        let cs = analyze(&p);
        let ci = analyze_ci(&p);
        let out = race_pass(
            &p,
            &cs,
            &ci,
            &[],
            50_000,
            None,
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .expect("race pass");
        for d in &out.diagnostics {
            let (Confidence::Confirmed, Some(pair), Some(schedule)) =
                (d.confidence, d.pair, d.witness.as_ref())
            else {
                continue;
            };
            confirmed += 1;
            let r = replay_detect(&p, &[], schedule, STEP_CAP)
                .unwrap_or_else(|e| panic!("{name}: witness replay failed: {e}"));
            let want = fx10::semantics::parallel::pair(pair.0, pair.1);
            assert!(
                r.race_pairs().contains(&want),
                "{name}: confirmed witness for ({}, {}) replayed without the \
                 detector observing the race; saw {:?}",
                p.labels().display(pair.0),
                p.labels().display(pair.1),
                r.race_pairs()
            );
        }
    }
    assert!(
        confirmed >= 3,
        "witness bridge exercised only {confirmed} confirmed findings"
    );
}

// ---------------------------------------------------------------------
// Satellite 1: random-program corpus, elision vs parallel runtime.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_programs_elide_or_at_least_terminate_alike(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..4,
        depth in 0usize..3,
    ) {
        let p = random_fx10(RandomConfig {
            methods,
            stmts_per_method: stmts,
            max_depth: depth,
            seed,
        });
        let racy = statically_racy(&p);
        let serial = elide(&p);
        let cs = analyze(&p);
        for jobs in [2usize, 8] {
            for sseed in [0u64, 1, 5] {
                let r = par(&p, jobs, sseed);
                // Same termination verdict always (random programs
                // terminate under the all-zero input, so both engines
                // complete; a step-cap trip on one must trip the other).
                prop_assert_eq!(
                    r.completed, serial.completed,
                    "jobs={} seed={}", jobs, sseed
                );
                if !racy {
                    prop_assert_eq!(
                        &r.array, &serial.array,
                        "race-free program diverged at jobs={} seed={}\n{}",
                        jobs, sseed, fx10::syntax::pretty::program(&p)
                    );
                    prop_assert_eq!(r.steps, serial.steps);
                    prop_assert!(r.races.is_empty(), "detector fired on a race-free program");
                }
                // Theorem 2 leg on whatever was detected.
                for (x, y) in r.race_pairs() {
                    prop_assert!(
                        cs.may_happen_in_parallel(x, y),
                        "detected ({}, {}) escapes static MHP",
                        p.labels().display(x),
                        p.labels().display(y)
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 3: runtime edge cases.
// ---------------------------------------------------------------------

#[test]
fn finish_over_zero_asyncs_is_a_no_op_barrier() {
    let p = Program::parse("def main() { finish { skip; } a[0] = 1; }").unwrap();
    let serial = elide(&p);
    assert!(serial.completed);
    assert_eq!(serial.array, vec![1]);
    for jobs in [1, 2, 8] {
        let r = par(&p, jobs, 0);
        assert_eq!(r.array, serial.array);
        assert_eq!(r.steps, serial.steps);
    }
}

#[test]
fn deeply_nested_finish_does_not_overflow_the_stack() {
    // 96 nested finish scopes, each spawning one async: the worker
    // executes finish bodies inline, so this exercises real recursion
    // depth in both engines.
    let depth = 96;
    let mut src = String::from("def main() { ");
    for _ in 0..depth {
        src.push_str("finish { async { ");
    }
    src.push_str("a[0] = a[0] + 1; ");
    for _ in 0..depth {
        src.push_str("} } ");
    }
    src.push('}');
    let p = Program::parse(&src).unwrap();
    let serial = elide(&p);
    assert!(serial.completed);
    assert_eq!(serial.array, vec![1]);
    for jobs in [1, 4] {
        for seed in 0..4u64 {
            let r = par(&p, jobs, seed);
            assert_eq!(r.array, serial.array, "jobs={jobs} seed={seed}");
            assert_eq!(r.steps, serial.steps, "jobs={jobs} seed={seed}");
        }
    }
}

#[test]
fn a_panicking_async_exits_4_with_the_latch_released() {
    // Target worker 0: it always runs the root task (item 1), so its
    // second processed item — deterministically an async task — panics
    // inside the catch_unwind region. The run must *return* (the finish
    // latch is released during unwind, nobody deadlocks) and surface the
    // panic as exit code 4. Two crew shapes: solo (the panicking worker
    // is also the finish waiter) and a 4-worker crew (the survivors must
    // observe the stop flag and shut down cleanly).
    let p = fixture("rt_fanout.fx10");
    for (jobs, after_states) in [(1u64, 2u64), (4, 1)] {
        let faults = FaultPlan {
            panic_worker: Some(PanicFault {
                worker: 0,
                after_states,
            }),
            ..FaultPlan::none()
        };
        let cfg = RtConfig {
            jobs: jobs as usize,
            seed: 0,
            grain: 0,
            max_steps: STEP_CAP,
        };
        let err = run_parallel(
            &p,
            &[],
            &cfg,
            Budget::unlimited(),
            &CancelToken::new(),
            &faults,
        )
        .expect_err("the injected panic must surface");
        assert_eq!(err.exit_code(), 4, "jobs={jobs}: got {err}");
        assert!(
            matches!(err, Fx10Error::WorkerPanicked { worker: 0, .. }),
            "jobs={jobs}: got {err}"
        );
    }
}

#[test]
fn budget_and_cancel_are_honored_mid_run() {
    // A diverging loop: only a budget trip or cancellation can stop it.
    let p = Program::parse("def main() { a[0] = 1; while (a[0] != 0) { skip; } }").unwrap();
    let cfg = RtConfig {
        jobs: 2,
        seed: 0,
        grain: 0,
        max_steps: u64::MAX,
    };

    let cancelled = CancelToken::new();
    cancelled.cancel();
    let err = run_parallel(
        &p,
        &[],
        &cfg,
        Budget::unlimited(),
        &cancelled,
        &FaultPlan::none(),
    )
    .expect_err("cancellation must stop the run");
    assert!(matches!(err, Fx10Error::Cancelled), "got {err}");

    let past = Budget {
        deadline: Some(std::time::Instant::now()),
        ..Budget::unlimited()
    };
    let r = run_parallel(&p, &[], &cfg, past, &CancelToken::new(), &FaultPlan::none())
        .expect("deadline exhaustion is a verdict, not an error");
    assert!(!r.completed);
    assert_eq!(r.exhausted, Some(Exhaustion::Deadline));

    let iters = Budget {
        max_iters: Some(500),
        ..Budget::unlimited()
    };
    let r = run_parallel(
        &p,
        &[],
        &cfg,
        iters,
        &CancelToken::new(),
        &FaultPlan::none(),
    )
    .expect("iteration exhaustion is a verdict, not an error");
    assert_eq!(r.exhausted, Some(Exhaustion::SolverIterations));

    let capped = RtConfig {
        max_steps: 1_000,
        ..cfg
    };
    let r = run_parallel(
        &p,
        &[],
        &capped,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
    )
    .expect("step exhaustion is a verdict, not an error");
    assert_eq!(r.exhausted, Some(Exhaustion::Steps));

    // The serial elider honors the same knobs.
    let err = run_elision(&p, &[], u64::MAX, Budget::unlimited(), &cancelled)
        .expect_err("cancellation must stop the elider");
    assert!(matches!(err, Fx10Error::Cancelled), "got {err}");
    let r = run_elision(&p, &[], 1_000, Budget::unlimited(), &CancelToken::new()).unwrap();
    assert_eq!(r.exhausted, Some(Exhaustion::Steps));
}
