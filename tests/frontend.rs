//! Frontend integration: X10-Lite → condensed form → analysis, and
//! agreement between the condensed analysis and the FX10 analysis on
//! programs expressible in both.

use fx10::analysis::analysis::SolverKind;
use fx10::analysis::{analyze, Mode};
use fx10::frontend::{analyze_condensed, async_pairs_condensed, parse};
use fx10::syntax::Program;

/// A program expressible both as FX10 and as X10-Lite; the pair structure
/// must agree (labels differ — FX10 labels skip bodies, X10-Lite labels
/// compute nodes — so we compare async-body pair *reports*).
#[test]
fn condensed_and_fx10_agree_on_shared_fragment() {
    let fx10_src = "def f() { async { S5; } }\n\
                    def main() {\n\
                      finish { async { S3; } f(); }\n\
                      finish { f(); async { S4; } }\n\
                    }";
    let x10_src = "def f() { async { compute; } }\n\
                   def main() {\n\
                     finish { async { compute; } f(); }\n\
                     finish { f(); async { compute; } }\n\
                   }";
    let p1 = Program::parse(fx10_src).unwrap();
    let a1 = analyze(&p1);
    let rep1 = fx10::analysis::report::async_pairs(&a1);

    let p2 = parse(x10_src).unwrap();
    let a2 = analyze_condensed(&p2, Mode::ContextSensitive, SolverKind::Naive);
    let rep2 = async_pairs_condensed(&a2);

    assert_eq!(rep1.total(), rep2.total());
    assert_eq!(rep1.self_pairs, rep2.self_pairs);
    assert_eq!(rep1.same_method, rep2.same_method);
    assert_eq!(rep1.diff_method, rep2.diff_method);
    assert_eq!(
        (rep2.self_pairs, rep2.same_method, rep2.diff_method),
        (0, 0, 2)
    );
}

#[test]
fn foreach_matches_explicit_loop_async() {
    // §6: foreach is "a plain loop where the body is wrapped in an async".
    let sugar = parse("def main() { foreach (p) { compute; } }").unwrap();
    let explicit = parse("def main() { while (c) { async { compute; } } }").unwrap();
    let a = analyze_condensed(&sugar, Mode::ContextSensitive, SolverKind::Naive);
    let b = analyze_condensed(&explicit, Mode::ContextSensitive, SolverKind::Naive);
    assert_eq!(a.mhp(), b.mhp());
    let (ra, rb) = (async_pairs_condensed(&a), async_pairs_condensed(&b));
    assert_eq!(ra.self_pairs, 1);
    assert_eq!(ra.self_pairs, rb.self_pairs);
}

#[test]
fn place_switching_async_is_analyzed_like_plain_async() {
    // §6: "Our implementation handles the more general form of async in
    // exactly the same way as the asyncs in FX10."
    let plain = parse("def main() { async { compute; } compute; }").unwrap();
    let at = parse("def main() { async at (here.next()) { compute; } compute; }").unwrap();
    let a = analyze_condensed(&plain, Mode::ContextSensitive, SolverKind::Naive);
    let b = analyze_condensed(&at, Mode::ContextSensitive, SolverKind::Naive);
    assert_eq!(a.mhp(), b.mhp());
    // Only the Figure 6 category differs.
    assert_eq!(plain.async_stats().place_switch, 0);
    assert_eq!(at.async_stats().place_switch, 1);
}

#[test]
fn if_else_is_a_join_not_a_fork() {
    let p = parse(
        "def main() {\n\
           if (c) { async { compute; } } else { async { compute; } }\n\
           compute;\n\
         }",
    )
    .unwrap();
    let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
    // Each branch's async body (labels 2 and 4) runs in parallel with the
    // trailing compute (label 5) but not with the other branch.
    use fx10::syntax::Label;
    assert!(a.may_happen_in_parallel(Label(2), Label(5)));
    assert!(a.may_happen_in_parallel(Label(4), Label(5)));
    assert!(!a.may_happen_in_parallel(Label(2), Label(4)));
}

#[test]
fn x10lite_larger_program_smoke() {
    let src = "\
def init() { for (i) { compute; } return; }
def work() {
  foreach (point p : region) { compute; }
  if (cond) { async at (p) { compute; } } else { skip; }
  return;
}
def reduce() { switch (mode) { case { compute; } case { return; } } }
def main() {
  init();
  finish { work(); work(); }
  ateach (q) { reduce(); }
  end;
}";
    let p = parse(src).unwrap();
    let cs = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
    let ci = analyze_condensed(
        &p,
        Mode::ContextInsensitive { keep_scross: true },
        SolverKind::Naive,
    );
    assert!(cs.mhp().is_subset(ci.mhp()), "CS refines CI");
    let rep = async_pairs_condensed(&cs);
    // The foreach/ateach asyncs self-overlap; work()'s asyncs overlap
    // across the two calls inside one finish.
    assert!(rep.self_pairs >= 2, "{rep:?}");
    assert!(rep.total() >= rep.self_pairs);

    // Naive and worklist agree on the condensed pipeline too.
    let wl = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Worklist);
    assert_eq!(cs.m_methods, wl.m_methods);
    assert_eq!(cs.o_methods, wl.o_methods);
}

mod condensed_soundness {
    use super::*;
    use fx10::frontend::explore_condensed;
    use fx10::suite::{random_condensed, RandomConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The condensed-form constraint rules (including the if/switch/
        /// return extensions DESIGN.md §6 defines) are sound against the
        /// executable condensed semantics, for CS and CI alike.
        #[test]
        fn condensed_dynamic_mhp_is_subset_of_static(
            seed in 0u64..100_000,
            methods in 1usize..4,
            stmts in 1usize..4,
            depth in 0usize..3,
        ) {
            let p = random_condensed(RandomConfig {
                methods,
                stmts_per_method: stmts,
                max_depth: depth,
                seed,
            });
            let e = explore_condensed(&p, 30_000, 2);
            prop_assert!(e.deadlock_free);
            let cs = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Worklist);
            let ci = analyze_condensed(
                &p,
                Mode::ContextInsensitive { keep_scross: true },
                SolverKind::Worklist,
            );
            for &(x, y) in &e.mhp {
                prop_assert!(
                    cs.may_happen_in_parallel(x, y),
                    "CS misses dynamic pair ({x:?},{y:?})"
                );
                prop_assert!(ci.may_happen_in_parallel(x, y), "CI misses a pair");
            }
            prop_assert!(cs.mhp().is_subset(ci.mhp()));
        }
    }

    #[test]
    fn benchmark_fragments_are_dynamically_sound() {
        // The full benchmarks are too big to explore; check the smallest.
        let bm = fx10::suite::benchmark("mapreduce").unwrap();
        let e = explore_condensed(&bm.program, 150_000, 2);
        let a = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Worklist);
        for &(x, y) in &e.mhp {
            assert!(a.may_happen_in_parallel(x, y));
        }
        assert!(e.deadlock_free);
    }
}

#[test]
fn pretty_printed_benchmarks_reparse_with_identical_statistics() {
    for bm in fx10::suite::all_benchmarks() {
        let printed = fx10::frontend::pretty(&bm.program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{}: pretty output must reparse: {e}", bm.spec.name));
        assert_eq!(
            reparsed.node_counts(),
            bm.spec.nodes,
            "{}: node counts survive round-trip",
            bm.spec.name
        );
        assert_eq!(reparsed.async_stats(), bm.spec.asyncs, "{}", bm.spec.name);
    }
}
