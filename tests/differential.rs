//! The differential-testing oracle for the work-stealing interned
//! explorer.
//!
//! The sequential cloned-tree breadth-first search
//! ([`explore_budgeted`]) is the trusted reference. Everything the
//! parallel engine computes — the canonical reachable-state set (as
//! byte-comparable digests), the dynamic `parallel(T)` pair union, the
//! deadlock-freedom verdict, terminal and visited counts — must be
//! *identical* for every worker count, every steal schedule, and both
//! state representations (cloned trees vs hash-consed ids). Randomized
//! programs from `fx10_suite` drive the comparison beyond the fixtures.
//!
//! Also here: the adversarial-schedule and injected-panic behaviour of
//! the parallel engine (typed errors, exit-code 4, no hangs), the shared
//! state-budget contract (`budget + at most one batch per worker`,
//! tagged INCONCLUSIVE), and the regression pins for the canonical
//! `∥`-symmetry deduplication on the `programs/*.fx10` fixtures.

use fx10::robust::{Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error, PanicFault};
use fx10::semantics::{
    explore_budgeted, explore_parallel_budgeted, explore_parallel_durable, CheckpointSpec,
    Durability, Exploration, ExploreConfig, ExplorerSnapshot,
};
use fx10::suite::{random_fx10, RandomConfig};
use fx10::syntax::Program;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const JOBS: [usize; 3] = [1, 2, 8];

/// A collision-free scratch path for snapshot files (tests run in
/// parallel within one process and across processes).
fn temp_snap(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fx10-{tag}-{}-{n}.fxsnap", std::process::id()))
}

fn digest_config() -> ExploreConfig {
    ExploreConfig {
        collect_states: true,
        ..ExploreConfig::default()
    }
}

fn reference(p: &Program, config: ExploreConfig) -> Exploration {
    explore_budgeted(p, &[], config, Budget::unlimited(), &CancelToken::new())
        .expect("reference explorer cannot fail without budget or cancel")
}

fn parallel(p: &Program, config: ExploreConfig, jobs: usize) -> Exploration {
    explore_parallel_budgeted(
        p,
        &[],
        config,
        jobs,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
    )
    .expect("parallel explorer cannot fail without budget, cancel or faults")
}

/// Asserts every differentially-observable field matches the reference.
fn assert_identical(label: &str, want: &Exploration, got: &Exploration) {
    assert_eq!(want.state_digests, got.state_digests, "{label}: state sets");
    assert_eq!(want.mhp, got.mhp, "{label}: parallel(T) pair union");
    assert_eq!(want.deadlock_free, got.deadlock_free, "{label}: deadlock");
    assert_eq!(want.visited, got.visited, "{label}: visited count");
    assert_eq!(want.terminals, got.terminals, "{label}: terminal count");
    assert_eq!(want.truncated, got.truncated, "{label}: truncation");
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).expect(path);
    Program::parse(&src).expect(path)
}

#[test]
fn fixture_programs_agree_across_engines_and_worker_counts() {
    for path in [
        "programs/example22.fx10",
        "programs/fork_join.fx10",
        "programs/racey.fx10",
    ] {
        let p = load(path);
        let want = reference(&p, digest_config());
        assert!(!want.truncated, "{path}: fixture must fit the budget");
        for jobs in JOBS {
            let got = parallel(&p, digest_config(), jobs);
            assert_identical(&format!("{path} jobs={jobs}"), &want, &got);
        }
    }
}

#[test]
fn normalized_fixtures_agree_too() {
    // The admin-normalizing configuration exercises the interner's
    // `normalized` path.
    let config = ExploreConfig {
        normalize_admin: true,
        ..digest_config()
    };
    for path in ["programs/example22.fx10", "programs/fork_join.fx10"] {
        let p = load(path);
        let want = reference(&p, config);
        for jobs in JOBS {
            let got = parallel(&p, config, jobs);
            assert_identical(&format!("{path} normalized jobs={jobs}"), &want, &got);
        }
    }
}

/// Regression pins for the canonical `∥`-symmetry deduplication (the
/// frontier used to re-visit `T₁ ∥ T₂` and `T₂ ∥ T₁` as distinct
/// states). The literal space must not be smaller, and the canonical
/// counts are pinned exactly so an accidental dedup regression fails
/// loudly.
#[test]
fn canonical_dedup_visited_counts_are_pinned_for_fixtures() {
    let pins = [
        ("programs/example22.fx10", 37usize, 5usize, 1usize),
        ("programs/fork_join.fx10", 141, 15, 1),
        ("programs/racey.fx10", 10, 1, 2),
    ];
    for (path, visited, pairs, terminals) in pins {
        let p = load(path);
        let canon = reference(&p, ExploreConfig::default());
        assert_eq!(canon.visited, visited, "{path}: canonical visited");
        assert_eq!(canon.mhp.len(), pairs, "{path}: pair count");
        assert_eq!(canon.terminals, terminals, "{path}: terminals");

        let literal = reference(
            &p,
            ExploreConfig {
                canonical_dedup: false,
                ..ExploreConfig::default()
            },
        );
        assert!(
            literal.visited >= canon.visited,
            "{path}: canonicalization grew the space"
        );
        assert_eq!(literal.mhp, canon.mhp, "{path}: MHP must be invariant");
        assert_eq!(literal.terminals, canon.terminals, "{path}: terminals");
    }
}

#[test]
fn adversarial_schedules_are_semantically_invisible_to_the_oracle() {
    for path in ["programs/example22.fx10", "programs/fork_join.fx10"] {
        let p = load(path);
        let want = reference(&p, digest_config());
        for jobs in JOBS {
            let got = explore_parallel_budgeted(
                &p,
                &[],
                digest_config(),
                jobs,
                Budget::unlimited(),
                &CancelToken::new(),
                &FaultPlan {
                    adversarial_schedule: true,
                    ..FaultPlan::none()
                },
            )
            .unwrap();
            assert_identical(&format!("{path} adversarial jobs={jobs}"), &want, &got);
        }
    }
}

fn explore_with_panic_fault(
    p: &Program,
    jobs: usize,
    victim: usize,
    adversarial: bool,
) -> Result<Exploration, Fx10Error> {
    explore_parallel_budgeted(
        p,
        &[],
        ExploreConfig::default(),
        jobs,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan {
            panic_worker: Some(PanicFault {
                worker: victim,
                after_states: 1,
            }),
            adversarial_schedule: adversarial,
            ..FaultPlan::none()
        },
    )
}

fn assert_panicked_as(victim: usize, err: Fx10Error) {
    assert_eq!(err.exit_code(), 4, "victim={victim}");
    match err {
        Fx10Error::WorkerPanicked { worker, message } => {
            assert_eq!(worker, victim);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn injected_panics_surface_as_typed_errors_with_exit_code_4() {
    // jobs = 1 is fully deterministic: the only worker must process the
    // seed state, so the fault always fires.
    let p = load("programs/fork_join.fx10");
    assert_panicked_as(0, explore_with_panic_fault(&p, 1, 0, false).unwrap_err());

    // With a crew, the victim can benignly lose the race for work (the
    // other workers drain the space first); an Ok result is then a
    // complete exploration. The small fixtures drain faster than a
    // second thread reliably spawns on a fast machine, so the crewed
    // cases use the wide chaos fixture (~76k states): every worker gets
    // work, and the contract under test — the fault surfaces as a typed
    // error with exit code 4, never a hang or an abort — is exercised on
    // the first or second run. The retry loop stays as a safety margin.
    let p = load("programs/chaos_wide.fx10");
    for (jobs, victim, adversarial) in [(2usize, 1usize, false), (4, 2, true), (8, 0, false)] {
        let mut fired = false;
        for _ in 0..50 {
            match explore_with_panic_fault(&p, jobs, victim, adversarial) {
                Err(err) => {
                    assert_panicked_as(victim, err);
                    fired = true;
                    break;
                }
                Ok(e) => assert!(e.deadlock_free, "starved-victim run must be complete"),
            }
        }
        assert!(
            fired,
            "fault never landed in 50 runs (jobs={jobs} victim={victim})"
        );
    }
}

#[test]
fn shared_state_budget_bounds_the_crew_within_one_batch_per_worker() {
    // fork_join has 141 canonical states; a budget of 40 must truncate
    // for every worker count, never overshoot by more than one
    // reservation batch (1 state) per worker, and report INCONCLUSIVE
    // provenance (the CLI maps it to exit 3).
    let p = load("programs/fork_join.fx10");
    let budget_states = 40usize;
    for jobs in JOBS {
        let e = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            jobs,
            Budget::unlimited().with_max_states(budget_states),
            &CancelToken::new(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(e.truncated, "jobs={jobs}");
        assert_eq!(e.exhausted, Some(Exhaustion::States), "jobs={jobs}");
        assert!(
            e.visited <= budget_states + jobs,
            "jobs={jobs}: visited {} > budget {budget_states} + one batch per worker",
            e.visited
        );
        assert!(
            e.visited >= budget_states.min(20),
            "jobs={jobs}: suspiciously small prefix {}",
            e.visited
        );
    }
}

/// The tentpole pin: interrupt the durable explorer at an arbitrary
/// checkpoint (the injected kill is the SIGKILL stand-in), resume from
/// the on-disk snapshot, and require the state digests, MHP pairs and
/// verdicts to be **byte-identical** to an uninterrupted run — at every
/// `--jobs` value.
#[test]
fn kill_and_resume_is_byte_identical_at_every_jobs_value() {
    let p = load("programs/fork_join.fx10");
    let want = reference(&p, digest_config());
    for jobs in JOBS {
        for kill_at in [1u64, 2] {
            let label = format!("jobs={jobs} kill_at={kill_at}");
            let path = temp_snap("kill");
            let res = explore_parallel_durable(
                &p,
                &[],
                digest_config(),
                jobs,
                Budget::unlimited(),
                &CancelToken::new(),
                &FaultPlan {
                    kill_at_checkpoint: Some(kill_at),
                    ..FaultPlan::none()
                },
                Durability {
                    checkpoint: Some(CheckpointSpec {
                        path: path.clone(),
                        every: 7,
                    }),
                    resume: None,
                    watchdog: None,
                },
            );
            match res {
                Err(Fx10Error::Cancelled) => {
                    // The kill landed: the interrupted snapshot must
                    // resume to exactly the uninterrupted answer.
                    let snap = ExplorerSnapshot::load(&path).expect("snapshot on disk");
                    let got = explore_parallel_durable(
                        &p,
                        &[],
                        digest_config(),
                        jobs,
                        Budget::unlimited(),
                        &CancelToken::new(),
                        &FaultPlan::none(),
                        Durability {
                            checkpoint: None,
                            resume: Some(&snap),
                            watchdog: None,
                        },
                    )
                    .expect("resume must succeed");
                    assert_identical(&label, &want, &got);
                }
                // The run can finish before the kill-th checkpoint (a
                // race the fault plan permits) — it must then simply be
                // a complete, correct run.
                Ok(got) => assert_identical(&format!("{label} (kill lost)"), &want, &got),
                Err(e) => panic!("{label}: unexpected error {e:?}"),
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Chained interruptions: kill at checkpoint 1, resume with checkpoints
/// still on, kill again, resume again — the final answer must still be
/// byte-identical to the uninterrupted reference.
#[test]
fn double_kill_and_resume_still_converges() {
    let p = load("programs/fork_join.fx10");
    let want = reference(&p, digest_config());
    let path = temp_snap("kill2");
    let kill = FaultPlan {
        kill_at_checkpoint: Some(1),
        ..FaultPlan::none()
    };
    let clean = FaultPlan::none();
    let spec = CheckpointSpec {
        path: path.clone(),
        every: 5,
    };
    let mut snap = None;
    let mut finished = None;
    for round in 0..16 {
        let res = explore_parallel_durable(
            &p,
            &[],
            digest_config(),
            2,
            Budget::unlimited(),
            &CancelToken::new(),
            if round < 2 { &kill } else { &clean },
            Durability {
                checkpoint: Some(spec.clone()),
                resume: snap.as_ref(),
                watchdog: None,
            },
        );
        match res {
            Err(Fx10Error::Cancelled) => {
                snap = Some(ExplorerSnapshot::load(&path).expect("snapshot on disk"));
            }
            Ok(got) => {
                finished = Some(got);
                break;
            }
            Err(e) => panic!("round {round}: unexpected error {e:?}"),
        }
    }
    let got = finished.expect("two kills then a clean run must finish");
    assert_identical("double kill", &want, &got);
    let _ = std::fs::remove_file(&path);
}

fn rand_cfg(seed: u64, methods: usize, stmts: usize, depth: usize) -> RandomConfig {
    RandomConfig {
        methods,
        stmts_per_method: stmts,
        max_depth: depth,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite 1: random programs explored with jobs = 1 and jobs = N,
    /// interned and cloned, yield byte-identical canonical state sets
    /// and identical MHP-soundness verdicts.
    #[test]
    fn random_programs_agree_across_jobs_and_representations(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..5,
        depth in 0usize..3,
        jobs_idx in 0usize..3,
    ) {
        let p = random_fx10(rand_cfg(seed, methods, stmts, depth));
        let config = ExploreConfig {
            max_states: 20_000,
            ..digest_config()
        };
        let cloned = reference(&p, config);
        prop_assume!(!cloned.truncated);

        let one = parallel(&p, config, 1);
        let many = parallel(&p, config, JOBS[jobs_idx]);
        for (label, got) in [("jobs=1", &one), ("jobs=N", &many)] {
            prop_assert_eq!(&cloned.state_digests, &got.state_digests, "{}", label);
            prop_assert_eq!(&cloned.mhp, &got.mhp, "{}", label);
            prop_assert_eq!(cloned.visited, got.visited, "{}", label);
            prop_assert_eq!(cloned.terminals, got.terminals, "{}", label);
            prop_assert_eq!(cloned.deadlock_free, got.deadlock_free, "{}", label);
        }

        // Identical MHP-soundness verdicts: the static analysis covers
        // the dynamic pairs of every engine or none.
        let a = fx10::analysis::analyze(&p);
        let verdict_ref = a.check_soundness(cloned.mhp.iter()).is_sound();
        let verdict_par = a.check_soundness(many.mhp.iter()).is_sound();
        prop_assert_eq!(verdict_ref, verdict_par);
        prop_assert!(verdict_ref, "Theorem 2 must hold on the ground truth");
    }

    /// Satellite: inject a checkpoint → kill → resume cycle into the
    /// parallel engine on random programs; the stitched-together run
    /// must still equal the sequential oracle exactly.
    #[test]
    fn random_programs_survive_a_checkpoint_kill_resume_cycle(
        seed in 0u64..10_000,
        stmts in 1usize..5,
        depth in 0usize..3,
        jobs_idx in 0usize..3,
        every in 1usize..6,
    ) {
        let p = random_fx10(rand_cfg(seed, 2, stmts, depth));
        let config = ExploreConfig {
            max_states: 20_000,
            ..digest_config()
        };
        let cloned = reference(&p, config);
        prop_assume!(!cloned.truncated);
        let jobs = JOBS[jobs_idx];
        let path = temp_snap("prop");
        let res = explore_parallel_durable(
            &p, &[], config, jobs,
            Budget::unlimited(), &CancelToken::new(),
            &FaultPlan { kill_at_checkpoint: Some(1), ..FaultPlan::none() },
            Durability {
                checkpoint: Some(CheckpointSpec { path: path.clone(), every }),
                resume: None,
                watchdog: None,
            },
        );
        let got = match res {
            Err(Fx10Error::Cancelled) => {
                let snap = ExplorerSnapshot::load(&path).expect("snapshot on disk");
                explore_parallel_durable(
                    &p, &[], config, jobs,
                    Budget::unlimited(), &CancelToken::new(), &FaultPlan::none(),
                    Durability { checkpoint: None, resume: Some(&snap), watchdog: None },
                ).expect("resume must succeed")
            }
            // Small programs can finish before the first checkpoint.
            Ok(e) => e,
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                panic!("unexpected error: {e:?}");
            }
        };
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&cloned.state_digests, &got.state_digests);
        prop_assert_eq!(&cloned.mhp, &got.mhp);
        prop_assert_eq!(cloned.visited, got.visited);
        prop_assert_eq!(cloned.terminals, got.terminals);
        prop_assert_eq!(cloned.deadlock_free, got.deadlock_free);
    }

    /// Canonical dedup on random programs: verdict-preserving, never
    /// space-growing (interned parallel engine at canonical vs literal).
    #[test]
    fn canonical_dedup_is_verdict_preserving_on_random_programs(
        seed in 0u64..10_000,
        stmts in 1usize..5,
        depth in 0usize..3,
    ) {
        let p = random_fx10(rand_cfg(seed, 2, stmts, depth));
        let literal = parallel(
            &p,
            ExploreConfig { max_states: 20_000, canonical_dedup: false, ..ExploreConfig::default() },
            2,
        );
        prop_assume!(!literal.truncated);
        let canon = parallel(
            &p,
            ExploreConfig { max_states: 20_000, ..ExploreConfig::default() },
            2,
        );
        prop_assert_eq!(&literal.mhp, &canon.mhp);
        prop_assert_eq!(literal.deadlock_free, canon.deadlock_free);
        prop_assert_eq!(literal.terminals, canon.terminals);
        prop_assert!(canon.visited <= literal.visited);
    }
}
