//! E8/E9: machine-checked Theorems 1–3 on random programs.
//!
//! - **Theorem 1 (deadlock freedom)**: every reachable non-`√` state has
//!   a successor — the explorer asserts this on every visited state.
//! - **Theorems 2–3 (soundness)**: the dynamic ground truth
//!   `MHP(p) = ∪ parallel(T)` over reachable states is contained in the
//!   statically inferred `M` — for the context-sensitive analysis, the
//!   context-insensitive baseline, and the type-system formulation.
//!
//! Random programs terminate under the all-zero input (see
//! `fx10_suite::random`), so bounded exploration is exhaustive unless the
//! interleaving space alone overflows the cap; soundness is checked on
//! whatever was reached either way (`dynamic ⊆ static` is monotone).

use fx10::analysis::{analyze, analyze_ci};
use fx10::semantics::{explore, explore_parallel, ExploreConfig};
use fx10::suite::{random_fx10, RandomConfig};
use proptest::prelude::*;

fn cfg(seed: u64, methods: usize, stmts: usize, depth: usize) -> RandomConfig {
    RandomConfig {
        methods,
        stmts_per_method: stmts,
        max_depth: depth,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_mhp_is_subset_of_static(
        seed in 0u64..10_000,
        methods in 1usize..5,
        stmts in 1usize..5,
        depth in 0usize..3,
    ) {
        let p = random_fx10(cfg(seed, methods, stmts, depth));
        let e = explore(&p, &[], ExploreConfig { max_states: 30_000, ..ExploreConfig::default() });
        prop_assert!(e.deadlock_free, "Theorem 1 violated");

        let cs = analyze(&p);
        let ci = analyze_ci(&p);
        for &(x, y) in &e.mhp {
            prop_assert!(
                cs.may_happen_in_parallel(x, y),
                "CS misses dynamic pair ({}, {}) in\n{}",
                p.labels().display(x),
                p.labels().display(y),
                fx10::syntax::pretty::program(&p)
            );
            prop_assert!(ci.may_happen_in_parallel(x, y), "CI misses a dynamic pair");
        }
        // CS refines CI.
        prop_assert!(cs.mhp().is_subset(ci.mhp()));
    }

    #[test]
    fn type_system_is_sound_along_executions(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..4,
    ) {
        use fx10::analysis::typesystem::{infer_types, type_tree, typecheck};
        use fx10::analysis::sets::LabelSet;
        use fx10::analysis::index::StmtIndex;
        use fx10::analysis::slabels::compute_slabels;
        use fx10::semantics::parallel::parallel;
        use fx10::semantics::step::{initial_tree, successors};
        use fx10::semantics::ArrayState;

        let p = random_fx10(cfg(seed, methods, stmts, 2));
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let (env, _) = infer_types(&p);
        prop_assert!(typecheck(&p, &env), "Theorem 6: every program has a type");

        // Walk a bounded prefix of the state space checking
        // parallel(T) ⊆ type_tree(T) ⊆ M_main (Lemma 17 + preservation).
        let empty = LabelSet::empty(p.label_count());
        let m_main = &env.get(p.main()).m;
        let mut frontier = vec![(ArrayState::zeros(&p), initial_tree(&p))];
        let mut visited = 0usize;
        while let Some((a, t)) = frontier.pop() {
            if visited > 400 {
                break;
            }
            visited += 1;
            let m_t = type_tree(&p, &slab, &env, &empty, &t);
            for (x, y) in parallel(&t) {
                prop_assert!(m_t.contains(x, y), "Lemma 17 violated");
                prop_assert!(m_main.contains(x, y), "Theorem 2 violated");
            }
            for succ in successors(&p, &a, &t) {
                frontier.push((succ.array, succ.tree));
            }
        }
    }
}

#[test]
fn parallel_explorer_agrees_with_sequential_on_random_programs() {
    for seed in 0..12u64 {
        let p = random_fx10(cfg(seed, 3, 4, 2));
        let cap = ExploreConfig {
            max_states: 20_000,
            ..ExploreConfig::default()
        };
        let a = explore(&p, &[], cap);
        if a.truncated {
            continue; // the two explorers may truncate differently
        }
        let b = explore_parallel(&p, &[], cap, 4);
        assert_eq!(a.mhp, b.mhp, "seed {seed}");
        assert_eq!(a.visited, b.visited, "seed {seed}");
        assert_eq!(a.terminals, b.terminals, "seed {seed}");
    }
}

#[test]
fn soundness_holds_on_the_handwritten_examples() {
    use fx10::syntax::examples;
    for p in [
        examples::example_2_1(),
        examples::example_2_2(),
        examples::conclusion_false_positive(),
        examples::self_category(),
        examples::same_category(),
        examples::add_twice(),
    ] {
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(e.deadlock_free);
        let a = analyze(&p);
        for &(x, y) in &e.mhp {
            assert!(a.may_happen_in_parallel(x, y));
        }
    }
}

#[test]
fn add_twice_soundness_under_nonzero_inputs() {
    // Exercise data-dependent branching: different inputs reach
    // different trees; soundness must hold for each.
    let p = fx10::syntax::examples::add_twice();
    let a = analyze(&p);
    for input in [&[0i64, 0, 0][..], &[0, 1, 0], &[5, 1, 7]] {
        let e = explore(&p, input, ExploreConfig::default());
        assert!(e.deadlock_free);
        for &(x, y) in &e.mhp {
            assert!(a.may_happen_in_parallel(x, y), "input {input:?}");
        }
    }
}
