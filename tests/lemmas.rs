//! Property checks for the helper-function lemmas of Appendix B
//! (Lemma 7) that relate the static label sets to execution.

use fx10::analysis::index::{StmtId, StmtIndex};
use fx10::analysis::slabels::compute_slabels;
use fx10::analysis::typesystem::{slabels_of_dyn, tlabels};
use fx10::semantics::parallel::ftlabels;
use fx10::semantics::step::{initial_tree, successors};
use fx10::semantics::ArrayState;
use fx10::suite::{random_fx10, RandomConfig};
use fx10::syntax::Label;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 7.12/7.13: `FSlabels(s) ⊆ Slabels(s)` and
    /// `FTlabels(T) ⊆ Tlabels(T)`; Lemma 7.15: `Tlabels` shrinks (weakly)
    /// along every step.
    #[test]
    fn tlabels_shrink_along_steps(seed in 0u64..10_000) {
        let p = random_fx10(RandomConfig {
            methods: 3,
            stmts_per_method: 4,
            max_depth: 2,
            seed,
        });
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let n = p.label_count();

        let mut frontier = vec![(ArrayState::zeros(&p), initial_tree(&p))];
        let mut visited = 0usize;
        while let Some((a, t)) = frontier.pop() {
            if visited > 250 {
                break;
            }
            visited += 1;
            let tl = tlabels(&slab, n, &t);
            // 7.13: the front labels are executable labels.
            for l in ftlabels(&t) {
                prop_assert!(tl.contains(l), "FTlabels ⊄ Tlabels");
            }
            for succ in successors(&p, &a, &t) {
                let tl2 = tlabels(&slab, n, &succ.tree);
                prop_assert!(
                    tl2.is_subset(&tl),
                    "Lemma 7.15 violated: Tlabels grew on a step"
                );
                frontier.push((succ.array, succ.tree));
            }
        }
    }

    /// Lemma 7.11: `Slabels(s_a . s_b) = Slabels(s_a) ∪ Slabels(s_b)` —
    /// checked through the dynamic-statement computation used by the
    /// tree-typing rules.
    #[test]
    fn slabels_distributes_over_concat(seed in 0u64..10_000) {
        let p = random_fx10(RandomConfig {
            methods: 2,
            stmts_per_method: 4,
            max_depth: 2,
            seed,
        });
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let n = p.label_count();

        let a = p.body(fx10::syntax::FuncId(0)).clone();
        let b = p.body(fx10::syntax::FuncId(1)).clone();
        let mut expect = slabels_of_dyn(&slab, n, &a);
        expect.union_with(&slabels_of_dyn(&slab, n, &b));
        let got = slabels_of_dyn(&slab, n, &a.seq(b));
        prop_assert_eq!(got, expect);
    }

    /// The per-statement `Slabels` fixed point agrees with the recursive
    /// definition: head label + nested body/callee + tail.
    #[test]
    fn slabels_fixed_point_is_consistent(seed in 0u64..10_000) {
        use fx10::analysis::index::StmtKind;
        let p = random_fx10(RandomConfig {
            methods: 3,
            stmts_per_method: 3,
            max_depth: 3,
            seed,
        });
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        for s in idx.ids() {
            let info = idx.info(s);
            let mine = slab.stmt(s);
            prop_assert!(mine.contains(Label(s.0)), "own label (15)-(21)");
            match info.kind {
                StmtKind::While { body }
                | StmtKind::Async { body }
                | StmtKind::Finish { body } => {
                    prop_assert!(slab.stmt(body).is_subset(mine));
                }
                StmtKind::Call { callee } => {
                    prop_assert!(slab.method(callee).is_subset(mine), "(21)");
                }
                StmtKind::Simple => {}
            }
            if let Some(t) = info.tail {
                prop_assert!(slab.stmt(t).is_subset(mine));
            }
            // Minimality spot check: a lone simple statement is exactly
            // its own label.
            if info.tail.is_none() && matches!(info.kind, StmtKind::Simple) {
                prop_assert_eq!(mine.len(), 1);
            }
        }
    }

    /// Administrative-step normalization computes the same dynamic MHP
    /// as the literal semantics, on fewer states.
    #[test]
    fn normalized_exploration_equals_literal(seed in 0u64..10_000) {
        use fx10::semantics::{explore, ExploreConfig};
        let p = random_fx10(RandomConfig {
            methods: 3,
            stmts_per_method: 3,
            max_depth: 2,
            seed,
        });
        let lit = explore(&p, &[], ExploreConfig { max_states: 20_000, ..ExploreConfig::default() });
        let norm = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 20_000,
                normalize_admin: true,
                ..ExploreConfig::default()
            },
        );
        if !lit.truncated && !norm.truncated {
            prop_assert_eq!(&lit.mhp, &norm.mhp);
            prop_assert!(norm.visited <= lit.visited);
        }
        prop_assert!(lit.deadlock_free && norm.deadlock_free);
    }

    /// Statements step deterministically (all FX10 nondeterminism comes
    /// from `∥`): a `⟨s⟩` tree always has exactly one successor.
    #[test]
    fn statement_steps_are_deterministic(seed in 0u64..10_000) {
        use fx10::semantics::Tree;
        let p = random_fx10(RandomConfig {
            methods: 2,
            stmts_per_method: 3,
            max_depth: 2,
            seed,
        });
        let a = ArrayState::zeros(&p);
        let t = initial_tree(&p);
        let succ = successors(&p, &a, &t);
        prop_assert_eq!(succ.len(), 1);
        prop_assert!(matches!(t, Tree::Stm(_)));
    }
}

#[test]
fn dynamic_statement_while_unroll_preserves_slabels() {
    // Rule (11) unrolls `while` to `s . (while … s) k`; Lemma 7.15's
    // while case says Tlabels is preserved exactly there.
    let p = fx10::syntax::Program::parse(
        "def main() { a[0] = 1; while (a[0] != 0) { B; a[0] = 0; } K; }",
    )
    .unwrap();
    let idx = StmtIndex::build(&p);
    let slab = compute_slabels(&idx, false);
    let n = p.label_count();

    let a = ArrayState::zeros(&p);
    let t0 = initial_tree(&p);
    let s1 = successors(&p, &a, &t0); // a[0] = 1
    let before = tlabels(&slab, n, &s1[0].tree);
    let s2 = successors(&p, &s1[0].array, &s1[0].tree); // unroll
    let after = tlabels(&slab, n, &s2[0].tree);
    assert_eq!(before, after, "unrolling preserves Tlabels");
    // And the label of the statement suffix at K is gone after exiting.
    let k = p.labels().lookup("K").unwrap();
    assert!(after.contains(k));
    assert!(after.contains(Label(StmtId(k.0).label().0)));
}
