//! The paper's precision claims, machine-checked (§6 "We found none!"
//! and §8's analysis of the single false-positive source).
//!
//! The only pattern the paper identifies that can produce a false
//! positive is a loop that executes fewer than twice (rule 53 assumes
//! the body runs ≥ 2 times). We verify the flip side: **on loop-free
//! programs the analysis is exact** — the inferred `M`, restricted to
//! reachable code, equals the exhaustively computed dynamic MHP.

use fx10::analysis::analyze;
use fx10::semantics::{explore, ExploreConfig};
use fx10::suite::{random_fx10_loop_free, RandomConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loop-free programs: zero false positives.
    #[test]
    fn analysis_is_exact_without_loops(
        seed in 0u64..100_000,
        methods in 1usize..4,
        stmts in 1usize..5,
        depth in 0usize..3,
    ) {
        let p = random_fx10_loop_free(RandomConfig {
            methods,
            stmts_per_method: stmts,
            max_depth: depth,
            seed,
        });
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 50_000,
                normalize_admin: true,
                ..ExploreConfig::default()
            },
        );
        prop_assume!(!e.truncated);
        let a = analyze(&p);
        // Exactness in both directions.
        for &(x, y) in &e.mhp {
            prop_assert!(a.may_happen_in_parallel(x, y), "soundness");
        }
        for (x, y) in a.mhp().iter_pairs() {
            prop_assert!(
                e.mhp.contains(&(x.min(y), x.max(y))),
                "false positive ({}, {}) in loop-free program:\n{}",
                p.labels().display(x),
                p.labels().display(y),
                fx10::syntax::pretty::program(&p)
            );
        }
    }
}

#[test]
fn paper_examples_are_exactly_precise() {
    // §2.1/§2.2: "our algorithm determines the best possible
    // may-happen-in-parallel information" — and the category scenarios
    // too (their loops run exactly twice, satisfying rule 53's
    // assumption).
    use fx10::syntax::examples;
    for (name, p) in [
        ("example_2_1", examples::example_2_1()),
        ("example_2_2", examples::example_2_2()),
        ("self_category", examples::self_category()),
        ("same_category", examples::same_category()),
    ] {
        let a = analyze(&p);
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated, "{name}");
        assert_eq!(
            a.mhp().len(),
            e.mhp.len(),
            "{name}: static and dynamic MHP must coincide"
        );
    }
}

#[test]
fn the_only_false_positive_source_is_the_loop_pattern() {
    // The §8 example: a dead loop. Exactly the pairs involving the dead
    // body are spurious; everything else is exact.
    let p = fx10::syntax::examples::conclusion_false_positive();
    let a = analyze(&p);
    let e = explore(&p, &[], ExploreConfig::default());
    assert!(!e.truncated);
    let s1 = p.labels().lookup("S1").unwrap();
    let a1 = p.labels().lookup("A1").unwrap();
    for (x, y) in a.mhp().iter_pairs() {
        let dynamic = e.mhp.contains(&(x.min(y), x.max(y)));
        let involves_dead_loop_body = [x, y].contains(&s1) || [x, y].contains(&a1);
        assert_eq!(
            !dynamic,
            involves_dead_loop_body,
            "pair ({}, {})",
            p.labels().display(x),
            p.labels().display(y)
        );
    }
}
