//! Fault-injection and resource-budget properties of the hardened
//! pipeline.
//!
//! Every engine in the workspace accepts a [`Budget`], observes a
//! [`CancelToken`] and (for the parallel engines) tolerates injected
//! worker panics. These tests drive those paths with random programs and
//! random fault plans and assert the robustness contract:
//!
//! - budget exhaustion yields a *typed, tagged, partial* result — never a
//!   panic, never a hang, and the partial answer is always a sound
//!   under-approximation of the unlimited answer;
//! - cancellation yields `Err(Fx10Error::Cancelled)`;
//! - an injected worker panic is contained and reported as
//!   `Err(Fx10Error::WorkerPanicked)` with the faulting worker's index;
//! - the CS→CI graceful-degradation path answers with a sound
//!   over-approximation (§7) of the context-sensitive analysis.

use fx10::analysis::{
    analyze_with, analyze_with_budget, analyze_with_fallback, AnalysisPath, LadderRung, Mode,
    SolverKind, Supervisor,
};
use fx10::robust::{Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error, PanicFault};
use fx10::semantics::{
    explore, explore_budgeted, explore_parallel_budgeted, explore_parallel_durable, run_budgeted,
    CheckpointSpec, Durability, ExploreConfig, ExplorerSnapshot, Scheduler, WatchdogSpec,
};
use fx10::suite::{random_fx10, RandomConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn cfg(seed: u64, methods: usize, stmts: usize, depth: usize) -> RandomConfig {
    RandomConfig {
        methods,
        stmts_per_method: stmts,
        max_depth: depth,
        seed,
    }
}

fn small_explore() -> ExploreConfig {
    ExploreConfig {
        max_states: 20_000,
        ..ExploreConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// P1: arbitrarily tiny budgets never panic the pipeline; the cut
    /// analysis is tagged with its exhaustion and its MHP set is a sound
    /// under-approximation of the unlimited fixpoint.
    #[test]
    fn tiny_budgets_yield_typed_partial_results(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..5,
        iters in 1u64..400,
        solver_pick in 0usize..4,
    ) {
        let p = random_fx10(cfg(seed, methods, stmts, 2));
        let solver = [
            SolverKind::Naive,
            SolverKind::Worklist,
            SolverKind::Scc,
            SolverKind::SccParallel(2),
        ][solver_pick];
        let budget = Budget::unlimited().with_max_iters(iters);
        let cancel = CancelToken::new();
        let partial = analyze_with_budget(&p, Mode::ContextSensitive, solver, budget, &cancel)
            .expect("nobody cancels and no deadline is set: budget cuts are Ok(partial)");
        let full = analyze_with(&p, Mode::ContextSensitive, solver);
        prop_assert!(full.exhausted.is_none());
        // Solver iterations only ever *grow* sets, so any prefix of the
        // fixpoint computation is a subset of the fixpoint.
        prop_assert!(
            partial.mhp().is_subset(full.mhp()),
            "budget-cut MHP must under-approximate the fixpoint"
        );
        if partial.exhausted.is_none() {
            // The budget sufficed: the answers must agree exactly.
            prop_assert!(full.mhp().is_subset(partial.mhp()));
        }
    }

    /// P2: a worker panic injected at a random (worker, trigger) point is
    /// contained — the explorer either finishes (the fault never fired)
    /// or reports exactly `WorkerPanicked` for that worker. No hang, no
    /// abort, no mangled result.
    #[test]
    fn injected_worker_panics_are_contained(
        seed in 0u64..10_000,
        threads in 1usize..5,
        worker in 0usize..5,
        after in 0u64..12,
    ) {
        let p = random_fx10(cfg(seed, 2, 3, 2));
        let faults = FaultPlan {
            panic_worker: Some(PanicFault { worker, after_states: after }),
            ..FaultPlan::none()
        };
        let r = explore_parallel_budgeted(
            &p,
            &[],
            small_explore(),
            threads,
            Budget::unlimited(),
            &CancelToken::new(),
            &faults,
        );
        match r {
            Ok(e) => {
                // The fault never fired (that worker saw too few items):
                // the result must equal the reference exploration.
                let reference = explore(&p, &[], small_explore());
                prop_assert_eq!(e.mhp, reference.mhp);
                prop_assert_eq!(e.deadlock_free, reference.deadlock_free);
            }
            Err(Fx10Error::WorkerPanicked { worker: w, message }) => {
                prop_assert_eq!(w, worker);
                prop_assert!(message.contains("injected fault"), "got: {}", message);
            }
            Err(other) => prop_assert!(false, "unexpected error: {:?}", other),
        }
    }

    /// P3: a pre-cancelled token stops every engine with a typed
    /// `Cancelled` error before it does any work.
    #[test]
    fn pre_cancelled_token_cancels_every_engine(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..4,
    ) {
        let p = random_fx10(cfg(seed, methods, stmts, 2));
        let cancel = CancelToken::new();
        cancel.cancel();
        prop_assert_eq!(
            explore_budgeted(&p, &[], small_explore(), Budget::unlimited(), &cancel)
                .map(|_| ())
                .unwrap_err(),
            Fx10Error::Cancelled
        );
        prop_assert_eq!(
            analyze_with_budget(
                &p,
                Mode::ContextSensitive,
                SolverKind::Worklist,
                Budget::unlimited(),
                &cancel,
            )
            .map(|_| ())
            .unwrap_err(),
            Fx10Error::Cancelled
        );
        prop_assert_eq!(
            run_budgeted(&p, &[], Scheduler::Leftmost, u64::MAX, Budget::unlimited(), &cancel)
                .map(|_| ())
                .unwrap_err(),
            Fx10Error::Cancelled
        );
    }

    /// P4: graceful degradation. When the context-sensitive analysis is
    /// cut by its budget, the fallback answers with the context-
    /// insensitive baseline — a sound over-approximation of the full CS
    /// fixpoint (§7) — and records why it degraded.
    #[test]
    fn fallback_is_a_sound_overapproximation(
        seed in 0u64..10_000,
        methods in 1usize..4,
        stmts in 1usize..5,
        cs_iters in 1u64..200,
    ) {
        let p = random_fx10(cfg(seed, methods, stmts, 2));
        let cancel = CancelToken::new();
        let out = analyze_with_fallback(
            &p,
            SolverKind::Worklist,
            Budget::unlimited().with_max_iters(cs_iters),
            Budget::unlimited(),
            &cancel,
        )
        .expect("fallback under an unlimited CI budget always answers");
        let full_cs = analyze_with(&p, Mode::ContextSensitive, SolverKind::Worklist);
        match out.path {
            AnalysisPath::ContextSensitive => {
                prop_assert!(out.cs_exhaustion.is_none());
                prop_assert!(out.analysis.exhausted.is_none());
                prop_assert!(out.analysis.mhp().is_subset(full_cs.mhp()));
                prop_assert!(full_cs.mhp().is_subset(out.analysis.mhp()));
            }
            AnalysisPath::ContextInsensitiveFallback => {
                prop_assert!(out.cs_exhaustion.is_some(), "fallback must record why");
                // The CI budget was unlimited, so the degraded answer is
                // complete — and over-approximates the CS fixpoint.
                prop_assert!(out.analysis.exhausted.is_none());
                prop_assert!(
                    full_cs.mhp().is_subset(out.analysis.mhp()),
                    "CI fallback must over-approximate CS"
                );
            }
        }
    }

    /// P5: the interpreter respects its budgets: it either completes or
    /// tags the outcome with the budget that ended it — never both, never
    /// neither.
    #[test]
    fn interpreter_budgets_are_tagged(
        seed in 0u64..10_000,
        steps in 1u64..60,
    ) {
        let p = random_fx10(cfg(seed, 2, 4, 2));
        let out = run_budgeted(
            &p,
            &[],
            Scheduler::Random(seed),
            steps,
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .expect("no cancellation, no deadline");
        if out.completed {
            prop_assert!(out.exhausted.is_none());
            prop_assert!(out.steps <= steps);
        } else {
            prop_assert_eq!(out.exhausted, Some(Exhaustion::Steps));
            prop_assert_eq!(out.steps, steps);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault-injection and budget unit tests
// ---------------------------------------------------------------------------

fn fork_join() -> fx10::syntax::Program {
    fx10::syntax::Program::parse(
        "def inc() { a[0] = a[0] + 1; }\n\
         def main() {\n\
           finish { async { inc(); } async { inc(); } async { inc(); inc(); } }\n\
           a[1] = 1;\n\
         }",
    )
    .expect("fixture parses")
}

#[test]
fn forced_budget_trip_tags_the_partial_exploration() {
    let p = fork_join();
    let faults = FaultPlan {
        trip_states_after: Some(1),
        ..FaultPlan::none()
    };
    let e = explore_parallel_budgeted(
        &p,
        &[],
        small_explore(),
        2,
        Budget::unlimited(),
        &CancelToken::new(),
        &faults,
    )
    .expect("a forced budget trip is a partial result, not an error");
    assert!(e.truncated);
    assert_eq!(e.exhausted, Some(Exhaustion::States));
    // The partial dynamic MHP is an under-approximation of the full one.
    let full = explore(&p, &[], small_explore());
    assert!(e.mhp.iter().all(|pr| full.mhp.contains(pr)));
}

#[test]
fn deterministic_injected_panic_reports_worker_zero() {
    let p = fork_join();
    let faults = FaultPlan {
        panic_worker: Some(PanicFault {
            worker: 0,
            after_states: 0,
        }),
        ..FaultPlan::none()
    };
    let r = explore_parallel_budgeted(
        &p,
        &[],
        small_explore(),
        1,
        Budget::unlimited(),
        &CancelToken::new(),
        &faults,
    );
    match r {
        Err(Fx10Error::WorkerPanicked { worker, message }) => {
            assert_eq!(worker, 0);
            assert!(message.contains("injected fault"));
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn mid_flight_cancellation_is_typed_and_prompt() {
    // A program with enough interleavings that exploration takes a while;
    // a helper thread cancels shortly after the exploration starts.
    let p = random_fx10(cfg(7, 4, 6, 3));
    let cancel = CancelToken::new();
    let canceller = {
        let token = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    let started = Instant::now();
    let r = explore_budgeted(
        &p,
        &[],
        ExploreConfig {
            max_states: 5_000_000,
            ..ExploreConfig::default()
        },
        Budget::unlimited(),
        &cancel,
    );
    let elapsed = started.elapsed();
    canceller.join().unwrap();
    // Either the space was tiny and exploration won the race, or the
    // cancellation arrived — in which case it must surface typed and the
    // engine must not have kept running to completion of a huge space.
    match r {
        Ok(e) => assert!(!e.truncated, "an uncancelled run must be complete"),
        Err(err) => {
            assert_eq!(err, Fx10Error::Cancelled);
            assert!(
                elapsed < Duration::from_secs(20),
                "cancellation must be prompt, took {elapsed:?}"
            );
        }
    }
}

#[test]
fn adversarial_schedule_is_semantically_invisible() {
    let p = fork_join();
    let faults = FaultPlan {
        adversarial_schedule: true,
        ..FaultPlan::none()
    };
    let lifo = explore_parallel_budgeted(
        &p,
        &[],
        small_explore(),
        2,
        Budget::unlimited(),
        &CancelToken::new(),
        &faults,
    )
    .expect("scheduling order must not introduce failures");
    let fifo = explore(&p, &[], small_explore());
    assert_eq!(lifo.mhp, fifo.mhp);
    assert_eq!(lifo.visited, fifo.visited);
    assert_eq!(lifo.deadlock_free, fifo.deadlock_free);
}

#[test]
fn expired_deadline_cuts_analysis_with_provenance() {
    let p = fork_join();
    let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
    let a = analyze_with_budget(
        &p,
        Mode::ContextSensitive,
        SolverKind::Worklist,
        budget,
        &CancelToken::new(),
    )
    .expect("deadline exhaustion is a tagged partial result");
    assert_eq!(a.exhausted, Some(Exhaustion::Deadline));
}

// ---------------------------------------------------------------------------
// Malformed-input fixtures: parsing is total and panic-free
// ---------------------------------------------------------------------------

#[test]
fn malformed_fixtures_produce_typed_parse_errors() {
    for (path, needle) in [
        ("programs/bad_unclosed.fx10", "expected `}`"),
        ("programs/bad_unknown_method.fx10", "unknown method"),
        ("programs/bad_token.fx10", "unexpected character"),
    ] {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let err = fx10::syntax::Program::parse(&src)
            .err()
            .unwrap_or_else(|| panic!("{path} must fail to parse"));
        assert!(
            err.message.contains(needle),
            "{path}: expected `{needle}` in `{}`",
            err.message
        );
    }
}

#[test]
fn program_without_main_degrades_to_the_empty_analysis() {
    let src = std::fs::read_to_string("programs/bad_no_main.fx10").unwrap();
    let p = fx10::syntax::Program::parse(&src).expect("no-main program still parses");
    // Every engine treats the missing main as an empty program rather
    // than panicking.
    let a = analyze_with(&p, Mode::ContextSensitive, SolverKind::Naive);
    assert_eq!(a.mhp().len(), 0);
    let e = explore(&p, &[], small_explore());
    assert!(e.deadlock_free);
    assert!(e.mhp.is_empty());
}

// ---------------------------------------------------------------------------
// Durable exploration: watchdog and degradation-ladder integration
// ---------------------------------------------------------------------------

fn temp_snap(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fx10-{tag}-{}-{n}.fxsnap", std::process::id()))
}

/// A wedged worker (no heartbeat, no progress, no exit) is detected by
/// the watchdog and surfaced as a typed `WorkerStalled` for exactly that
/// worker — and the stall still leaves a usable final checkpoint behind:
/// resuming from it without the fault completes to the full reference.
#[test]
fn watchdog_converts_a_wedged_worker_into_a_typed_stall() {
    let p = fork_join();
    let path = temp_snap("robust-wedge");
    let faults = FaultPlan {
        wedge_worker: Some(PanicFault {
            worker: 0,
            after_states: 0,
        }),
        ..FaultPlan::none()
    };
    let r = explore_parallel_durable(
        &p,
        &[],
        small_explore(),
        2,
        Budget::unlimited(),
        &CancelToken::new(),
        &faults,
        Durability {
            checkpoint: Some(CheckpointSpec {
                path: path.clone(),
                every: 5,
            }),
            resume: None,
            watchdog: Some(WatchdogSpec {
                stall_after: Duration::from_millis(150),
                poll: Duration::from_millis(10),
            }),
        },
    );
    match r {
        Err(Fx10Error::WorkerStalled { worker, stalled_ms }) => {
            assert_eq!(worker, 0);
            assert!(stalled_ms >= 150, "frozen for only {stalled_ms} ms");
        }
        other => panic!("expected WorkerStalled, got {other:?}"),
    }
    let snap = ExplorerSnapshot::load(&path).expect("a stall must leave a final checkpoint");
    let resumed = explore_parallel_durable(
        &p,
        &[],
        small_explore(),
        2,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
        Durability {
            checkpoint: None,
            resume: Some(&snap),
            watchdog: None,
        },
    )
    .expect("resuming the post-stall checkpoint completes");
    let reference = explore(&p, &[], small_explore());
    assert_eq!(resumed.visited, reference.visited);
    assert_eq!(resumed.mhp, reference.mhp);
    assert_eq!(resumed.deadlock_free, reference.deadlock_free);
    assert_eq!(resumed.terminals, reference.terminals);
    let _ = std::fs::remove_file(&path);
}

/// A wedge that defeats every parallel attempt sends the supervisor down
/// to the sequential rung, which still answers with the *exact* dynamic
/// MHP relation — and the trace records the stalls and backoffs.
#[test]
fn supervisor_answers_on_the_sequential_rung_under_a_persistent_wedge() {
    let p = fork_join();
    let faults = FaultPlan {
        wedge_worker: Some(PanicFault {
            worker: 0,
            after_states: 0,
        }),
        ..FaultPlan::none()
    };
    let sup = Supervisor {
        jobs: 2,
        max_retries: 1,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        stall_after: Duration::from_millis(150),
        poll: Duration::from_millis(10),
        ..Supervisor::default()
    };
    let ans = sup
        .run(&p, &[], &CancelToken::new(), &faults)
        .expect("the ladder always answers when nobody cancels");
    assert_eq!(ans.rung, LadderRung::SequentialExplore);
    assert!(ans.rung.is_dynamic());
    assert_eq!(ans.deadlock_free, Some(true));
    let reference = explore(&p, &[], ExploreConfig::default());
    assert_eq!(ans.pairs, reference.mhp);
    assert!(
        ans.trace.iter().any(|l| l.contains("stalled")),
        "trace must record the stall: {:?}",
        ans.trace
    );
}

/// When dynamic exploration is infeasible within the state budget the
/// supervisor descends to the static rungs, whose answer soundly
/// over-approximates the dynamic relation (Theorem 2).
#[test]
fn supervisor_descends_to_a_static_rung_when_exploration_is_infeasible() {
    let p = fork_join();
    let sup = Supervisor {
        explore_config: ExploreConfig {
            max_states: 2,
            ..ExploreConfig::default()
        },
        ..Supervisor::default()
    };
    let ans = sup
        .run(&p, &[], &CancelToken::new(), &FaultPlan::none())
        .expect("the static rungs never refuse");
    assert_eq!(ans.rung, LadderRung::ContextSensitive);
    assert!(!ans.rung.is_dynamic());
    assert_eq!(ans.deadlock_free, None);
    let reference = explore(&p, &[], ExploreConfig::default());
    for &(x, y) in &reference.mhp {
        assert!(
            ans.pairs.contains(&(x.min(y), x.max(y))),
            "static rung must cover dynamic pair ({x}, {y})"
        );
    }
}
