//! E4–E7: the 13 synthetic benchmarks reproduce the paper's published
//! structure and the qualitative results of Figures 6–9.

use fx10::analysis::analysis::SolverKind;
use fx10::analysis::Mode;
use fx10::frontend::{analyze_condensed, async_pairs_condensed};
use fx10::suite::benchmarks::Style;
use fx10::suite::{all_benchmarks, benchmark};

#[test]
fn figure_7_node_counts_are_exact() {
    for bm in all_benchmarks() {
        assert_eq!(bm.program.node_counts(), bm.spec.nodes, "{}", bm.spec.name);
    }
}

#[test]
fn figure_6_async_columns_are_exact() {
    for bm in all_benchmarks() {
        let st = bm.program.async_stats();
        assert_eq!(st, bm.spec.asyncs, "{}", bm.spec.name);
        assert_eq!(
            st.total,
            st.loop_asyncs + st.place_switch,
            "{}: categories partition the asyncs",
            bm.spec.name
        );
    }
}

#[test]
fn figure_6_constraint_counts_scale_with_paper() {
    // Our counting scheme differs from the paper's by a bounded factor
    // (see DESIGN.md); check the counts are within 2.5x of the paper's,
    // and that the level-1 : level-2 ratio exceeds 1 as in the paper.
    for bm in all_benchmarks() {
        let a = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Worklist);
        let [p_slab, p_l1, p_l2] = bm.spec.paper_constraints;
        for (ours, paper, what) in [
            (a.stats.slabels_constraints, p_slab, "Slabels"),
            (a.stats.level1_constraints, p_l1, "level-1"),
            (a.stats.level2_constraints, p_l2, "level-2"),
        ] {
            let ratio = ours as f64 / paper as f64;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: {what} count {ours} vs paper {paper} (ratio {ratio:.2})",
                bm.spec.name
            );
        }
        assert!(a.stats.level1_constraints > a.stats.level2_constraints);
        assert_eq!(a.stats.slabels_constraints, a.stats.level2_constraints);
    }
}

#[test]
fn figure_8_pair_magnitudes_track_paper() {
    // Pair totals should land in the paper's regime: within a factor ~3
    // of the published figure (or ±4 pairs for the tiny benchmarks), and
    // the dominant category should match.
    for bm in all_benchmarks() {
        let a = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Worklist);
        let rep = async_pairs_condensed(&a);
        let paper = bm.spec.fig8.pairs;
        let (ours, theirs) = (rep.total() as f64, paper[0] as f64);
        assert!(
            (ours - theirs).abs() <= 4.0 || (0.33..=3.0).contains(&(ours / theirs)),
            "{}: total pairs {ours} vs paper {theirs}",
            bm.spec.name
        );
    }
}

#[test]
fn figure_9_small_benchmarks_ci_equals_cs() {
    // §7: "For the 11 smallest benchmarks, the runs used roughly the same
    // amount of time and space, and we got the exact same results."
    for bm in all_benchmarks() {
        if bm.spec.style != Style::Flat {
            continue;
        }
        let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Worklist);
        let ci = analyze_condensed(
            &bm.program,
            Mode::ContextInsensitive { keep_scross: true },
            SolverKind::Worklist,
        );
        // "we got the exact same results" — the MHP relations coincide.
        // (The internal o_i summaries legitimately differ: CI's are
        // merged-context by definition.)
        assert_eq!(cs.mhp(), ci.mhp(), "{}", bm.spec.name);
        assert_eq!(
            async_pairs_condensed(&cs),
            async_pairs_condensed(&ci),
            "{}",
            bm.spec.name
        );
    }
}

#[test]
fn figure_9_mg_plasma_blowup_shape() {
    for name in ["mg", "plasma"] {
        let bm = benchmark(name).unwrap();
        let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Worklist);
        let ci = analyze_condensed(
            &bm.program,
            Mode::ContextInsensitive { keep_scross: true },
            SolverKind::Worklist,
        );
        let (rc, ri) = (async_pairs_condensed(&cs), async_pairs_condensed(&ci));
        assert!(ri.total() > rc.total(), "{name}: CI produces more pairs");
        let extra_diff = ri.diff_method.saturating_sub(rc.diff_method);
        let extra_other = (ri.total() - rc.total()).saturating_sub(extra_diff);
        assert!(
            extra_diff >= extra_other,
            "{name}: the blowup is mostly diff pairs ({extra_diff} vs {extra_other})"
        );
        assert!(
            ci.stats.bytes >= cs.stats.bytes,
            "{name}: CI uses at least as much space"
        );
    }
}

#[test]
fn plasma_dominates_mg_dominates_the_rest_in_cost() {
    // Figure 8's time ordering is driven by constraint-system size; check
    // the machine-independent proxy: number of level-1 constraints.
    let work = |name: &str| {
        let bm = benchmark(name).unwrap();
        analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive)
            .stats
            .level1_constraints
    };
    let plasma = work("plasma");
    let mg = work("mg");
    let stream = work("stream");
    let raytracer = work("raytracer");
    assert!(plasma > mg, "plasma ({plasma}) > mg ({mg})");
    assert!(mg > raytracer, "mg ({mg}) > raytracer ({raytracer})");
    assert!(
        raytracer > stream,
        "raytracer ({raytracer}) > stream ({stream})"
    );
}

#[test]
fn benchmarks_expose_loc_from_figure_6() {
    for bm in all_benchmarks() {
        assert_eq!(bm.program.loc, bm.spec.loc, "{}", bm.spec.name);
    }
}
