//! E10: Theorems 4–6 — types ⇄ constraints.
//!
//! - **Theorem 4 (equivalence)**: `⊢ p : E` iff the constraint system has
//!   a solution extending `E`. We check both least solutions coincide:
//!   the fixed point of the typing rules equals the `(m_i, o_i)` of the
//!   solved constraints.
//! - **Theorem 5/6**: the solver always produces a least solution, hence
//!   every program has a type — `infer_types` + `typecheck` succeed on
//!   arbitrary programs.
//! - Solver-implementation equivalence: naive round-robin and worklist
//!   produce identical solutions, in any constraint order.

use fx10::analysis::analysis::{analyze_with, SolverKind};
use fx10::analysis::typesystem::{infer_types, typecheck};
use fx10::analysis::Mode;
use fx10::suite::{random_fx10, RandomConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn types_equal_constraints_on_random_programs(
        seed in 0u64..100_000,
        methods in 1usize..6,
        stmts in 1usize..6,
        depth in 0usize..4,
    ) {
        let p = random_fx10(RandomConfig {
            methods,
            stmts_per_method: stmts,
            max_depth: depth,
            seed,
        });
        // Theorem 6: every program has a type.
        let (env, _rounds) = infer_types(&p);
        prop_assert!(typecheck(&p, &env));

        // Theorem 4: least type environment == least constraint solution.
        let a = analyze_with(&p, Mode::ContextSensitive, SolverKind::Naive);
        prop_assert_eq!(env, a.type_env());
    }

    #[test]
    fn naive_and_worklist_solvers_agree(
        seed in 0u64..100_000,
        methods in 1usize..5,
        stmts in 1usize..6,
    ) {
        let p = random_fx10(RandomConfig {
            methods,
            stmts_per_method: stmts,
            max_depth: 3,
            seed,
        });
        for mode in [
            Mode::ContextSensitive,
            Mode::ContextInsensitive { keep_scross: true },
        ] {
            let a = analyze_with(&p, mode, SolverKind::Naive);
            for solver in [
                SolverKind::Worklist,
                SolverKind::Scc,
                SolverKind::SccParallel(4),
            ] {
                let b = analyze_with(&p, mode, solver);
                prop_assert_eq!(a.mhp(), b.mhp());
                for f in 0..p.method_count() {
                    let f = fx10::syntax::FuncId(f as u32);
                    prop_assert_eq!(a.o_of(f), b.o_of(f));
                    prop_assert_eq!(a.mhp_of(f), b.mhp_of(f));
                }
            }
        }
    }

    #[test]
    fn ci_scross_term_is_redundant(
        seed in 0u64..100_000,
        methods in 2usize..5,
        stmts in 1usize..5,
    ) {
        // §7: "for a context-insensitive analysis we can remove
        // Scross_p(p(f_i), R) from Rule (82) without changing the
        // analysis" — property-checked, not just on the examples.
        let p = random_fx10(RandomConfig {
            methods,
            stmts_per_method: stmts,
            max_depth: 3,
            seed,
        });
        let with = analyze_with(
            &p,
            Mode::ContextInsensitive { keep_scross: true },
            SolverKind::Worklist,
        );
        let without = analyze_with(
            &p,
            Mode::ContextInsensitive { keep_scross: false },
            SolverKind::Worklist,
        );
        prop_assert_eq!(with.mhp(), without.mhp());
    }

    #[test]
    fn principal_typing_lemma_on_random_programs(
        seed in 0u64..100_000,
        extra in proptest::collection::vec(0u32..20, 0..5),
    ) {
        // Lemma 12: M_R = Scross(s, R) ∪ M_∅ and O_R = R ∪ O_∅.
        use fx10::analysis::index::StmtIndex;
        use fx10::analysis::sets::{symcross, LabelSet};
        use fx10::analysis::slabels::compute_slabels;
        use fx10::analysis::typesystem::{slabels_of_dyn, type_stmt};

        let p = random_fx10(RandomConfig {
            methods: 3,
            stmts_per_method: 4,
            max_depth: 3,
            seed,
        });
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let (env, _) = infer_types(&p);
        let n = p.label_count();
        let r = LabelSet::from_labels(
            n,
            extra
                .iter()
                .map(|&x| fx10::syntax::Label(x % n as u32)),
        );
        let body = p.body(p.main());
        let empty = LabelSet::empty(n);
        let (m_r, o_r) = type_stmt(&p, &slab, &env, &r, body);
        let (m_0, o_0) = type_stmt(&p, &slab, &env, &empty, body);

        let mut expect_m = symcross(&slabels_of_dyn(&slab, n, body), &r);
        expect_m.union_with(&m_0);
        prop_assert_eq!(m_r, expect_m);

        let mut expect_o = r.clone();
        expect_o.union_with(&o_0);
        prop_assert_eq!(o_r, expect_o);
    }
}

#[test]
fn typecheck_rejects_perturbed_environments() {
    // A non-solution must be rejected: take the inferred env and drop one
    // pair from some method's M.
    use fx10::analysis::typesystem::{MethodSummary, TypeEnv};
    let p = fx10::syntax::examples::example_2_2();
    let (env, _) = infer_types(&p);
    assert!(typecheck(&p, &env));

    let f = p.find_method("main").unwrap();
    let mut methods: Vec<MethodSummary> = (0..p.method_count())
        .map(|i| env.get(fx10::syntax::FuncId(i as u32)).clone())
        .collect();
    // Empty out main's M: no longer a fixed point.
    methods[f.index()].m = fx10::analysis::sets::PairSet::empty(p.label_count());
    let broken = TypeEnv::new(methods);
    assert!(!typecheck(&p, &broken));
}
