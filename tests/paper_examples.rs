//! E1–E3: the paper's worked examples, end to end.
//!
//! §2.1 / Figure 5: the intraprocedural example must yield *exactly* the
//! pairs the paper lists (best possible for that program). §2.2 / §7: the
//! context-sensitive analysis must avoid the (S3, S4) false positive that
//! the context-insensitive baseline produces.

use fx10::analysis::{analyze, analyze_ci};
use fx10::semantics::{explore, ExploreConfig};
use fx10::syntax::examples;

fn norm(v: Vec<(&str, &str)>) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = v
        .into_iter()
        .map(|(a, b)| {
            if a <= b {
                (a.to_string(), b.to_string())
            } else {
                (b.to_string(), a.to_string())
            }
        })
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn example_2_1_produces_exactly_the_papers_pairs() {
    let p = examples::example_2_1();
    let a = analyze(&p);
    assert_eq!(
        a.pairs_named(&p),
        norm(examples::example_2_1_expected_pairs())
    );
}

#[test]
fn example_2_1_analysis_is_best_possible() {
    // §2.1: "for this program our algorithm determines the best possible
    // may-happen-in-parallel information" — every reported pair is
    // dynamically realizable.
    let p = examples::example_2_1();
    let a = analyze(&p);
    let e = explore(&p, &[], ExploreConfig::default());
    assert!(!e.truncated);
    for (x, y) in a.mhp().iter_pairs() {
        assert!(
            e.mhp.contains(&(x.min(y), x.max(y))),
            "static pair ({}, {}) is not dynamically realizable",
            p.labels().display(x),
            p.labels().display(y)
        );
    }
}

#[test]
fn example_2_2_context_sensitive_is_exact() {
    let p = examples::example_2_2();
    let a = analyze(&p);
    assert_eq!(
        a.pairs_named(&p),
        norm(examples::example_2_2_expected_pairs())
    );

    // And best possible: every static pair occurs dynamically.
    let e = explore(&p, &[], ExploreConfig::default());
    assert!(!e.truncated);
    for (x, y) in a.mhp().iter_pairs() {
        assert!(e.mhp.contains(&(x.min(y), x.max(y))));
    }
}

#[test]
fn example_2_2_context_insensitive_adds_the_spurious_pairs() {
    let p = examples::example_2_2();
    let ci = analyze_ci(&p);
    let mut expected = examples::example_2_2_expected_pairs();
    expected.extend(examples::example_2_2_ci_extra_pairs());
    assert_eq!(ci.pairs_named(&p), norm(expected));
}

#[test]
fn figure_5_constraints_render_with_paper_shapes() {
    let p = examples::example_2_1();
    let a = analyze(&p);
    let txt = fx10::analysis::gen::render_constraints(&p, a.index(), a.generated());
    for needle in [
        "r_S0 = {}",
        "r_S13 = {S2} ∪ r_S1",
        "m_S1 = Lcross(S1, r_S1) ∪ m_S13 ∪ m_S2",
        "m_S13 = Lcross(S13, r_S13) ∪ m_S5 ∪ m_S8",
        "m_S6 = Lcross(S6, r_S6) ∪ m_S11 ∪ m_S7",
        "m_S7 = Lcross(S7, r_S7) ∪ m_S12",
        "m_S11 = Lcross(S11, r_S11)",
        "m_S12 = Lcross(S12, r_S12)",
        "m_S0 = Lcross(S0, r_S0) ∪ m_S1 ∪ m_S3",
    ] {
        assert!(txt.contains(needle), "missing `{needle}` in:\n{txt}");
    }
}

#[test]
fn conclusion_false_positive_pattern() {
    // §8: the only false-positive shape the paper identifies — a loop
    // that never runs. Statically reported, dynamically absent.
    let p = examples::conclusion_false_positive();
    let a = analyze(&p);
    let e = explore(&p, &[], ExploreConfig::default());
    let s1 = p.labels().lookup("S1").unwrap();
    let s2 = p.labels().lookup("S2").unwrap();
    assert!(a.may_happen_in_parallel(s1, s2), "statically reported");
    let key = (s1.min(s2), s1.max(s2));
    assert!(!e.mhp.contains(&key), "dynamically absent");
}

#[test]
fn self_and_same_category_scenarios_are_dynamically_real() {
    // The §6 category scenarios are *not* over-approximation artifacts:
    // the loops run twice, so the pairs appear dynamically too.
    let p = examples::self_category();
    let a = analyze(&p);
    let e = explore(&p, &[], ExploreConfig::default());
    let s1 = p.labels().lookup("S1").unwrap();
    assert!(a.may_happen_in_parallel(s1, s1));
    assert!(e.mhp.contains(&(s1, s1)));

    let p = examples::same_category();
    let a = analyze(&p);
    let e = explore(&p, &[], ExploreConfig::default());
    let s1 = p.labels().lookup("S1").unwrap();
    let s2 = p.labels().lookup("S2").unwrap();
    assert!(a.may_happen_in_parallel(s1, s2));
    assert!(e.mhp.contains(&(s1.min(s2), s1.max(s2))));
}
