//! # fx10 — Featherweight X10
//!
//! Umbrella crate for the FX10 reproduction of *"Featherweight X10: A Core
//! Calculus for Async-Finish Parallelism"* (Lee & Palsberg, PPoPP 2010).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! - [`syntax`] — the FX10 AST, parser, pretty-printer and builder.
//! - [`semantics`] — the small-step operational semantics, interpreter,
//!   exhaustive state-space explorer and dynamic (ground-truth) MHP.
//! - [`analysis`] — the paper's contribution: the context-sensitive
//!   may-happen-in-parallel type system, set constraints and solvers,
//!   plus the context-insensitive baseline.
//! - [`frontend`] — the X10-Lite condensed-form frontend.
//! - [`suite`] — the 13 synthetic PPoPP'10 benchmarks and random program
//!   generators.
//! - [`clocked`] — the §8 clocks extension: CFX10 with a barrier,
//!   exhaustive exploration, and a phase-refined MHP analysis.
//! - [`robust`] — the shared robustness layer: typed errors, resource
//!   budgets, cooperative cancellation and the fault-injection plan.
//! - [`absint`] — the abstract-interpretation value analysis of the
//!   shared array and its MHP guard-feasibility oracle.
//! - [`runtime`] — real parallel execution: the work-stealing scheduler,
//!   sequential elision, the vector-clock race detector, and guided
//!   witness replay.

#![warn(missing_docs)]
pub use fx10_absint as absint;
pub use fx10_clocked as clocked;
pub use fx10_core as analysis;
pub use fx10_frontend as frontend;
pub use fx10_lints as lints;
pub use fx10_robust as robust;
pub use fx10_runtime as runtime;
pub use fx10_semantics as semantics;
pub use fx10_suite as suite;
pub use fx10_syntax as syntax;
