//! The downstream client the paper motivates (§1): a data-race detector
//! built on the MHP analysis.
//!
//! A buggy parallel accumulator races on `a[0]`; adding a `finish` fixes
//! it. The detector reports exactly the racing pair, and the interpreter
//! demonstrates the nondeterministic outcome the race causes.
//!
//! ```sh
//! cargo run --example race_detection
//! ```

use fx10::analysis::analyze;
use fx10::analysis::race::{detect_races, render_races};
use fx10::semantics::{run_result, Scheduler};
use fx10::syntax::Program;

fn report(title: &str, src: &str) {
    let p = Program::parse(src).expect("parses");
    let a = analyze(&p);
    let races = detect_races(&p, &a);
    println!("== {title} ==");
    print!("{}", render_races(&p, &races));
    // Show the observable consequence: final a[0] under two schedules.
    let left = run_result(&p, &[], Scheduler::Leftmost).unwrap();
    let right = run_result(&p, &[], Scheduler::Rightmost).unwrap();
    println!("final a[0]: leftmost schedule = {left}, rightmost = {right}");
    if left != right {
        println!("→ schedule-dependent result: the race is real\n");
    } else {
        println!("→ deterministic result\n");
    }
}

fn main() {
    // Two unsynchronized writers.
    report(
        "buggy: async writer races the main task",
        "def main() {\n\
           W1: async { a[0] = 1; }\n\
           W2: a[0] = 2;\n\
         }",
    );

    // The fix: a finish forces the async to complete first.
    report(
        "fixed: finish joins the writer before the second write",
        "def main() {\n\
           finish { W1: async { a[0] = 1; } }\n\
           W2: a[0] = 2;\n\
         }",
    );

    // A subtler case: read/write race through an accumulator pattern.
    report(
        "buggy: parallel increments lose updates",
        "def bump() { a[0] = a[0] + 1; }\n\
         def main() {\n\
           a[1] = 1;\n\
           while (a[1] != 0) {\n\
             A: async { bump(); }\n\
             B: async { bump(); }\n\
             a[1] = 0;\n\
           }\n\
         }",
    );

    report(
        "fixed: each increment finished before the next",
        "def bump() { a[0] = a[0] + 1; }\n\
         def main() {\n\
           a[1] = 1;\n\
           while (a[1] != 0) {\n\
             finish { A: async { bump(); } }\n\
             finish { B: async { bump(); } }\n\
             a[1] = 0;\n\
           }\n\
         }",
    );
}
