//! Executing FX10: the calculus is Turing-complete and this library ships
//! a real small-step interpreter. This example computes with async/finish
//! parallelism under three schedulers and shows (a) confluence of
//! well-synchronized programs and (b) Theorem 1 — runs end only by
//! completing, never by deadlock.
//!
//! ```sh
//! cargo run --example interpreter
//! ```

use fx10::semantics::{explore, run, ExploreConfig, Scheduler};
use fx10::syntax::Program;

fn main() {
    // A fork-join sum: four async increments of a[0], joined by finish,
    // then a completion flag. Confluent: every schedule gives 4.
    let p = Program::parse(
        "def inc() { a[0] = a[0] + 1; }\n\
         def main() {\n\
           finish {\n\
             async { inc(); }\n\
             async { inc(); }\n\
             async { inc(); inc(); }\n\
           }\n\
           a[1] = 1;\n\
         }",
    )
    .expect("parses");

    println!("fork-join sum under three schedulers:");
    for (name, s) in [
        ("leftmost ", Scheduler::Leftmost),
        ("rightmost", Scheduler::Rightmost),
        ("random   ", Scheduler::Random(2026)),
    ] {
        let out = run(&p, &[], s, 10_000);
        println!(
            "  {name}: a[0] = {}, a[1] = {}, {} steps, completed = {}",
            out.array.get(0),
            out.array.get(1),
            out.steps,
            out.completed
        );
        assert_eq!(out.array.get(0), 4, "finish makes the sum deterministic");
    }

    // A data-dependent loop: copy-by-increment bounded by input.
    let loopy = Program::parse(
        "def main() {\n\
           while (a[1] != 0) {\n\
             a[0] = a[0] + 1;\n\
             a[1] = a[2] + 1;\n\
             a[2] = a[3] + 1;\n\
           }\n\
         }",
    )
    .expect("parses");
    // a[1]=1, a[2]=-2, a[3]=-2: runs exactly twice.
    let out = run(&loopy, &[10, 1, -2, -2], Scheduler::Leftmost, 10_000);
    println!(
        "\nbounded loop: a[0] = {} after {} steps (expected 12)",
        out.array.get(0),
        out.steps
    );

    // Theorem 1, exhaustively: every reachable state of the fork-join
    // program can step (no deadlocks), across all interleavings.
    let e = explore(&p, &[], ExploreConfig::default());
    println!(
        "\nexhaustive exploration: {} states, {} terminal(s), deadlock-free = {}",
        e.visited, e.terminals, e.deadlock_free
    );
    assert!(e.deadlock_free);
}
