//! The paper's headline comparison (§2.2, §7): context-sensitive vs
//! context-insensitive interprocedural MHP analysis, on the worked
//! example and on the two large benchmarks where they diverge.
//!
//! ```sh
//! cargo run --release --example context_sensitivity
//! ```

use fx10::analysis::analysis::SolverKind;
use fx10::analysis::{analyze, analyze_ci, Mode};
use fx10::frontend::{analyze_condensed, async_pairs_condensed};
use fx10::syntax::examples;

fn main() {
    // --- The §2.2 example -------------------------------------------
    let p = examples::example_2_2();
    let cs = analyze(&p);
    let ci = analyze_ci(&p);

    println!("Section 2.2 example");
    println!("  context-sensitive pairs:   {:?}", cs.pairs_named(&p));
    println!("  context-insensitive pairs: {:?}", ci.pairs_named(&p));
    let s3 = p.labels().lookup("S3").unwrap();
    let s4 = p.labels().lookup("S4").unwrap();
    println!(
        "  (S3, S4): CS = {}, CI = {}  ← the CI false positive",
        cs.may_happen_in_parallel(s3, s4),
        ci.may_happen_in_parallel(s3, s4)
    );
    println!(
        "  why: CI merges the two call sites of f, so S3 — live at the\n\
         \x20 end of the *first* call — appears live at the end of the\n\
         \x20 second call too, where async S4 follows.\n"
    );

    // --- mg and plasma (Figure 9) ------------------------------------
    for name in ["mg", "plasma"] {
        let bm = fx10::suite::benchmark(name).expect("known benchmark");
        let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive);
        let ci = analyze_condensed(
            &bm.program,
            Mode::ContextInsensitive { keep_scross: true },
            SolverKind::Naive,
        );
        let (rc, ri) = (async_pairs_condensed(&cs), async_pairs_condensed(&ci));
        println!("{name}:");
        println!(
            "  CS: {:>8.1} ms {:>8.2} MB  pairs {}/{}/{}/{}",
            cs.stats.millis,
            cs.stats.bytes as f64 / 1e6,
            rc.total(),
            rc.self_pairs,
            rc.same_method,
            rc.diff_method
        );
        println!(
            "  CI: {:>8.1} ms {:>8.2} MB  pairs {}/{}/{}/{}  ({:.1}x pairs)",
            ci.stats.millis,
            ci.stats.bytes as f64 / 1e6,
            ri.total(),
            ri.self_pairs,
            ri.same_method,
            ri.diff_method,
            ri.total() as f64 / rc.total() as f64
        );
    }
    println!(
        "\npaper (Figure 9): mg 272 → 681 pairs, plasma 258 → 2281 —\n\
         the blowup lands almost entirely in the diff column, as here."
    );
}
