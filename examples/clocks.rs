//! The §8 clocks extension in action: CFX10's barrier (`next`) orders
//! phases across clocked activities, and the phase-refined MHP analysis
//! sees it.
//!
//! ```sh
//! cargo run --example clocks
//! ```

use fx10::clocked::ast::{async_, casync, next, skip};
use fx10::clocked::{clocked_mhp, explore_clocked, CProgram};
use fx10::syntax::Label;

fn main() {
    // main (registered):      casync { A; next; B }   X; next; Y
    //
    //   phase 0:   A ∥ X
    //   — barrier —
    //   phase 1:   B ∥ Y
    //
    // plus an unclocked async { F } that floats across the barrier.
    let p = CProgram::new(vec![
        casync(vec![skip(), next(), skip()]), // 0; 1=A; 2=next; 3=B
        skip(),                               // 4=X
        async_(vec![skip()]),                 // 5; 6=F (unregistered)
        next(),                               // 7
        skip(),                               // 8=Y
    ]);
    let name = |l: u32| match l {
        1 => "A",
        3 => "B",
        4 => "X",
        6 => "F",
        8 => "Y",
        _ => "?",
    };

    let a = clocked_mhp(&p);
    println!("phases:");
    for l in [1u32, 3, 4, 6, 8] {
        println!(
            "  {}: {}",
            name(l),
            match a.phases[l as usize] {
                Some(ph) => format!("phase {ph}"),
                None => "unbound (unclocked async)".to_string(),
            }
        );
    }

    println!("\nbarrier-blind MHP vs phase-refined:");
    for (x, y) in [(1u32, 4u32), (3, 8), (1, 8), (3, 4), (6, 4), (6, 8)] {
        let (lx, ly) = (Label(x), Label(y));
        println!(
            "  {} ∥ {} : base = {:<5} refined = {}",
            name(x),
            name(y),
            a.base.contains(lx, ly),
            a.refined.contains(lx, ly)
        );
    }

    // Ground truth from exhaustive exploration of the clocked semantics.
    let e = explore_clocked(&p, 200_000);
    println!(
        "\nexhaustive check: {} configurations, deadlock-free = {}, {} dynamic pairs",
        e.visited,
        e.deadlock_free,
        e.mhp.len()
    );
    for &(x, y) in &e.mhp {
        assert!(a.refined.contains(x, y), "soundness");
    }
    assert!(
        !a.refined.contains(Label(1), Label(8)),
        "A ∦ Y: barrier-ordered"
    );
    assert!(a.refined.contains(Label(6), Label(8)), "F floats: F ∥ Y");
    println!("refined analysis is sound, and strictly sharper than the barrier-blind one");
}
