//! Machine-checking the paper's theorems on random programs:
//!
//! - Theorem 1 (deadlock freedom): every reachable state steps;
//! - Theorems 2–3 (soundness): dynamic MHP ⊆ static MHP;
//! - Theorem 4/6 (types ⇄ constraints): the inferred type environment
//!   equals the constraint solution, for every program.
//!
//! ```sh
//! cargo run --release --example soundness_check
//! ```

use fx10::analysis::analyze;
use fx10::analysis::typesystem::{infer_types, typecheck};
use fx10::semantics::{explore, ExploreConfig};
use fx10::suite::{random_fx10, RandomConfig};

fn main() {
    let trials = 200u64;
    let mut states = 0usize;
    let mut dynamic_pairs = 0usize;
    let mut static_pairs = 0usize;
    let mut exact = 0usize;

    for seed in 0..trials {
        let p = random_fx10(RandomConfig {
            methods: 1 + (seed % 4) as usize,
            stmts_per_method: 2 + (seed % 3) as usize,
            max_depth: 2 + (seed % 2) as usize,
            seed,
        });

        // Theorems 1–3.
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 30_000,
                ..ExploreConfig::default()
            },
        );
        assert!(e.deadlock_free, "Theorem 1 violated at seed {seed}");
        let a = analyze(&p);
        for &(x, y) in &e.mhp {
            assert!(
                a.may_happen_in_parallel(x, y),
                "Theorem 2/3 violated at seed {seed}: dynamic pair ({x:?},{y:?}) not in M"
            );
        }

        // Theorem 4/6.
        let (env, _) = infer_types(&p);
        assert!(typecheck(&p, &env), "Theorem 6 violated at seed {seed}");
        assert_eq!(env, a.type_env(), "Theorem 4 violated at seed {seed}");

        states += e.visited;
        dynamic_pairs += e.mhp.len();
        static_pairs += a.mhp().len();
        if !e.truncated && e.mhp.len() == a.mhp().len() {
            exact += 1;
        }
    }

    println!("checked {trials} random programs:");
    println!("  {states} states explored, all deadlock-free (Theorem 1)");
    println!(
        "  {dynamic_pairs} dynamic pairs, all inside the {static_pairs} static pairs (Theorems 2-3)"
    );
    println!("  every inferred type environment typechecked and matched the constraint solution (Theorems 4/6)");
    println!(
        "  {exact}/{trials} programs had *zero* false positives (static == dynamic exactly) — \
         the paper found none on its benchmarks either (§6)"
    );
}
