//! The X10-Lite frontend end to end: parse an X10-shaped program, condense
//! it to the ten-node-kind form (paper §6, Figure 7), run the analysis and
//! print the Figure 6/7/8-style statistics for it.
//!
//! ```sh
//! cargo run --example x10_frontend
//! ```

use fx10::analysis::analysis::SolverKind;
use fx10::analysis::Mode;
use fx10::frontend::{analyze_condensed, async_pairs_condensed, parse};

const SRC: &str = "\
def init_grid() {
  for (int i = 0; i < n; i++) { compute; }
  return;
}
def relax() {
  foreach (point p : interior) {
    compute;
  }
}
def exchange_halo() {
  ateach (place q : dist.places()) {
    compute;
  }
}
def step() {
  finish { relax(); }
  exchange_halo();
  if (converged) { return; }
}
def main() {
  init_grid();
  for (int it = 0; it < iters; it++) {
    step();
  }
  async at (here.next()) { compute; }
  end;
}
";

fn main() {
    let p = parse(SRC).expect("X10-Lite parses");
    let counts = p.node_counts();
    let asyncs = p.async_stats();

    println!(
        "condensed form: {} nodes over {} methods",
        counts.total(),
        counts.method
    );
    println!(
        "  end={} async={} call={} finish={} if={} loop={} return={} skip={} switch={}",
        counts.end,
        counts.async_,
        counts.call,
        counts.finish,
        counts.if_,
        counts.loop_,
        counts.return_,
        counts.skip,
        counts.switch
    );
    println!(
        "asyncs: {} total, {} loop asyncs, {} place-switching (Figure 6 categories)",
        asyncs.total, asyncs.loop_asyncs, asyncs.place_switch
    );

    let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
    println!(
        "\nanalysis: constraints S/1/2 = {}/{}/{}, iterations = {}/{}/{}, {:.2} ms",
        a.stats.slabels_constraints,
        a.stats.level1_constraints,
        a.stats.level2_constraints,
        a.stats.slabels_passes,
        a.stats.level1_passes,
        a.stats.level2_passes,
        a.stats.millis
    );

    let rep = async_pairs_condensed(&a);
    println!(
        "async-body MHP pairs: total={} self={} same={} diff={}",
        rep.total(),
        rep.self_pairs,
        rep.same_method,
        rep.diff_method
    );
    // relax()'s foreach async is called inside `step` from a loop in main
    // — it overlaps itself across outer iterations? No: the finish inside
    // step joins it each call. The halo ateach, however, is unfinished.
    assert!(
        rep.self_pairs >= 2,
        "foreach + ateach self-overlaps: {rep:?}"
    );
}
