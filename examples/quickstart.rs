//! Quickstart: parse an FX10 program, run the context-sensitive
//! may-happen-in-parallel analysis, and query the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fx10::analysis::analyze;
use fx10::syntax::Program;

fn main() {
    // The paper's §2.2 example: two finish blocks calling a method that
    // spawns an async.
    let program = Program::parse(
        "def f() { A5: async { S5: skip; } }\n\
         def main() {\n\
           S1: finish { A3: async { S3: skip; } F1: f(); }\n\
           S2: finish { F2: f(); A4: async { S4: skip; } }\n\
         }",
    )
    .expect("program parses");

    // Three-phase type inference: Slabels → level-1 → level-2.
    let analysis = analyze(&program);

    println!(
        "analyzed {} labels in {:.2} ms ({} + {} + {} constraints)\n",
        program.label_count(),
        analysis.stats.millis,
        analysis.stats.slabels_constraints,
        analysis.stats.level1_constraints,
        analysis.stats.level2_constraints,
    );

    println!("may-happen-in-parallel pairs:");
    for (a, b) in analysis.pairs_named(&program) {
        println!("  ({a}, {b})");
    }

    // The headline: S5 (f's async body) overlaps both call sites' worlds,
    // but S3 and S4 can never run together — the finish in between forces
    // S3 to complete first. A context-insensitive analysis gets this
    // wrong (see examples/context_sensitivity.rs).
    let s3 = program.labels().lookup("S3").unwrap();
    let s4 = program.labels().lookup("S4").unwrap();
    let s5 = program.labels().lookup("S5").unwrap();
    assert!(analysis.may_happen_in_parallel(s3, s5));
    assert!(analysis.may_happen_in_parallel(s4, s5));
    assert!(!analysis.may_happen_in_parallel(s3, s4));
    println!("\nS3 ∥ S5: yes   S4 ∥ S5: yes   S3 ∥ S4: no (finish orders them)");
}
