//! Durable snapshots of an in-flight exploration.
//!
//! A checkpoint freezes everything the work-stealing explorer needs to
//! continue after a process death: the interner's statement/tree/array
//! tables, the sharded visited set, the pending frontier, and the
//! accumulated verdict counters. The bytes live in the
//! [`fx10_robust::snapshot`] container (versioned sections + trailing
//! checksum); this module owns the section payloads and the
//! capture/restore bridges to the [`Interner`].
//!
//! ## Consistency
//!
//! Checkpoints are taken at a *safepoint*: every worker is parked at
//! the top of its loop, holding no in-flight state key. At that point
//! `visited = expanded ∪ frontier` and the pending counter equals the
//! frontier size, so a resumed run explores exactly the states an
//! uninterrupted run would have — the kill-and-resume differential test
//! pins byte-identical digests, MHP pairs and verdicts.
//!
//! ## Identity
//!
//! A snapshot embeds a [`fingerprint`] of the program text, the initial
//! array state and the state-shaping flags. Resuming against anything
//! else is refused with a typed error — a snapshot can never be
//! silently replayed onto the wrong program. The state *budget* is
//! deliberately excluded: resuming a truncated run with a larger budget
//! is a feature, not a mismatch.

use crate::intern::{state_parts, ArrayId, Interner, StmtId, TNode, TreeId};
use crate::state::ArrayState;
use crate::ExploreConfig;
use fx10_robust::snapshot::{fnv1a64, Cursor, SectionBuf, Snapshot, SnapshotError, SnapshotWriter};
use fx10_robust::Fx10Error;
use fx10_syntax::{Expr, FuncId, Instr, InstrKind, Label, Program, Stmt};
use std::path::Path;

const SEC_META: u32 = 1;
const SEC_STMTS: u32 = 2;
const SEC_TREES: u32 = 3;
const SEC_ARRAYS: u32 = 4;
const SEC_VISITED: u32 = 5;
const SEC_FRONTIER: u32 = 6;

/// Identifies the (program, input, state-shaping) triple a snapshot
/// belongs to. Stable across runs and platforms (FNV-1a over the
/// pretty-printed program, the initial cells and the shaping flags).
pub fn fingerprint(p: &Program, input: &[i64], config: &ExploreConfig) -> u64 {
    let mut bytes = fx10_syntax::pretty::program(p).into_bytes();
    for c in ArrayState::with_input(p, input).cells() {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    bytes.push(config.canonical_dedup as u8);
    bytes.push(config.normalize_admin as u8);
    fnv1a64(&bytes)
}

/// A decoded (or about-to-be-written) explorer checkpoint.
///
/// Ids are *old* ids — dense indices into the `stmts`/`trees`/`arrays`
/// tables as they were numbered in the run that wrote the snapshot.
/// [`ExplorerSnapshot::restore`] re-interns everything and hands back
/// old→new id maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorerSnapshot {
    /// See [`fingerprint`].
    pub fingerprint: u64,
    /// Terminal (`√`) states counted so far.
    pub terminals: u64,
    /// Theorem 1 verdict so far.
    pub deadlock_free: bool,
    /// Work units charged to the meter so far.
    pub ticks: u64,
    /// Interned statements in interning order: head instruction + old
    /// tail id (tail ids always precede their referrer).
    pub stmts: Vec<(Instr, Option<u32>)>,
    /// Interned tree nodes in interning order: `(tag, a, b)` with tag
    /// 0 = `√`, 1 = `⟨s⟩` (a = stmt), 2 = `▷`, 3 = `∥` (a, b = children,
    /// always smaller than the node's own id).
    pub trees: Vec<(u8, u32, u32)>,
    /// Interned array states in interning order.
    pub arrays: Vec<Vec<i64>>,
    /// Every state admitted so far (packed old `(array, tree)` keys).
    pub visited: Vec<u64>,
    /// Admitted but not yet expanded states — the work to resume with.
    /// Always a subset of `visited`.
    pub frontier: Vec<u64>,
}

fn put_stmt(buf: &mut SectionBuf, s: &Stmt) {
    buf.put_u32(s.instrs().len() as u32);
    for i in s.instrs() {
        put_instr(buf, i);
    }
}

fn put_instr(buf: &mut SectionBuf, i: &Instr) {
    buf.put_u32(i.label.0);
    match &i.kind {
        InstrKind::Skip => buf.put_u8(0),
        InstrKind::Assign { idx, expr } => {
            buf.put_u8(1);
            buf.put_usize(*idx);
            match expr {
                Expr::Const(c) => {
                    buf.put_u8(0);
                    buf.put_i64(*c);
                }
                Expr::Plus1(d) => {
                    buf.put_u8(1);
                    buf.put_usize(*d);
                }
            }
        }
        InstrKind::While { idx, body } => {
            buf.put_u8(2);
            buf.put_usize(*idx);
            put_stmt(buf, body);
        }
        InstrKind::Async { body } => {
            buf.put_u8(3);
            put_stmt(buf, body);
        }
        InstrKind::Finish { body } => {
            buf.put_u8(4);
            put_stmt(buf, body);
        }
        InstrKind::Call { callee } => {
            buf.put_u8(5);
            buf.put_u32(callee.0);
        }
    }
}

fn get_stmt(c: &mut Cursor<'_>, depth: usize) -> Result<Stmt, SnapshotError> {
    let n = c.get_u32()? as usize;
    // A section can't physically hold more instructions than bytes.
    if n == 0 || n > c.remaining() {
        return Err(SnapshotError::Malformed(format!(
            "statement with implausible instruction count {n}"
        )));
    }
    let mut instrs = Vec::with_capacity(n);
    for _ in 0..n {
        instrs.push(get_instr(c, depth)?);
    }
    Stmt::new(instrs).map_err(|_| SnapshotError::Malformed("empty statement".into()))
}

fn get_instr(c: &mut Cursor<'_>, depth: usize) -> Result<Instr, SnapshotError> {
    if depth > 64 {
        return Err(SnapshotError::Malformed(
            "statement nesting deeper than any parser output".into(),
        ));
    }
    let label = Label(c.get_u32()?);
    let kind = match c.get_u8()? {
        0 => InstrKind::Skip,
        1 => {
            let idx = c.get_usize()?;
            let expr = match c.get_u8()? {
                0 => Expr::Const(c.get_i64()?),
                1 => Expr::Plus1(c.get_usize()?),
                t => return Err(SnapshotError::Malformed(format!("unknown expr tag {t}"))),
            };
            InstrKind::Assign { idx, expr }
        }
        2 => InstrKind::While {
            idx: c.get_usize()?,
            body: get_stmt(c, depth + 1)?,
        },
        3 => InstrKind::Async {
            body: get_stmt(c, depth + 1)?,
        },
        4 => InstrKind::Finish {
            body: get_stmt(c, depth + 1)?,
        },
        5 => InstrKind::Call {
            callee: FuncId(c.get_u32()?),
        },
        t => return Err(SnapshotError::Malformed(format!("unknown instr tag {t}"))),
    };
    Ok(Instr { label, kind })
}

impl ExplorerSnapshot {
    /// Serializes into the versioned, checksummed container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();

        let mut meta = SectionBuf::new();
        meta.put_u64(self.fingerprint);
        meta.put_u8(self.deadlock_free as u8);
        meta.put_u64(self.terminals);
        meta.put_u64(self.ticks);
        w.add_section(SEC_META, meta);

        let mut stmts = SectionBuf::new();
        stmts.put_u32(self.stmts.len() as u32);
        for (head, tail) in &self.stmts {
            put_instr(&mut stmts, head);
            match tail {
                None => stmts.put_u8(0),
                Some(t) => {
                    stmts.put_u8(1);
                    stmts.put_u32(*t);
                }
            }
        }
        w.add_section(SEC_STMTS, stmts);

        let mut trees = SectionBuf::new();
        trees.put_u32(self.trees.len() as u32);
        for &(tag, a, b) in &self.trees {
            trees.put_u8(tag);
            trees.put_u32(a);
            trees.put_u32(b);
        }
        w.add_section(SEC_TREES, trees);

        let mut arrays = SectionBuf::new();
        arrays.put_u32(self.arrays.len() as u32);
        for cells in &self.arrays {
            arrays.put_u32(cells.len() as u32);
            for &c in cells {
                arrays.put_i64(c);
            }
        }
        w.add_section(SEC_ARRAYS, arrays);

        let mut visited = SectionBuf::new();
        visited.put_u64(self.visited.len() as u64);
        for &k in &self.visited {
            visited.put_u64(k);
        }
        w.add_section(SEC_VISITED, visited);

        let mut frontier = SectionBuf::new();
        frontier.put_u64(self.frontier.len() as u64);
        for &k in &self.frontier {
            frontier.put_u64(k);
        }
        w.add_section(SEC_FRONTIER, frontier);

        w.finish()
    }

    /// Parses and *fully validates* a snapshot: container framing first
    /// (magic, version, checksum), then every cross-reference — tail ids
    /// precede their statement, tree children precede their node, state
    /// keys point into the tables, the frontier is a subset of the
    /// visited set. A malformed file is a typed error, never a panic or
    /// a silently wrong resume.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExplorerSnapshot, SnapshotError> {
        let snap = Snapshot::parse(bytes)?;

        let mut c = snap.section(SEC_META)?;
        let fingerprint = c.get_u64()?;
        let deadlock_free = match c.get_u8()? {
            0 => false,
            1 => true,
            b => return Err(SnapshotError::Malformed(format!("bad flag byte {b}"))),
        };
        let terminals = c.get_u64()?;
        let ticks = c.get_u64()?;
        c.done()?;

        let mut c = snap.section(SEC_STMTS)?;
        let n = c.get_u32()? as usize;
        let mut stmts = Vec::with_capacity(n.min(1 << 20));
        for i in 0..n {
            let head = get_instr(&mut c, 0)?;
            let tail = match c.get_u8()? {
                0 => None,
                1 => {
                    let t = c.get_u32()?;
                    if t as usize >= i {
                        return Err(SnapshotError::Malformed(format!(
                            "statement {i} references tail {t} that does not precede it"
                        )));
                    }
                    Some(t)
                }
                b => return Err(SnapshotError::Malformed(format!("bad tail marker {b}"))),
            };
            stmts.push((head, tail));
        }
        c.done()?;

        let mut c = snap.section(SEC_TREES)?;
        let n = c.get_u32()? as usize;
        let mut trees = Vec::with_capacity(n.min(1 << 20));
        for i in 0..n {
            let (tag, a, b) = (c.get_u8()?, c.get_u32()?, c.get_u32()?);
            match tag {
                0 => {}
                1 => {
                    if a as usize >= stmts.len() {
                        return Err(SnapshotError::Malformed(format!(
                            "tree {i} references unknown statement {a}"
                        )));
                    }
                }
                2 | 3 => {
                    if a as usize >= i || b as usize >= i {
                        return Err(SnapshotError::Malformed(format!(
                            "tree {i} references children ({a},{b}) that do not precede it"
                        )));
                    }
                }
                t => return Err(SnapshotError::Malformed(format!("unknown tree tag {t}"))),
            }
            trees.push((tag, a, b));
        }
        c.done()?;

        let mut c = snap.section(SEC_ARRAYS)?;
        let n = c.get_u32()? as usize;
        let mut arrays = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let len = c.get_u32()? as usize;
            // checked_mul: a corrupted length field must become a typed
            // error, not an overflow or an OOM-sized allocation.
            if len.checked_mul(8).is_none_or(|b| b > c.remaining()) {
                return Err(SnapshotError::Truncated);
            }
            let mut cells = Vec::with_capacity(len);
            for _ in 0..len {
                cells.push(c.get_i64()?);
            }
            arrays.push(cells);
        }
        c.done()?;

        let read_keys = |c: &mut Cursor<'_>| -> Result<Vec<u64>, SnapshotError> {
            let n = c.get_usize()?;
            if n.checked_mul(8).is_none_or(|b| b > c.remaining()) {
                return Err(SnapshotError::Truncated);
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                let k = c.get_u64()?;
                let (a, t) = state_parts(k);
                if a.0 as usize >= arrays.len() || t.0 as usize >= trees.len() {
                    return Err(SnapshotError::Malformed(format!(
                        "state key ({},{}) points outside the tables",
                        a.0, t.0
                    )));
                }
                keys.push(k);
            }
            Ok(keys)
        };

        let mut c = snap.section(SEC_VISITED)?;
        let visited = read_keys(&mut c)?;
        c.done()?;

        let mut c = snap.section(SEC_FRONTIER)?;
        let frontier = read_keys(&mut c)?;
        c.done()?;

        let visited_set: std::collections::HashSet<u64> = visited.iter().copied().collect();
        if !frontier.iter().all(|k| visited_set.contains(k)) {
            return Err(SnapshotError::Malformed(
                "frontier contains a state missing from the visited set".into(),
            ));
        }

        Ok(ExplorerSnapshot {
            fingerprint,
            terminals,
            deadlock_free,
            ticks,
            stmts,
            trees,
            arrays,
            visited,
            frontier,
        })
    }

    /// Freezes the interner tables (everything interned so far) plus the
    /// given visited/frontier keys and verdict counters. Only call at a
    /// safepoint — the caller guarantees no worker is mid-expansion.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        interner: &Interner,
        fingerprint: u64,
        terminals: u64,
        deadlock_free: bool,
        ticks: u64,
        visited: Vec<u64>,
        frontier: Vec<u64>,
    ) -> ExplorerSnapshot {
        let (n_stmts, n_trees, n_arrays) = interner.counts();
        let stmts = (0..n_stmts as u32)
            .map(|i| {
                let id = StmtId(i);
                (
                    interner.stmt(id).head().clone(),
                    interner.stmt_tail(id).map(|t| t.0),
                )
            })
            .collect();
        let trees = (0..n_trees as u32)
            .map(|i| match interner.node(TreeId(i)) {
                TNode::Done => (0u8, 0u32, 0u32),
                TNode::Stm(s) => (1, s.0, 0),
                TNode::Seq(a, b) => (2, a.0, b.0),
                TNode::Par(a, b) => (3, a.0, b.0),
            })
            .collect();
        let arrays = (0..n_arrays as u32)
            .map(|i| interner.cells(ArrayId(i)).to_vec())
            .collect();
        ExplorerSnapshot {
            fingerprint,
            terminals,
            deadlock_free,
            ticks,
            stmts,
            trees,
            arrays,
            visited,
            frontier,
        }
    }

    /// Freezes only the states in `keys` with tables garbage-collected
    /// to their transitive closure — the *frontier batch* form used by
    /// the shard protocol. The batch's `visited` and `frontier` are both
    /// exactly `keys` (so the subset validation in
    /// [`from_bytes`](ExplorerSnapshot::from_bytes) holds), counters are
    /// neutral, and ids are densely renumbered preserving the
    /// tails-precede-referrers / children-precede-node invariants (the
    /// interner assigns ids bottom-up, so ascending old-id order keeps
    /// both).
    pub fn capture_batch(interner: &Interner, fingerprint: u64, keys: &[u64]) -> ExplorerSnapshot {
        use std::collections::{BTreeSet, HashMap};
        let mut tree_ids = BTreeSet::new();
        let mut stmt_ids = BTreeSet::new();
        let mut array_ids = BTreeSet::new();
        let mut stack = Vec::new();
        for &k in keys {
            let (a, t) = state_parts(k);
            array_ids.insert(a.0);
            if tree_ids.insert(t.0) {
                stack.push(t);
            }
            while let Some(t) = stack.pop() {
                match interner.node(t) {
                    TNode::Done => {}
                    TNode::Stm(s) => {
                        let mut cur = Some(s);
                        while let Some(s) = cur {
                            if !stmt_ids.insert(s.0) {
                                break;
                            }
                            cur = interner.stmt_tail(s);
                        }
                    }
                    TNode::Seq(a, b) | TNode::Par(a, b) => {
                        if tree_ids.insert(a.0) {
                            stack.push(a);
                        }
                        if tree_ids.insert(b.0) {
                            stack.push(b);
                        }
                    }
                }
            }
        }
        // `√` is id 0 in every interner; batches keep that invariant so
        // restored terminal states stay terminal.
        tree_ids.insert(0);

        let smap: HashMap<u32, u32> = stmt_ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let tmap: HashMap<u32, u32> = tree_ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let amap: HashMap<u32, u32> = array_ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();

        let stmts = stmt_ids
            .iter()
            .map(|&old| {
                let id = StmtId(old);
                (
                    interner.stmt(id).head().clone(),
                    interner.stmt_tail(id).map(|t| smap[&t.0]),
                )
            })
            .collect();
        let trees = tree_ids
            .iter()
            .map(|&old| match interner.node(TreeId(old)) {
                TNode::Done => (0u8, 0u32, 0u32),
                TNode::Stm(s) => (1, smap[&s.0], 0),
                TNode::Seq(a, b) => (2, tmap[&a.0], tmap[&b.0]),
                TNode::Par(a, b) => (3, tmap[&a.0], tmap[&b.0]),
            })
            .collect();
        let arrays = array_ids
            .iter()
            .map(|&old| interner.cells(ArrayId(old)).to_vec())
            .collect();
        let remapped: Vec<u64> = keys
            .iter()
            .map(|&k| {
                let (a, t) = state_parts(k);
                crate::intern::state_key(ArrayId(amap[&a.0]), TreeId(tmap[&t.0]))
            })
            .collect();
        ExplorerSnapshot {
            fingerprint,
            terminals: 0,
            deadlock_free: true,
            ticks: 0,
            stmts,
            trees,
            arrays,
            visited: remapped.clone(),
            frontier: remapped,
        }
    }

    /// Re-interns every table into `interner` and returns the old→new id
    /// maps `(stmts, trees, arrays)`. Entries are decoded in order, so
    /// every reference is already mapped when its referrer arrives (the
    /// validation in [`from_bytes`](ExplorerSnapshot::from_bytes)
    /// guarantees it).
    pub fn restore(&self, interner: &Interner) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut smap = Vec::with_capacity(self.stmts.len());
        for (head, tail) in &self.stmts {
            let tail = tail.map(|t| StmtId(smap[t as usize]));
            smap.push(interner.restore_stmt(head.clone(), tail).0);
        }
        let mut tmap: Vec<u32> = Vec::with_capacity(self.trees.len());
        for &(tag, a, b) in &self.trees {
            let id = match tag {
                0 => crate::intern::DONE,
                1 => interner.stm(StmtId(smap[a as usize])),
                2 => interner.seq(TreeId(tmap[a as usize]), TreeId(tmap[b as usize])),
                // Re-canonicalization is a no-op: the children were
                // already in structural order when the node was written.
                3 => interner.par(TreeId(tmap[a as usize]), TreeId(tmap[b as usize])),
                _ => unreachable!("validated in from_bytes"),
            };
            tmap.push(id.0);
        }
        let amap = self
            .arrays
            .iter()
            .map(|cells| interner.intern_array(cells.clone()).0)
            .collect();
        (smap, tmap, amap)
    }

    /// Reads and validates a snapshot file.
    pub fn load(path: &Path) -> Result<ExplorerSnapshot, Fx10Error> {
        let bytes = std::fs::read(path).map_err(|e| Fx10Error::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(ExplorerSnapshot::from_bytes(&bytes)?)
    }

    /// Writes the snapshot atomically: the bytes land in `<path>.tmp`
    /// first and are renamed over `path`, so a kill mid-write never
    /// leaves a torn file at the advertised location.
    pub fn save(&self, path: &Path) -> Result<(), Fx10Error> {
        let io_err = |e: std::io::Error| Fx10Error::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::state_key;
    use fx10_syntax::Program;

    fn fixture_with_interner() -> (Interner, ExplorerSnapshot) {
        let p = Program::parse(
            "def f() { X; } def main() { finish { async { B; } } a[0] = 1; \
             while (a[0] != 0) { a[0] = 0; } f(); K; }",
        )
        .unwrap();
        let it = Interner::new(true);
        let s = it.intern_stmt(&p.body(p.main()).clone());
        let t = it.par(it.stm(s), it.seq(it.stm(s), crate::intern::DONE));
        let a = it.intern_array(vec![0]);
        let a1 = it.intern_array(vec![1]);
        let keys = vec![
            state_key(a, t),
            state_key(a1, t),
            state_key(a, crate::intern::DONE),
        ];
        let snap = ExplorerSnapshot::capture(
            &it,
            fingerprint(&p, &[], &ExploreConfig::default()),
            2,
            true,
            7,
            keys.clone(),
            keys[..1].to_vec(),
        );
        (it, snap)
    }

    fn fixture() -> ExplorerSnapshot {
        fixture_with_interner().1
    }

    #[test]
    fn roundtrips_through_bytes() {
        let snap = fixture();
        let back = ExplorerSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn restore_rebuilds_identical_renderings() {
        let (original, snap) = fixture_with_interner();
        let snap = ExplorerSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        let fresh = Interner::new(true);
        let (_, tmap, amap) = snap.restore(&fresh);
        for &k in &snap.visited {
            let (oa, ot) = state_parts(k);
            let (na, nt) = (ArrayId(amap[oa.0 as usize]), TreeId(tmap[ot.0 as usize]));
            assert_eq!(
                fresh.render_state(na, nt),
                original.render_state(oa, ot),
                "restored state must render byte-identically"
            );
        }
    }

    #[test]
    fn dangling_references_are_rejected() {
        // Tail pointing forward.
        let mut bad = fixture();
        if let Some(first) = bad.stmts.first_mut() {
            first.1 = Some(9999);
        }
        assert!(matches!(
            ExplorerSnapshot::from_bytes(&bad.to_bytes()),
            Err(SnapshotError::Malformed(_))
        ));
        // Tree child pointing forward.
        let mut bad = fixture();
        let last = bad.trees.len() as u32;
        bad.trees.push((2, last, last));
        assert!(matches!(
            ExplorerSnapshot::from_bytes(&bad.to_bytes()),
            Err(SnapshotError::Malformed(_))
        ));
        // Visited key outside the tables.
        let mut bad = fixture();
        bad.visited.push(state_key(ArrayId(10_000), TreeId(0)));
        assert!(matches!(
            ExplorerSnapshot::from_bytes(&bad.to_bytes()),
            Err(SnapshotError::Malformed(_))
        ));
        // Frontier not a subset of visited.
        let mut bad = fixture();
        bad.frontier = vec![state_key(ArrayId(0), TreeId(1))];
        bad.visited.retain(|&k| k != bad.frontier[0]);
        assert!(matches!(
            ExplorerSnapshot::from_bytes(&bad.to_bytes()),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn fingerprint_separates_programs_inputs_and_flags() {
        let p1 = Program::parse("def main() { S1; }").unwrap();
        let p2 = Program::parse("def main() { S2; }").unwrap();
        let cfg = ExploreConfig::default();
        assert_ne!(fingerprint(&p1, &[], &cfg), fingerprint(&p2, &[], &cfg));
        let pa = Program::parse("def main() { a[0] = 1; S1; }").unwrap();
        assert_ne!(fingerprint(&pa, &[], &cfg), fingerprint(&pa, &[5], &cfg));
        let literal = ExploreConfig {
            canonical_dedup: false,
            ..cfg
        };
        assert_ne!(fingerprint(&p1, &[], &cfg), fingerprint(&p1, &[], &literal));
        // max_states is *not* part of the identity: resuming with a
        // bigger budget must be allowed.
        let bigger = ExploreConfig {
            max_states: 999,
            ..cfg
        };
        assert_eq!(fingerprint(&p1, &[], &cfg), fingerprint(&p1, &[], &bigger));
    }

    #[test]
    fn save_and_load_are_atomic_and_typed() {
        let snap = fixture();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fx10-snap-unit-{}.fxsnap", std::process::id()));
        snap.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        let back = ExplorerSnapshot::load(&path).unwrap();
        assert_eq!(snap, back);
        let _ = std::fs::remove_file(&path);
        // A missing file is Io, not a panic.
        assert!(matches!(
            ExplorerSnapshot::load(&path),
            Err(Fx10Error::Io { .. })
        ));
    }
}
