//! The transition rules of the small-step semantics.
//!
//! [`successors`] enumerates every state reachable in exactly one step from
//! `(p, A, T)` — rules (1)–(6) for `▷`/`∥` trees and rules (7)–(14)
//! (Figure 2) for `⟨s⟩` leaves. The enumeration order is deterministic
//! (rule number, then left-to-right), which schedulers rely on.
//!
//! **Lone instructions.** The paper's Figure 2 writes the statement rules
//! with an explicit continuation `k`; the grammar also allows a lone
//! instruction (`s ::= i`). We extend the rules to lone instructions in
//! the evident way — the produced continuation `⟨k⟩` becomes `√`:
//!
//! ```text
//! ⟨a[d]=^l e;⟩        → √                 (with the store updated)
//! ⟨while^l (…) s⟩     → √                 (guard false)
//! ⟨while^l (…) s⟩     → ⟨s . while^l (…) s⟩ (guard true)
//! ⟨async^l s⟩         → ⟨s⟩ ∥ √
//! ⟨finish^l s⟩        → ⟨s⟩ ▷ √
//! ⟨f_i()^l⟩           → ⟨s_i⟩
//! ```
//!
//! These agree with rule (7)'s treatment of a lone `skip` and with the
//! typing of lone instructions used in the paper's Figure 5 example.

use crate::state::ArrayState;
use crate::tree::Tree;
use fx10_syntax::{InstrKind, Program, Stmt};

/// One possible transition out of a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Successor {
    /// The array state after the step.
    pub array: ArrayState,
    /// The tree after the step.
    pub tree: Tree,
}

/// Enumerates all `(A', T')` with `(p, A, T) → (p, A', T')`.
///
/// Returns the empty vector only for `T = √` — Theorem 1 (deadlock
/// freedom). The exhaustive explorer asserts exactly this on every state
/// it visits.
pub fn successors(p: &Program, a: &ArrayState, t: &Tree) -> Vec<Successor> {
    let mut out = Vec::new();
    push_successors(p, a, t, &mut out);
    out
}

fn push_successors(p: &Program, a: &ArrayState, t: &Tree, out: &mut Vec<Successor>) {
    match t {
        Tree::Done => {}
        Tree::Seq(t1, t2) => {
            if t1.is_done() {
                // Rule (1): √ ▷ T₂ → T₂.
                out.push(Successor {
                    array: a.clone(),
                    tree: (**t2).clone(),
                });
            } else {
                // Rule (2): step inside T₁.
                let mut inner = Vec::new();
                push_successors(p, a, t1, &mut inner);
                for s in inner {
                    out.push(Successor {
                        array: s.array,
                        tree: Tree::seq(s.tree, (**t2).clone()),
                    });
                }
            }
        }
        Tree::Par(t1, t2) => {
            // Rule (3): √ ∥ T₂ → T₂.
            if t1.is_done() {
                out.push(Successor {
                    array: a.clone(),
                    tree: (**t2).clone(),
                });
            }
            // Rule (4): T₁ ∥ √ → T₁.
            if t2.is_done() {
                out.push(Successor {
                    array: a.clone(),
                    tree: (**t1).clone(),
                });
            }
            // Rule (5): step inside T₁.
            let mut inner = Vec::new();
            push_successors(p, a, t1, &mut inner);
            for s in inner {
                out.push(Successor {
                    array: s.array,
                    tree: Tree::par(s.tree, (**t2).clone()),
                });
            }
            // Rule (6): step inside T₂.
            inner = Vec::new();
            push_successors(p, a, t2, &mut inner);
            for s in inner {
                out.push(Successor {
                    array: s.array,
                    tree: Tree::par((**t1).clone(), s.tree),
                });
            }
        }
        Tree::Stm(s) => out.push(step_stmt(p, a, s)),
    }
}

/// Rules (7)–(14): the unique step of a running statement `⟨s⟩`.
///
/// Statements are deterministic — all nondeterminism in FX10 comes from
/// the `∥` interleaving — so this returns exactly one successor.
pub fn step_stmt(p: &Program, a: &ArrayState, s: &Stmt) -> Successor {
    let head = s.head();
    let tail = s.tail();
    // `⟨k⟩`, or `√` when the head is the whole statement.
    let cont = || match &tail {
        Some(k) => Tree::stm(k.clone()),
        None => Tree::Done,
    };
    match &head.kind {
        // Rules (7)/(8).
        InstrKind::Skip => Successor {
            array: a.clone(),
            tree: cont(),
        },
        // Rule (9).
        InstrKind::Assign { idx, expr } => {
            let mut a2 = a.clone();
            a2.set(*idx, a.eval(expr));
            Successor {
                array: a2,
                tree: cont(),
            }
        }
        // Rules (10)/(11).
        InstrKind::While { idx, body } => {
            if a.get(*idx) == 0 {
                Successor {
                    array: a.clone(),
                    tree: cont(),
                }
            } else {
                // ⟨s . (while …) k⟩: unroll one iteration ahead of the
                // whole while-statement (including its continuation).
                Successor {
                    array: a.clone(),
                    tree: Tree::stm(body.clone().seq(s.clone())),
                }
            }
        }
        // Rule (12).
        InstrKind::Async { body } => Successor {
            array: a.clone(),
            tree: Tree::par(Tree::stm(body.clone()), cont()),
        },
        // Rule (13).
        InstrKind::Finish { body } => Successor {
            array: a.clone(),
            tree: Tree::seq(Tree::stm(body.clone()), cont()),
        },
        // Rule (14): ⟨f_i()^l k⟩ → ⟨s_i . k⟩.
        InstrKind::Call { callee } => {
            let body = p.body(*callee).clone();
            let tree = match tail {
                Some(k) => Tree::stm(body.seq(k)),
                None => Tree::stm(body),
            };
            Successor {
                array: a.clone(),
                tree,
            }
        }
    }
}

/// The initial tree `⟨s₀⟩` where `s₀` is the body of the main method.
pub fn initial_tree(p: &Program) -> Tree {
    Tree::stm(p.body(p.main()).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::Program;

    fn zeros(p: &Program) -> ArrayState {
        ArrayState::zeros(p)
    }

    #[test]
    fn lone_skip_steps_to_done() {
        let p = Program::parse("def main() { skip; }").unwrap();
        let succ = successors(&p, &zeros(&p), &initial_tree(&p));
        assert_eq!(succ.len(), 1);
        assert!(succ[0].tree.is_done());
    }

    #[test]
    fn assign_updates_store() {
        let p = Program::parse("def main() { a[1] = 5; a[0] = a[1] + 1; }").unwrap();
        let s0 = successors(&p, &zeros(&p), &initial_tree(&p));
        assert_eq!(s0.len(), 1);
        assert_eq!(s0[0].array.get(1), 5);
        let s1 = successors(&p, &s0[0].array, &s0[0].tree);
        assert_eq!(s1[0].array.get(0), 6);
        assert!(s1[0].tree.is_done());
    }

    #[test]
    fn while_false_skips_body() {
        let p = Program::parse("def main() { while (a[0] != 0) { S; } S2; }").unwrap();
        let s = successors(&p, &zeros(&p), &initial_tree(&p));
        assert_eq!(s.len(), 1);
        // Steps straight to the continuation ⟨S2⟩.
        match &s[0].tree {
            Tree::Stm(st) => assert_eq!(st.len(), 1),
            t => panic!("expected ⟨S2⟩, got {t}"),
        }
    }

    #[test]
    fn while_true_unrolls_body_then_whole_while() {
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { a[0] = 0; } S2; }").unwrap();
        let t0 = initial_tree(&p);
        let s = successors(&p, &zeros(&p), &t0); // a[0] = 1
        let s = successors(&p, &s[0].array, &s[0].tree); // guard true
        match &s[0].tree {
            // body (1 instr) . while-stmt (while + S2 = 2 instrs) = 3.
            Tree::Stm(st) => assert_eq!(st.len(), 3),
            t => panic!("expected unrolled statement, got {t}"),
        }
    }

    #[test]
    fn async_forks_par_and_finish_forks_seq() {
        let p = Program::parse("def main() { async { B; } K; }").unwrap();
        let s = successors(&p, &zeros(&p), &initial_tree(&p));
        assert!(matches!(s[0].tree, Tree::Par(_, _)));

        let p = Program::parse("def main() { finish { B; } K; }").unwrap();
        let s = successors(&p, &zeros(&p), &initial_tree(&p));
        assert!(matches!(s[0].tree, Tree::Seq(_, _)));
    }

    #[test]
    fn lone_async_forks_with_done_right() {
        let p = Program::parse("def main() { async { B; } }").unwrap();
        let s = successors(&p, &zeros(&p), &initial_tree(&p));
        match &s[0].tree {
            Tree::Par(l, r) => {
                assert!(matches!(**l, Tree::Stm(_)));
                assert!(r.is_done());
            }
            t => panic!("expected ∥, got {t}"),
        }
    }

    #[test]
    fn call_inlines_body_before_continuation() {
        let p = Program::parse("def f() { B1; B2; } def main() { f(); K; }").unwrap();
        let s = successors(&p, &zeros(&p), &initial_tree(&p));
        match &s[0].tree {
            Tree::Stm(st) => assert_eq!(st.len(), 3), // B1 B2 K
            t => panic!("expected ⟨s_f . k⟩, got {t}"),
        }
    }

    #[test]
    fn seq_blocks_right_side_until_left_done() {
        let p = Program::parse("def main() { finish { B; } K; }").unwrap();
        let a = zeros(&p);
        let s = successors(&p, &a, &initial_tree(&p));
        // ⟨B⟩ ▷ ⟨K⟩: only the left side may step.
        let s2 = successors(&p, &a, &s[0].tree);
        assert_eq!(s2.len(), 1);
        match &s2[0].tree {
            Tree::Seq(l, _) => assert!(l.is_done()),
            t => panic!("expected ▷, got {t}"),
        }
        // √ ▷ ⟨K⟩ → ⟨K⟩ by rule (1).
        let s3 = successors(&p, &a, &s2[0].tree);
        assert_eq!(s3.len(), 1);
        assert!(matches!(s3[0].tree, Tree::Stm(_)));
    }

    #[test]
    fn par_interleaves_both_sides() {
        let p = Program::parse("def main() { async { B; } K; }").unwrap();
        let a = zeros(&p);
        let s = successors(&p, &a, &initial_tree(&p));
        // ⟨B⟩ ∥ ⟨K⟩ can step either side: two successors.
        let s2 = successors(&p, &a, &s[0].tree);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn done_has_no_successors() {
        let p = Program::parse("def main() { skip; }").unwrap();
        assert!(successors(&p, &zeros(&p), &Tree::Done).is_empty());
    }

    #[test]
    fn par_of_two_dones_offers_both_elimination_rules() {
        let p = Program::parse("def main() { skip; }").unwrap();
        let t = Tree::par(Tree::Done, Tree::Done);
        let s = successors(&p, &zeros(&p), &t);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|x| x.tree.is_done()));
    }
}
