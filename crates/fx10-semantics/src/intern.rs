//! Hash-consing interners for execution trees, statements and array
//! states.
//!
//! The exhaustive explorer's hot loop is dominated by deep-cloning and
//! re-hashing execution trees `T ::= √ | ⟨s⟩ | T ▷ T | T ∥ T`. This
//! module replaces those clones with *hash-consed ids*: every distinct
//! statement, tree node and array value is stored exactly once and named
//! by a dense 32-bit id ([`StmtId`], [`TreeId`], [`ArrayId`]), so
//!
//! - equality and hashing of states are O(1) on a packed `u64` key,
//! - a successor tree shares every unchanged subtree with its parent
//!   (structural sharing — building `T₁' ▷ T₂` touches one node), and
//! - per-tree results (`FTlabels`, `parallel`) can be memoized by id.
//!
//! ## Canonical `∥` forms
//!
//! When constructed in canonical mode, `∥` nodes keep their children in
//! *structural order* (the derived [`Ord`] on [`Tree`]), which quotients
//! the state space by the `∥`-symmetry `T₁ ∥ T₂ ≈ T₂ ∥ T₁`. Swapping
//! `∥` children is a bisimulation — successors of the swapped tree are
//! exactly the swaps of the successors, with identical array states —
//! and `parallel`/`FTlabels` are already symmetric, so exploring
//! canonical representatives preserves the dynamic MHP set, the
//! deadlock-freedom verdict and the terminal states while (often
//! dramatically) shrinking the visited set. Crucially the order is
//! structural, *never* id-based: interning order differs between runs
//! and schedules, but canonical forms do not.
//!
//! ## Concurrency
//!
//! All interners are safe to share across worker threads: id→value
//! lookups are lock-free reads of append-only paged storage, and
//! value→id interning takes one sharded lock. Ids are published to other
//! workers only through locks or join points, which order the paged
//! writes before any cross-thread read.

use crate::parallel::{pair, LabelPair};
use crate::tree::Tree;
use fx10_syntax::{Instr, InstrKind, Label, Program, Stmt};
use std::cmp::Ordering as CmpOrdering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// An interned execution tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(pub u32);

/// An interned array state (the full cell vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// The interned `√` tree (id 0 is reserved for it at construction).
pub const DONE: TreeId = TreeId(0);

/// One state of the interned transition system, packed into a `u64` —
/// O(1) equality and hashing, 8 bytes in the visited set.
#[inline]
pub fn state_key(a: ArrayId, t: TreeId) -> u64 {
    ((a.0 as u64) << 32) | t.0 as u64
}

/// Inverse of [`state_key`].
#[inline]
pub fn state_parts(key: u64) -> (ArrayId, TreeId) {
    (ArrayId((key >> 32) as u32), TreeId(key as u32))
}

const PAGE_BITS: usize = 13;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGE_MASK: u32 = (PAGE_SIZE - 1) as u32;
const MAX_PAGES: usize = 1 << 15;
/// Hard capacity per interner (2^28 ids ≈ 268M); state budgets keep real
/// explorations far below this.
const MAX_IDS: u32 = (MAX_PAGES << PAGE_BITS) as u32;
const SHARDS: usize = 32;

/// Append-only paged storage of packed `u64` values with lock-free
/// reads. Slots are written exactly once, before their index escapes the
/// interning lock.
struct U64Pages {
    pages: Vec<OnceLock<Box<[AtomicU64]>>>,
}

impl U64Pages {
    fn new() -> Self {
        U64Pages {
            pages: (0..MAX_PAGES).map(|_| OnceLock::new()).collect(),
        }
    }

    fn page(&self, idx: u32) -> &[AtomicU64] {
        self.pages[(idx >> PAGE_BITS) as usize].get_or_init(|| {
            (0..PAGE_SIZE)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
    }

    fn set(&self, idx: u32, v: u64) {
        self.page(idx)[(idx & PAGE_MASK) as usize].store(v, Ordering::Release);
    }

    fn get(&self, idx: u32) -> u64 {
        self.page(idx)[(idx & PAGE_MASK) as usize].load(Ordering::Acquire)
    }
}

/// Append-only paged storage of owned values (statements, cell vectors)
/// with lock-free reads.
struct SlotPages<T> {
    pages: Vec<OnceLock<Box<[OnceLock<T>]>>>,
}

impl<T> SlotPages<T> {
    fn new() -> Self {
        SlotPages {
            pages: (0..MAX_PAGES).map(|_| OnceLock::new()).collect(),
        }
    }

    fn page(&self, idx: u32) -> &[OnceLock<T>] {
        self.pages[(idx >> PAGE_BITS) as usize].get_or_init(|| {
            (0..PAGE_SIZE)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
    }

    fn set(&self, idx: u32, v: T) {
        // Slots are written once, under the owning shard lock, before the
        // id escapes; a second set can only be the same value racing and
        // is ignored.
        let _ = self.page(idx)[(idx & PAGE_MASK) as usize].set(v);
    }

    fn get(&self, idx: u32) -> &T {
        self.page(idx)[(idx & PAGE_MASK) as usize]
            .get()
            .expect("interned id read before its slot was published")
    }
}

fn shard_of<K: Hash>(k: &K) -> usize {
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A decoded interned tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TNode {
    /// `√`.
    Done,
    /// `⟨s⟩`.
    Stm(StmtId),
    /// `T₁ ▷ T₂`.
    Seq(TreeId, TreeId),
    /// `T₁ ∥ T₂`.
    Par(TreeId, TreeId),
}

const TAG_DONE: u64 = 0;
const TAG_STM: u64 = 1;
const TAG_SEQ: u64 = 2;
const TAG_PAR: u64 = 3;

#[inline]
fn pack(tag: u64, a: u32, b: u32) -> u64 {
    tag | ((a as u64) << 2) | ((b as u64) << 33)
}

#[inline]
fn unpack(v: u64) -> (u64, u32, u32) {
    (v & 3, ((v >> 2) & 0x7fff_ffff) as u32, (v >> 33) as u32)
}

/// The shared hash-consing interner: statements, trees and array states.
pub struct Interner {
    canonical: bool,

    // Statements.
    stmt_map: Vec<Mutex<HashMap<Stmt, u32>>>,
    stmt_vals: SlotPages<Stmt>,
    /// Tail links: 0 = unset, 1 = no tail, otherwise tail id + 2.
    stmt_tails: U64Pages,
    stmt_next: AtomicU32,

    // Trees (packed nodes).
    tree_map: Vec<Mutex<HashMap<u64, u32>>>,
    tree_nodes: U64Pages,
    tree_next: AtomicU32,

    // Array states.
    array_map: Vec<Mutex<HashMap<Vec<i64>, u32>>>,
    array_vals: SlotPages<Vec<i64>>,
    array_next: AtomicU32,

    /// `⟨s⟩ → ⟨s'⟩` derivations that concatenate statements (while-unroll
    /// and call-inline), memoized by the source statement id.
    unroll_cache: Vec<Mutex<HashMap<u32, u32>>>,
    /// `async`/`finish` body statements, memoized by the instruction's
    /// (program-unique) label.
    spawn_cache: Vec<Mutex<HashMap<Label, u32>>>,
}

impl Interner {
    /// A fresh interner. `canonical` selects canonical-`∥` construction
    /// (the default for the explorer); pass `false` to intern literal
    /// trees, e.g. to mirror the un-deduplicated reference semantics.
    pub fn new(canonical: bool) -> Self {
        let it = Interner {
            canonical,
            stmt_map: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stmt_vals: SlotPages::new(),
            stmt_tails: U64Pages::new(),
            stmt_next: AtomicU32::new(0),
            tree_map: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            tree_nodes: U64Pages::new(),
            tree_next: AtomicU32::new(0),
            array_map: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            array_vals: SlotPages::new(),
            array_next: AtomicU32::new(0),
            unroll_cache: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            spawn_cache: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        };
        // Reserve id 0 for √ so `DONE` is a constant.
        let done = it.intern_node(pack(TAG_DONE, 0, 0));
        debug_assert_eq!(done, DONE);
        it
    }

    /// Is this interner building canonical `∥` forms?
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    // -- statements ---------------------------------------------------------

    /// Interns a statement (and, transitively, all its suffixes, so
    /// [`Self::stmt_tail`] is an O(1) lookup).
    pub fn intern_stmt(&self, s: &Stmt) -> StmtId {
        if let Some(&id) = lock(&self.stmt_map[shard_of(s)]).get(s) {
            return StmtId(id);
        }
        let instrs = s.instrs();
        let mut tail: Option<u32> = None;
        for k in (0..instrs.len()).rev() {
            let suffix = s.suffix(k).expect("k < len");
            tail = Some(self.intern_stmt_with_tail(suffix, tail));
        }
        StmtId(tail.expect("statements are non-empty"))
    }

    fn intern_stmt_with_tail(&self, s: Stmt, tail: Option<u32>) -> u32 {
        let mut map = lock(&self.stmt_map[shard_of(&s)]);
        if let Some(&id) = map.get(&s) {
            return id;
        }
        let id = self.stmt_next.fetch_add(1, Ordering::Relaxed);
        assert!(id < MAX_IDS, "statement interner capacity exceeded");
        self.stmt_tails.set(id, tail.map_or(1, |t| t as u64 + 2));
        self.stmt_vals.set(id, s.clone());
        map.insert(s, id);
        id
    }

    /// The interned statement's value.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        self.stmt_vals.get(id.0)
    }

    /// The statement after the head (`None` when the head is the whole
    /// statement). O(1): suffixes are interned eagerly.
    pub fn stmt_tail(&self, id: StmtId) -> Option<StmtId> {
        match self.stmt_tails.get(id.0) {
            0 => unreachable!("tail read before publication"),
            1 => None,
            t => Some(StmtId((t - 2) as u32)),
        }
    }

    /// Re-interns a statement decoded from a snapshot as `head` followed
    /// by the already-restored `tail` statement, preserving the O(1)
    /// tail link. Snapshots store statements in interning order, so the
    /// tail's id is always available before its referrer is restored.
    pub fn restore_stmt(&self, head: Instr, tail: Option<StmtId>) -> StmtId {
        let mut instrs = vec![head];
        if let Some(t) = tail {
            instrs.extend(self.stmt(t).instrs().iter().cloned());
        }
        let s = Stmt::new(instrs).expect("non-empty by construction");
        StmtId(self.intern_stmt_with_tail(s, tail.map(|t| t.0)))
    }

    // -- trees --------------------------------------------------------------

    fn intern_node(&self, packed: u64) -> TreeId {
        let mut map = lock(&self.tree_map[shard_of(&packed)]);
        if let Some(&id) = map.get(&packed) {
            return TreeId(id);
        }
        let id = self.tree_next.fetch_add(1, Ordering::Relaxed);
        assert!(id < MAX_IDS, "tree interner capacity exceeded");
        self.tree_nodes.set(id, packed);
        map.insert(packed, id);
        TreeId(id)
    }

    /// `⟨s⟩`.
    pub fn stm(&self, s: StmtId) -> TreeId {
        self.intern_node(pack(TAG_STM, s.0, 0))
    }

    /// `T₁ ▷ T₂`.
    pub fn seq(&self, a: TreeId, b: TreeId) -> TreeId {
        self.intern_node(pack(TAG_SEQ, a.0, b.0))
    }

    /// `T₁ ∥ T₂` — children are put in structural order when the
    /// interner is canonical.
    pub fn par(&self, a: TreeId, b: TreeId) -> TreeId {
        let (a, b) = if self.canonical && self.structural_cmp(a, b) == CmpOrdering::Greater {
            (b, a)
        } else {
            (a, b)
        };
        self.intern_node(pack(TAG_PAR, a.0, b.0))
    }

    /// Decodes an interned tree node.
    pub fn node(&self, t: TreeId) -> TNode {
        let (tag, a, b) = unpack(self.tree_nodes.get(t.0));
        match tag {
            TAG_DONE => TNode::Done,
            TAG_STM => TNode::Stm(StmtId(a)),
            TAG_SEQ => TNode::Seq(TreeId(a), TreeId(b)),
            TAG_PAR => TNode::Par(TreeId(a), TreeId(b)),
            _ => unreachable!("2-bit tag"),
        }
    }

    /// Structural total order on interned trees, mirroring the derived
    /// `Ord` on [`Tree`] exactly (`√ < ⟨s⟩ < ▷ < ∥`, then lexicographic
    /// children; statements compare by their derived order). Because the
    /// interner hash-conses, `a == b` iff the trees are structurally
    /// equal, which short-circuits shared subtrees.
    pub fn structural_cmp(&self, a: TreeId, b: TreeId) -> CmpOrdering {
        if a == b {
            return CmpOrdering::Equal;
        }
        match (self.node(a), self.node(b)) {
            (TNode::Done, TNode::Done) => CmpOrdering::Equal,
            (TNode::Done, _) => CmpOrdering::Less,
            (_, TNode::Done) => CmpOrdering::Greater,
            (TNode::Stm(x), TNode::Stm(y)) => self.stmt(x).cmp(self.stmt(y)),
            (TNode::Stm(_), _) => CmpOrdering::Less,
            (_, TNode::Stm(_)) => CmpOrdering::Greater,
            (TNode::Seq(a1, a2), TNode::Seq(b1, b2)) | (TNode::Par(a1, a2), TNode::Par(b1, b2)) => {
                self.structural_cmp(a1, b1)
                    .then_with(|| self.structural_cmp(a2, b2))
            }
            (TNode::Seq(..), TNode::Par(..)) => CmpOrdering::Less,
            (TNode::Par(..), TNode::Seq(..)) => CmpOrdering::Greater,
        }
    }

    /// Interns a cloned [`Tree`] (canonicalizing `∥` children when the
    /// interner is canonical).
    pub fn intern_tree(&self, t: &Tree) -> TreeId {
        match t {
            Tree::Done => DONE,
            Tree::Stm(s) => {
                let sid = self.intern_stmt(s);
                self.stm(sid)
            }
            Tree::Seq(a, b) => {
                let (a, b) = (self.intern_tree(a), self.intern_tree(b));
                self.seq(a, b)
            }
            Tree::Par(a, b) => {
                let (a, b) = (self.intern_tree(a), self.intern_tree(b));
                self.par(a, b)
            }
        }
    }

    /// Reconstructs the cloned [`Tree`] (for rendering and debugging).
    pub fn to_tree(&self, t: TreeId) -> Tree {
        match self.node(t) {
            TNode::Done => Tree::Done,
            TNode::Stm(s) => Tree::Stm(self.stmt(s).clone()),
            TNode::Seq(a, b) => Tree::seq(self.to_tree(a), self.to_tree(b)),
            TNode::Par(a, b) => Tree::par(self.to_tree(a), self.to_tree(b)),
        }
    }

    /// Collapses the administrative `√`-elimination forms, exactly like
    /// [`Tree::normalized`], over interned nodes.
    pub fn normalized(&self, t: TreeId) -> TreeId {
        match self.node(t) {
            TNode::Done | TNode::Stm(_) => t,
            TNode::Seq(a, b) => {
                let na = self.normalized(a);
                let nb = self.normalized(b);
                if na == DONE {
                    nb
                } else {
                    self.seq(na, nb)
                }
            }
            TNode::Par(a, b) => {
                let na = self.normalized(a);
                let nb = self.normalized(b);
                if na == DONE {
                    nb
                } else if nb == DONE {
                    na
                } else {
                    self.par(na, nb)
                }
            }
        }
    }

    /// Number of nodes of the denoted tree (counting shared subtrees once
    /// per occurrence, like [`Tree::node_count`]).
    pub fn node_count(&self, t: TreeId) -> usize {
        match self.node(t) {
            TNode::Done | TNode::Stm(_) => 1,
            TNode::Seq(a, b) | TNode::Par(a, b) => 1 + self.node_count(a) + self.node_count(b),
        }
    }

    // -- arrays -------------------------------------------------------------

    /// Interns an array-state cell vector.
    pub fn intern_array(&self, cells: Vec<i64>) -> ArrayId {
        let mut map = lock(&self.array_map[shard_of(&cells)]);
        if let Some(&id) = map.get(&cells) {
            return ArrayId(id);
        }
        let id = self.array_next.fetch_add(1, Ordering::Relaxed);
        assert!(id < MAX_IDS, "array interner capacity exceeded");
        self.array_vals.set(id, cells.clone());
        map.insert(cells, id);
        ArrayId(id)
    }

    /// The interned array's cells.
    pub fn cells(&self, id: ArrayId) -> &[i64] {
        self.array_vals.get(id.0)
    }

    // -- semantics ----------------------------------------------------------

    /// Enumerates all `(A', T')` with `(p, A, T) → (p, A', T')` over
    /// interned ids — rules (1)–(14), mirroring
    /// [`crate::step::successors`] but with structural sharing instead of
    /// deep clones (and canonical `∥` re-assembly when the interner is
    /// canonical).
    pub fn successors(&self, p: &Program, a: ArrayId, t: TreeId, out: &mut Vec<(ArrayId, TreeId)>) {
        match self.node(t) {
            TNode::Done => {}
            TNode::Seq(t1, t2) => {
                if t1 == DONE {
                    // Rule (1): √ ▷ T₂ → T₂.
                    out.push((a, t2));
                } else {
                    // Rule (2): step inside T₁.
                    let mut inner = Vec::new();
                    self.successors(p, a, t1, &mut inner);
                    for (sa, st) in inner {
                        out.push((sa, self.seq(st, t2)));
                    }
                }
            }
            TNode::Par(t1, t2) => {
                // Rules (3)/(4): eliminate a finished side.
                if t1 == DONE {
                    out.push((a, t2));
                }
                if t2 == DONE {
                    out.push((a, t1));
                }
                // Rule (5): step inside T₁.
                let mut inner = Vec::new();
                self.successors(p, a, t1, &mut inner);
                for (sa, st) in inner {
                    out.push((sa, self.par(st, t2)));
                }
                // Rule (6): step inside T₂.
                inner = Vec::new();
                self.successors(p, a, t2, &mut inner);
                for (sa, st) in inner {
                    out.push((sa, self.par(t1, st)));
                }
            }
            TNode::Stm(s) => out.push(self.step_stmt(p, a, s)),
        }
    }

    /// Rules (7)–(14): the unique step of `⟨s⟩`, mirroring
    /// [`crate::step::step_stmt`]. Derived statements (while-unroll,
    /// call-inline, spawned bodies) are memoized so each concatenation is
    /// built and hashed once per distinct source statement.
    fn step_stmt(&self, p: &Program, a: ArrayId, s: StmtId) -> (ArrayId, TreeId) {
        let stmt = self.stmt(s);
        let head = stmt.head();
        let cont = match self.stmt_tail(s) {
            Some(k) => self.stm(k),
            None => DONE,
        };
        match &head.kind {
            InstrKind::Skip => (a, cont),
            InstrKind::Assign { idx, expr } => {
                let cells = self.cells(a);
                let v = crate::state::eval_cells(cells, expr);
                let mut next = cells.to_vec();
                next[*idx] = v;
                (self.intern_array(next), cont)
            }
            InstrKind::While { idx, body } => {
                if self.cells(a)[*idx] == 0 {
                    (a, cont)
                } else {
                    // ⟨s_body . s⟩: memoized by the source statement id.
                    let unrolled = self.derived_stmt(s, || body.clone().seq(self.stmt(s).clone()));
                    (a, self.stm(unrolled))
                }
            }
            InstrKind::Async { body } => {
                let spawned = self.spawned_stmt(head.label, body);
                (a, self.par(self.stm(spawned), cont))
            }
            InstrKind::Finish { body } => {
                let spawned = self.spawned_stmt(head.label, body);
                (a, self.seq(self.stm(spawned), cont))
            }
            InstrKind::Call { callee } => {
                let unrolled = self.derived_stmt(s, || {
                    let body = p.body(*callee).clone();
                    match self.stmt(s).tail() {
                        Some(k) => body.seq(k),
                        None => body,
                    }
                });
                (a, self.stm(unrolled))
            }
        }
    }

    fn derived_stmt(&self, from: StmtId, build: impl FnOnce() -> Stmt) -> StmtId {
        if let Some(&id) = lock(&self.unroll_cache[from.0 as usize % SHARDS]).get(&from.0) {
            return StmtId(id);
        }
        let id = self.intern_stmt(&build());
        lock(&self.unroll_cache[from.0 as usize % SHARDS]).insert(from.0, id.0);
        id
    }

    fn spawned_stmt(&self, label: Label, body: &Stmt) -> StmtId {
        if let Some(&id) = lock(&self.spawn_cache[shard_of(&label)]).get(&label) {
            return StmtId(id);
        }
        let id = self.intern_stmt(body);
        lock(&self.spawn_cache[shard_of(&label)]).insert(label, id.0);
        id
    }

    // -- parallel(T) --------------------------------------------------------

    /// `∪ parallel(T)` over a set of distinct interned trees, with
    /// `FTlabels` memoized per tree id and already-crossed subtrees
    /// skipped — the interned counterpart of folding
    /// [`crate::parallel::parallel`] over visited states.
    pub fn parallel_of_trees(
        &self,
        trees: impl IntoIterator<Item = TreeId>,
    ) -> BTreeSet<LabelPair> {
        let mut out = BTreeSet::new();
        let mut ft: HashMap<TreeId, Rc<BTreeSet<Label>>> = HashMap::new();
        let mut seen: HashSet<TreeId> = HashSet::new();
        for t in trees {
            self.collect_parallel(t, &mut ft, &mut seen, &mut out);
        }
        out
    }

    fn collect_parallel(
        &self,
        t: TreeId,
        ft: &mut HashMap<TreeId, Rc<BTreeSet<Label>>>,
        seen: &mut HashSet<TreeId>,
        out: &mut BTreeSet<LabelPair>,
    ) {
        if !seen.insert(t) {
            return;
        }
        match self.node(t) {
            TNode::Done | TNode::Stm(_) => {}
            // parallel(T₁ ▷ T₂) = parallel(T₁).
            TNode::Seq(t1, _) => self.collect_parallel(t1, ft, seen, out),
            TNode::Par(t1, t2) => {
                self.collect_parallel(t1, ft, seen, out);
                self.collect_parallel(t2, ft, seen, out);
                let l1 = self.ftlabels_memo(t1, ft);
                let l2 = self.ftlabels_memo(t2, ft);
                for &a in l1.iter() {
                    for &b in l2.iter() {
                        out.insert(pair(a, b));
                    }
                }
            }
        }
    }

    /// `FTlabels(T)` memoized by tree id (equations 33–36).
    fn ftlabels_memo(
        &self,
        t: TreeId,
        memo: &mut HashMap<TreeId, Rc<BTreeSet<Label>>>,
    ) -> Rc<BTreeSet<Label>> {
        if let Some(s) = memo.get(&t) {
            return Rc::clone(s);
        }
        let set = match self.node(t) {
            TNode::Done => BTreeSet::new(),
            TNode::Stm(s) => {
                let mut one = BTreeSet::new();
                one.insert(self.stmt(s).head().label);
                one
            }
            // FTlabels(T₁ ▷ T₂) = FTlabels(T₁): the right side is blocked.
            TNode::Seq(t1, _) => (*self.ftlabels_memo(t1, memo)).clone(),
            TNode::Par(t1, t2) => {
                let mut l = (*self.ftlabels_memo(t1, memo)).clone();
                l.extend(self.ftlabels_memo(t2, memo).iter().copied());
                l
            }
        };
        let rc = Rc::new(set);
        memo.insert(t, Rc::clone(&rc));
        rc
    }

    /// Renders an interned state exactly like the cloned explorer renders
    /// the corresponding canonical [`Tree`] state — the byte-comparable
    /// digest used by the differential oracle.
    pub fn render_state(&self, a: ArrayId, t: TreeId) -> String {
        format!("{:?} ⊢ {}", self.cells(a), self.to_tree(t))
    }

    /// Interner occupancy, for diagnostics: (statements, trees, arrays).
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.stmt_next.load(Ordering::Relaxed) as usize,
            self.tree_next.load(Ordering::Relaxed) as usize,
            self.array_next.load(Ordering::Relaxed) as usize,
        )
    }
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (s, t, a) = self.counts();
        f.debug_struct("Interner")
            .field("canonical", &self.canonical)
            .field("stmts", &s)
            .field("trees", &t)
            .field("arrays", &a)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ArrayState;
    use crate::step::{initial_tree, successors};
    use fx10_syntax::Program;

    fn main_stmt(p: &Program) -> Stmt {
        p.body(p.main()).clone()
    }

    #[test]
    fn hash_consing_dedups_structurally_equal_trees() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        let it = Interner::new(true);
        let s = it.intern_stmt(&main_stmt(&p));
        let a = it.par(it.stm(s), DONE);
        let b = it.par(DONE, it.stm(s));
        assert_eq!(a, b, "canonical ∥ identifies the symmetric pair");
        assert_eq!(it.seq(a, DONE), it.seq(b, DONE));
        let lit = Interner::new(false);
        let s2 = lit.intern_stmt(&main_stmt(&p));
        assert_ne!(
            lit.par(lit.stm(s2), DONE),
            lit.par(DONE, lit.stm(s2)),
            "literal mode keeps both orientations"
        );
    }

    #[test]
    fn stmt_suffixes_share_ids_with_their_standalone_equals() {
        let p = Program::parse("def main() { S1; S2; S3; }").unwrap();
        let it = Interner::new(true);
        let whole = it.intern_stmt(&main_stmt(&p));
        let tail = it.stmt_tail(whole).unwrap();
        // Interning the structurally-equal suffix hits the same id.
        assert_eq!(it.intern_stmt(&main_stmt(&p).tail().unwrap()), tail);
        let last = it.stmt_tail(tail).unwrap();
        assert_eq!(it.stmt_tail(last), None);
        assert_eq!(it.stmt(last).len(), 1);
    }

    #[test]
    fn structural_cmp_mirrors_derived_tree_ord() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        let it = Interner::new(false);
        let s = main_stmt(&p);
        let trees = [
            Tree::Done,
            Tree::stm(s.clone()),
            Tree::stm(s.tail().unwrap()),
            Tree::seq(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::stm(s.clone()), Tree::Done),
            Tree::par(Tree::Done, Tree::stm(s.clone())),
        ];
        for x in &trees {
            for y in &trees {
                let (ix, iy) = (it.intern_tree(x), it.intern_tree(y));
                assert_eq!(
                    it.structural_cmp(ix, iy),
                    x.cmp(y),
                    "order mismatch on {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn interned_successors_match_cloned_successors_modulo_canonical() {
        for src in [
            "def main() { async { B; } K; }",
            "def main() { finish { async { B; } } K; }",
            "def f() { X; } def main() { f(); K; }",
            "def main() { a[0] = 1; while (a[0] != 0) { a[0] = 0; } K; }",
        ] {
            let p = Program::parse(src).unwrap();
            let it = Interner::new(true);
            // Walk a few steps comparing both representations.
            let mut frontier = vec![(ArrayState::zeros(&p), initial_tree(&p))];
            let mut steps = 0;
            while let Some((arr, tree)) = frontier.pop() {
                if steps > 200 {
                    break;
                }
                steps += 1;
                let aid = it.intern_array(arr.cells().to_vec());
                let tid = it.intern_tree(&tree);
                let mut got = Vec::new();
                it.successors(&p, aid, tid, &mut got);
                let want = successors(&p, &arr, &tree);
                assert_eq!(got.len(), want.len(), "{src}");
                for (w, (ga, gt)) in want.iter().zip(&got) {
                    assert_eq!(it.cells(*ga), w.array.cells(), "{src}");
                    assert_eq!(
                        *gt,
                        it.intern_tree(&w.tree.clone().canonical()),
                        "{src}: successor tree mismatch"
                    );
                }
                for s in want {
                    frontier.push((s.array, s.tree));
                }
            }
        }
    }

    #[test]
    fn parallel_of_trees_matches_cloned_parallel() {
        use crate::parallel::parallel;
        let p = Program::parse("def main() { async { B; } async { C; } K; }").unwrap();
        let it = Interner::new(true);
        let s = main_stmt(&p);
        let t = Tree::par(
            Tree::stm(s.clone()),
            Tree::par(Tree::stm(s.tail().unwrap()), Tree::stm(s)),
        )
        .canonical();
        let id = it.intern_tree(&t);
        assert_eq!(it.parallel_of_trees([id]), parallel(&t));
    }

    #[test]
    fn normalized_matches_cloned_normalized() {
        let p = Program::parse("def main() { S1; }").unwrap();
        let it = Interner::new(true);
        let s = main_stmt(&p);
        let messy = Tree::par(
            Tree::seq(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::Done, Tree::stm(s)),
        );
        let id = it.intern_tree(&messy);
        assert_eq!(
            it.normalized(id),
            it.intern_tree(&messy.clone().normalized().canonical())
        );
        assert_eq!(it.normalized(DONE), DONE);
    }

    #[test]
    fn render_matches_cloned_display() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        let it = Interner::new(true);
        let t = Tree::par(Tree::stm(main_stmt(&p)), Tree::Done).canonical();
        let id = it.intern_tree(&t);
        let aid = it.intern_array(vec![0]);
        assert_eq!(it.render_state(aid, id), format!("{:?} ⊢ {}", [0i64], t));
    }

    #[test]
    fn state_key_roundtrips() {
        let k = state_key(ArrayId(7), TreeId(42));
        assert_eq!(state_parts(k), (ArrayId(7), TreeId(42)));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let p = Program::parse("def main() { async { B; } async { C; } K; }").unwrap();
        let it = Interner::new(true);
        let s = main_stmt(&p);
        let ids: Vec<TreeId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (it, s) = (&it, &s);
                    scope.spawn(move || {
                        let sid = it.intern_stmt(s);
                        it.par(it.stm(sid), it.seq(it.stm(sid), DONE))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
