//! # fx10-semantics
//!
//! The small-step operational semantics of FX10 (paper §3.3).
//!
//! A state is a triple `(p, A, T)` of the program, the shared-array state
//! [`ArrayState`], and an execution [`Tree`]:
//!
//! ```text
//! T ::= √  |  ⟨s⟩  |  T ▷ T  |  T ∥ T
//! ```
//!
//! `T₁ ▷ T₂` (from `finish`) requires `T₁` to complete before `T₂` runs;
//! `T₁ ∥ T₂` (from `async`) interleaves both sides; `√` is a completed
//! computation; `⟨s⟩` is a running statement.
//!
//! This crate provides:
//! - [`step`]: the transition rules (1)–(14) as a successor enumerator,
//! - [`interp`]: an interpreter parameterized by a [`interp::Scheduler`]
//!   (leftmost, rightmost, random),
//! - [`parallel`]: the `parallel(T)` / `FTlabels(T)` functions of Figure 3,
//!   used to define ground-truth MHP,
//! - [`explore`](mod@explore): exhaustive (sequential and multi-threaded) state-space
//!   exploration computing the *dynamic* may-happen-in-parallel relation
//!   `MHP(p) = ∪ { parallel(T) | (p,A₀,⟨s₀⟩) →* (p,A,T) }` and checking
//!   the deadlock-freedom theorem (Theorem 1) on every visited state.

#![warn(missing_docs)]
pub mod explore;
pub mod intern;
pub mod interp;
pub mod parallel;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod step;
pub mod tree;
pub mod witness;

pub use explore::{
    explore, explore_budgeted, explore_interned_budgeted, explore_parallel,
    explore_parallel_budgeted, explore_parallel_durable, explore_sampled, settle_outcome,
    CheckpointSpec, Durability, Exploration, ExploreConfig, FrontSample, WatchdogSpec,
};
pub use intern::{ArrayId, Interner, StmtId, TreeId};
pub use interp::{run, run_budgeted, run_result, RunOutcome, Scheduler};
pub use parallel::{ftlabels, parallel, LabelPair};
pub use shard::{
    explore_sharded, shard_of, shard_worker_main, shard_worker_net, NetWorkerOptions,
    ShardProvenance, ShardedOptions, StateDigests,
};
pub use snapshot::{fingerprint as snapshot_fingerprint, ExplorerSnapshot};
pub use state::ArrayState;
pub use tree::Tree;
pub use witness::{find_witness, find_witness_simple, witness_exhibits, Witness, WitnessSearch};
