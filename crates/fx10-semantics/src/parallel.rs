//! The `FSlabels` / `FTlabels` / `parallel` functions of Figure 3.
//!
//! `parallel(T)` is the set of label pairs "executing in parallel right
//! now" — for each pair, both instructions can take a step in `T`. It is
//! the paper's yardstick for correctness: the static analysis must
//! over-approximate `parallel(T)` for every reachable `T` (Theorem 2).
//!
//! These functions are defined here (rather than in the analysis crate)
//! because they are purely semantic: they depend only on trees, not on the
//! abstract domains. Ground-truth MHP uses simple ordered collections —
//! exhaustive exploration dominates the cost, not set operations.

use crate::tree::Tree;
use fx10_syntax::{Label, Stmt};
use std::collections::BTreeSet;

/// An unordered label pair, stored with the smaller label first.
pub type LabelPair = (Label, Label);

/// Normalizes an unordered pair.
#[inline]
pub fn pair(a: Label, b: Label) -> LabelPair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// `FSlabels(s)`: the label of the statement's first instruction
/// (equations 26–32 — always the head's label).
pub fn fslabels(s: &Stmt) -> Label {
    s.head().label
}

/// `FTlabels(T)`: labels of instructions that can execute next
/// (equations 33–36).
pub fn ftlabels(t: &Tree) -> BTreeSet<Label> {
    let mut out = BTreeSet::new();
    collect_ftlabels(t, &mut out);
    out
}

fn collect_ftlabels(t: &Tree, out: &mut BTreeSet<Label>) {
    match t {
        Tree::Done => {}
        // FTlabels(T₁ ▷ T₂) = FTlabels(T₁): the right side is blocked.
        Tree::Seq(t1, _) => collect_ftlabels(t1, out),
        Tree::Par(t1, t2) => {
            collect_ftlabels(t1, out);
            collect_ftlabels(t2, out);
        }
        Tree::Stm(s) => {
            out.insert(fslabels(s));
        }
    }
}

/// `parallel(T)` (equations 41–44), as a set of unordered pairs.
///
/// The paper's definition produces a symmetric relation via `symcross`;
/// unordered pairs carry the same information.
pub fn parallel(t: &Tree) -> BTreeSet<LabelPair> {
    let mut out = BTreeSet::new();
    collect_parallel(t, &mut out);
    out
}

fn collect_parallel(t: &Tree, out: &mut BTreeSet<LabelPair>) {
    match t {
        Tree::Done | Tree::Stm(_) => {}
        // parallel(T₁ ▷ T₂) = parallel(T₁).
        Tree::Seq(t1, _) => collect_parallel(t1, out),
        Tree::Par(t1, t2) => {
            collect_parallel(t1, out);
            collect_parallel(t2, out);
            // symcross(FTlabels(T₁), FTlabels(T₂)).
            let l1 = ftlabels(t1);
            let l2 = ftlabels(t2);
            for &a in &l1 {
                for &b in &l2 {
                    out.insert(pair(a, b));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::Program;

    #[test]
    fn parallel_of_leaf_and_done_is_empty() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        assert!(parallel(&Tree::Done).is_empty());
        assert!(parallel(&Tree::stm(p.body(p.main()).clone())).is_empty());
    }

    #[test]
    fn par_crosses_front_labels() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        let s = p.body(p.main());
        let t = Tree::par(
            Tree::stm(s.clone()),         // front label = S1 (label 0)
            Tree::stm(s.tail().unwrap()), // front label = S2 (label 1)
        );
        let pairs = parallel(&t);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(Label(0), Label(1))));
    }

    #[test]
    fn seq_hides_right_side() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        let s = p.body(p.main());
        let inner = Tree::par(Tree::stm(s.clone()), Tree::stm(s.clone()));
        let t = Tree::seq(inner.clone(), Tree::stm(s.clone()));
        assert_eq!(parallel(&t), parallel(&inner));
        // And FTlabels of the Seq is FTlabels of the left side only.
        assert_eq!(ftlabels(&t), ftlabels(&inner));
    }

    #[test]
    fn self_pair_from_two_copies() {
        let p = Program::parse("def main() { S1; }").unwrap();
        let s = p.body(p.main());
        let t = Tree::par(Tree::stm(s.clone()), Tree::stm(s.clone()));
        let pairs = parallel(&t);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(Label(0), Label(0))), "self pair expected");
    }

    #[test]
    fn nested_par_accumulates() {
        let p = Program::parse("def main() { S1; S2; S3; }").unwrap();
        let s = p.body(p.main());
        let t1 = Tree::stm(s.clone()); // front 0
        let t2 = Tree::stm(s.tail().unwrap()); // front 1
        let t3 = Tree::stm(s.tail().unwrap().tail().unwrap()); // front 2
        let t = Tree::par(Tree::par(t1, t2), t3);
        let pairs = parallel(&t);
        assert_eq!(pairs.len(), 3); // (0,1), (0,2), (1,2)
    }
}
