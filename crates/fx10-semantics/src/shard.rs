//! Digest-range sharding of the exploration state space across worker
//! *processes* (PR 6's tentpole).
//!
//! ## Why sharding is sound
//!
//! FX10 exploration is schedule-independent: the reachable set
//! `{(A,T) | (p,A₀,⟨s₀⟩) →* (p,A,T)}` does not depend on the order in
//! which frontier states are expanded. Partitioning states by a
//! structural digest therefore partitions the *work*, not the *answer*:
//! every shard explores exactly the states whose digest lands in its
//! range, forwards foreign successors to their owners, and the union of
//! the per-shard visited sets is the sequential reachable set. MHP is a
//! plain union over visited trees and the Theorem 1 verdict a
//! conjunction, so both merge losslessly.
//!
//! ## The pieces
//!
//! - [`StateDigests`]: a memoized structural digest per interned state,
//!   stable across processes (it hashes label sequences, cell values and
//!   tree shape — never interner ids).
//! - [`shard_of`]: maps a digest to a shard by range (multiply-shift,
//!   no modulo bias).
//! - [`ShardInit`] / [`ShardResult`]: the `INIT` / `RESULT` bodies,
//!   encoded as single-section FX10SNAP containers so a corrupted body
//!   is a typed [`SnapshotError`], never a panic.
//! - [`shard_worker_main`]: the child-process event loop behind
//!   `fx10 shard-worker` — expand, route, batch, checkpoint, ack.
//! - [`shard_worker_net`]: the same event loop behind
//!   `fx10 shard-worker --connect`, dialing the supervisor over TCP
//!   with the [`fx10_robust::conn`] handshake, reconnecting with
//!   decorrelated backoff, and retransmitting unacked batches — the
//!   transport may lose, duplicate or delay frames without changing
//!   the answer.
//! - [`explore_sharded`]: the parent-side orchestration wrapping
//!   [`ShardSupervisor`] and merging the per-shard results into one
//!   [`Exploration`]; `ShardedOptions::listen` switches the fleet from
//!   stdio pipes to the socket transport.
//!
//! ## Crash-correctness invariants (shared with `fx10-robust::shard`)
//!
//! 1. A worker flushes *all* outboxes before writing a checkpoint, so
//!    the checkpoint never claims a state whose foreign successors are
//!    still buffered in this process.
//! 2. `BATCH`/`ADOPT` frames are acked only *after* a successful atomic
//!    checkpoint save; the supervisor redelivers unacked frames to the
//!    next incarnation, and insertion-side dedup makes replay idempotent.
//! 3. Terminal states are counted on *insertion into the visited set*
//!    (not on expansion), so replayed frames and re-imported checkpoints
//!    can never double-count; `deadlock_free` merges by `&=`, which is
//!    idempotent for the same reason.
//! 4. A worker re-derives the initial state and admits it whenever its
//!    ownership set could have changed (on `INIT` and after `ADOPT`),
//!    covering the window where the seed's owner dies before its first
//!    checkpoint.

use crate::explore::{Exploration, ExploreConfig};
use crate::intern::{state_key, state_parts, ArrayId, Interner, StmtId, TNode, TreeId, DONE};
use crate::snapshot::{fingerprint, ExplorerSnapshot};
use crate::state::ArrayState;
use crate::step::initial_tree;
use fx10_robust::backoff::{RestartPolicy, XorShift64};
use fx10_robust::conn::{self, NetChaos};
use fx10_robust::ipc::{self, kind, WireMsg};
use fx10_robust::shard::{FleetLink, ShardSupervisor, TcpLinkConfig};
use fx10_robust::snapshot::{fnv1a64, SectionBuf, Snapshot, SnapshotError, SnapshotWriter};
use fx10_robust::{CancelToken, Exhaustion, Fx10Error};
use fx10_syntax::{Label, Program};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Structural state digests
// ---------------------------------------------------------------------------

/// Memoized structural digests of interned statements, trees, arrays
/// and states.
///
/// The digest of a state depends only on its *rendered structure* — the
/// instruction-label sequences of its statements, the `√`/`⟨s⟩`/`▷`/`∥`
/// shape of its tree, and its cell values — never on interner ids. Two
/// processes that intern the same state in any order therefore compute
/// the same digest, which is what makes the digest usable as a
/// cross-process shard key. (Statements hash their label sequence
/// because that is exactly what [`crate::tree::Tree`]'s rendering
/// prints: two statements with equal label sequences are the same
/// statement of the same program.)
#[derive(Debug, Default)]
pub struct StateDigests {
    stmts: Vec<Option<u64>>,
    trees: Vec<Option<u64>>,
    arrays: Vec<Option<u64>>,
}

/// FNV-1a over a list of 64-bit parts (little-endian), with a leading
/// tag byte separating the constructors.
fn mix(tag: u8, parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(1 + parts.len() * 8);
    bytes.push(tag);
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a64(&bytes)
}

impl StateDigests {
    /// An empty memo table.
    pub fn new() -> StateDigests {
        StateDigests::default()
    }

    fn slot(v: &mut Vec<Option<u64>>, i: usize) -> &mut Option<u64> {
        if v.len() <= i {
            v.resize(i + 1, None);
        }
        &mut v[i]
    }

    fn stmt_digest(&mut self, it: &Interner, s: StmtId) -> u64 {
        if let Some(d) = Self::slot(&mut self.stmts, s.0 as usize) {
            return *d;
        }
        let mut bytes = Vec::new();
        for i in it.stmt(s).instrs() {
            bytes.extend_from_slice(&i.label.0.to_le_bytes());
        }
        let d = fnv1a64(&bytes);
        *Self::slot(&mut self.stmts, s.0 as usize) = Some(d);
        d
    }

    fn array_digest(&mut self, it: &Interner, a: ArrayId) -> u64 {
        if let Some(d) = Self::slot(&mut self.arrays, a.0 as usize) {
            return *d;
        }
        let mut bytes = Vec::new();
        for c in it.cells(a) {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        let d = fnv1a64(&bytes);
        *Self::slot(&mut self.arrays, a.0 as usize) = Some(d);
        d
    }

    /// Digest of an interned tree (explicit stack — trees can be deep).
    pub fn tree_digest(&mut self, it: &Interner, t: TreeId) -> u64 {
        if let Some(d) = *Self::slot(&mut self.trees, t.0 as usize) {
            return d;
        }
        let mut stack = vec![t];
        while let Some(&top) = stack.last() {
            if Self::slot(&mut self.trees, top.0 as usize).is_some() {
                stack.pop();
                continue;
            }
            let done = match it.node(top) {
                TNode::Done => Some(mix(0, &[])),
                TNode::Stm(s) => {
                    let sd = self.stmt_digest(it, s);
                    Some(mix(1, &[sd]))
                }
                TNode::Seq(a, b) | TNode::Par(a, b) => {
                    let tag = if matches!(it.node(top), TNode::Seq(..)) {
                        2
                    } else {
                        3
                    };
                    let da = *Self::slot(&mut self.trees, a.0 as usize);
                    let db = *Self::slot(&mut self.trees, b.0 as usize);
                    match (da, db) {
                        (Some(da), Some(db)) => Some(mix(tag, &[da, db])),
                        _ => {
                            if db.is_none() {
                                stack.push(b);
                            }
                            if da.is_none() {
                                stack.push(a);
                            }
                            None
                        }
                    }
                }
            };
            if let Some(d) = done {
                *Self::slot(&mut self.trees, top.0 as usize) = Some(d);
                stack.pop();
            }
        }
        Self::slot(&mut self.trees, t.0 as usize).expect("just computed")
    }

    /// Digest of a full state `(A, T)`.
    pub fn state_digest(&mut self, it: &Interner, a: ArrayId, t: TreeId) -> u64 {
        let ad = self.array_digest(it, a);
        let td = self.tree_digest(it, t);
        mix(4, &[ad, td])
    }
}

/// Maps a digest to one of `shards` shards by range: shard `k` owns the
/// digests in `[k·2⁶⁴/n, (k+1)·2⁶⁴/n)`. Multiply-shift — unbiased and
/// branch-free, unlike `digest % n`.
pub fn shard_of(digest: u64, shards: u32) -> u32 {
    (((digest as u128) * (shards as u128)) >> 64) as u32
}

// ---------------------------------------------------------------------------
// INIT / RESULT bodies
// ---------------------------------------------------------------------------

const SEC_INIT: u32 = 101;
const SEC_RESULT: u32 = 102;

/// Deterministic fault injection carried in `INIT` (only on a worker's
/// first attempt — restarts run clean so chaos runs terminate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardChaos {
    /// Exit abruptly (no `ACK`, no `RESULT`) right after writing the
    /// n-th checkpoint — the worst crash window: durable state written,
    /// acks not yet released.
    pub kill_after_ckpt: Option<u32>,
    /// Go silent (stop reading, writing and expanding) once this many
    /// states have been expanded; the supervisor's stall detector must
    /// kill and restart the worker.
    pub wedge_after_states: Option<u64>,
}

/// The decoded body of an `INIT` frame: everything a fresh worker
/// process needs to reconstruct its slice of the exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInit {
    /// Pretty-printed program source (re-parsed by the worker; the
    /// pretty-printer is deterministic, so the snapshot fingerprint
    /// agrees across the process boundary).
    pub program: String,
    /// Initial cell values.
    pub input: Vec<i64>,
    /// [`ExploreConfig::canonical_dedup`].
    pub canonical_dedup: bool,
    /// [`ExploreConfig::normalize_admin`].
    pub normalize_admin: bool,
    /// Total shard count (the digest-range denominator).
    pub shards: u32,
    /// This worker's slot index (for diagnostics).
    pub slot: u32,
    /// Restart attempt (0 = first spawn).
    pub attempt: u32,
    /// Shard ids this worker currently owns.
    pub owned: Vec<u32>,
    /// Durable checkpoint path for this slot.
    pub ckpt_path: String,
    /// Checkpoint after this many newly inserted states (0 = only the
    /// idle-time checkpoints that release acks).
    pub ckpt_every: u64,
    /// Collect canonical state renderings into the `RESULT` (the
    /// differential-oracle hook).
    pub collect: bool,
    /// Fault injection for this incarnation.
    pub chaos: ShardChaos,
}

/// Encodes an [`ShardInit`] as a single-section FX10SNAP container.
pub fn encode_init(init: &ShardInit) -> Vec<u8> {
    let mut b = SectionBuf::new();
    b.put_usize(init.program.len());
    b.put_bytes(init.program.as_bytes());
    b.put_usize(init.input.len());
    for &v in &init.input {
        b.put_i64(v);
    }
    b.put_u8(init.canonical_dedup as u8);
    b.put_u8(init.normalize_admin as u8);
    b.put_u32(init.shards);
    b.put_u32(init.slot);
    b.put_u32(init.attempt);
    b.put_usize(init.owned.len());
    for &s in &init.owned {
        b.put_u32(s);
    }
    b.put_usize(init.ckpt_path.len());
    b.put_bytes(init.ckpt_path.as_bytes());
    b.put_u64(init.ckpt_every);
    b.put_u8(init.collect as u8);
    match init.chaos.kill_after_ckpt {
        Some(n) => {
            b.put_u8(1);
            b.put_u32(n);
        }
        None => b.put_u8(0),
    }
    match init.chaos.wedge_after_states {
        Some(n) => {
            b.put_u8(1);
            b.put_u64(n);
        }
        None => b.put_u8(0),
    }
    let mut w = SnapshotWriter::new();
    w.add_section(SEC_INIT, b);
    w.finish()
}

/// Reads a length-prefixed UTF-8 string, bounds-checked before any
/// allocation (a corrupted length must become a typed error).
fn get_string(c: &mut fx10_robust::snapshot::Cursor<'_>) -> Result<String, SnapshotError> {
    let n = c.get_usize()?;
    if n > c.remaining() {
        return Err(SnapshotError::Truncated);
    }
    String::from_utf8(c.get_bytes(n)?.to_vec())
        .map_err(|_| SnapshotError::Malformed("non-UTF-8 string".into()))
}

/// Bounds-checks an element count against the bytes actually present.
fn check_count(
    n: usize,
    elem: usize,
    c: &fx10_robust::snapshot::Cursor<'_>,
) -> Result<(), SnapshotError> {
    if n.checked_mul(elem).is_none_or(|b| b > c.remaining()) {
        return Err(SnapshotError::Truncated);
    }
    Ok(())
}

/// Decodes an `INIT` body.
pub fn decode_init(body: &[u8]) -> Result<ShardInit, SnapshotError> {
    let snap = Snapshot::parse(body)?;
    let mut c = snap.section(SEC_INIT)?;
    let program = get_string(&mut c)?;
    let n = c.get_usize()?;
    check_count(n, 8, &c)?;
    let input = (0..n).map(|_| c.get_i64()).collect::<Result<_, _>>()?;
    let canonical_dedup = c.get_u8()? != 0;
    let normalize_admin = c.get_u8()? != 0;
    let shards = c.get_u32()?;
    let slot = c.get_u32()?;
    let attempt = c.get_u32()?;
    let n = c.get_usize()?;
    check_count(n, 4, &c)?;
    let owned = (0..n).map(|_| c.get_u32()).collect::<Result<_, _>>()?;
    let ckpt_path = get_string(&mut c)?;
    let ckpt_every = c.get_u64()?;
    let collect = c.get_u8()? != 0;
    let kill_after_ckpt = if c.get_u8()? != 0 {
        Some(c.get_u32()?)
    } else {
        None
    };
    let wedge_after_states = if c.get_u8()? != 0 {
        Some(c.get_u64()?)
    } else {
        None
    };
    c.done()?;
    if shards == 0 {
        return Err(SnapshotError::Malformed("zero shard count".into()));
    }
    Ok(ShardInit {
        program,
        input,
        canonical_dedup,
        normalize_admin,
        shards,
        slot,
        attempt,
        owned,
        ckpt_path,
        ckpt_every,
        collect,
        chaos: ShardChaos {
            kill_after_ckpt,
            wedge_after_states,
        },
    })
}

/// The decoded body of a `RESULT` frame: one shard's share of the
/// exploration answer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardResult {
    /// Distinct states this worker inserted.
    pub visited: u64,
    /// Terminal (`√`) states among them.
    pub terminals: u64,
    /// Theorem 1 verdict over this worker's states.
    pub deadlock_free: bool,
    /// `∪ parallel(T)` over this worker's visited trees, as raw label
    /// pairs.
    pub pairs: Vec<(u32, u32)>,
    /// Canonical state renderings (empty unless `INIT.collect`).
    pub renders: Vec<String>,
}

/// Encodes a [`ShardResult`] as a single-section FX10SNAP container.
pub fn encode_result(r: &ShardResult) -> Vec<u8> {
    let mut b = SectionBuf::new();
    b.put_u64(r.visited);
    b.put_u64(r.terminals);
    b.put_u8(r.deadlock_free as u8);
    b.put_usize(r.pairs.len());
    for &(x, y) in &r.pairs {
        b.put_u32(x);
        b.put_u32(y);
    }
    b.put_usize(r.renders.len());
    for s in &r.renders {
        b.put_usize(s.len());
        b.put_bytes(s.as_bytes());
    }
    let mut w = SnapshotWriter::new();
    w.add_section(SEC_RESULT, b);
    w.finish()
}

/// Decodes a `RESULT` body.
pub fn decode_result(body: &[u8]) -> Result<ShardResult, SnapshotError> {
    let snap = Snapshot::parse(body)?;
    let mut c = snap.section(SEC_RESULT)?;
    let visited = c.get_u64()?;
    let terminals = c.get_u64()?;
    let deadlock_free = c.get_u8()? != 0;
    let n = c.get_usize()?;
    check_count(n, 8, &c)?;
    let pairs = (0..n)
        .map(|_| Ok((c.get_u32()?, c.get_u32()?)))
        .collect::<Result<_, SnapshotError>>()?;
    let n = c.get_usize()?;
    check_count(n, 8, &c)?;
    let mut renders = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        renders.push(get_string(&mut c)?);
    }
    c.done()?;
    Ok(ShardResult {
        visited,
        terminals,
        deadlock_free,
        pairs,
        renders,
    })
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// States expanded per event-loop iteration before the inbox is polled
/// again.
const SLICE: usize = 256;
/// Flush an outbox to its owner once it holds this many states.
const BATCH_FLUSH: usize = 512;
/// Progress-heartbeat cadence.
const PROGRESS_EVERY: Duration = Duration::from_millis(100);
/// Retransmission cadence for unacked batches on a lossy link.
const RETRANSMIT_EVERY: Duration = Duration::from_millis(300);
/// States rendered per heartbeat check while collecting a `RESULT`
/// (rendering is microseconds per state, so this checks the clock
/// every few milliseconds).
const RENDER_CHUNK: usize = 2048;

enum In {
    Msg(WireMsg),
    Eof,
    Fail(Fx10Error),
}

/// Reads frames off `input` into `tx` until EOF or an error; shared by
/// the pipe reader and the per-connection socket readers.
fn pump_frames(mut input: impl Read, tx: Sender<In>, max_len: usize) {
    loop {
        match ipc::read_frame(&mut input, max_len) {
            Ok(Some(m)) => {
                if tx.send(In::Msg(m)).is_err() {
                    return;
                }
            }
            Ok(None) => {
                let _ = tx.send(In::Eof);
                return;
            }
            Err(e) => {
                let _ = tx.send(In::Fail(e));
                return;
            }
        }
    }
}

/// How a worker process reaches its supervisor.
///
/// Pipes (the original transport) are reliable and never reconnect: an
/// EOF means the supervisor is done with us. Sockets are lossy under
/// chaos and survive disconnection by re-dialing; the worker's ARQ
/// layer (dedup window + retained unacked batches) sits above this
/// trait, so links are free to drop frames on a broken connection.
trait WorkerLink {
    /// Writes one already-encoded frame. On a socket link a write
    /// failure is *not* an error: the frame is dropped, the link severs
    /// the stream, and the receive path reports the disconnect — every
    /// frame the protocol cannot afford to lose is retained and
    /// retransmitted above this layer.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Fx10Error>;
    /// Next inbound event; `timeout: None` polls without blocking.
    fn recv(&mut self, timeout: Option<Duration>) -> Option<In>;
    /// Does the transport guarantee in-order, loss-free delivery?
    fn reliable(&self) -> bool;
    /// Re-establishes a broken link (socket links only).
    fn reconnect(&mut self) -> Result<(), Fx10Error>;
    /// Records the program fingerprint carried by reconnect handshakes.
    fn set_fingerprint(&mut self, fp: u64);
}

/// The stdio transport: a reader thread pumping stdin, writes straight
/// to stdout.
struct PipeLink<W: Write> {
    rx: Receiver<In>,
    out: W,
}

impl<W: Write> PipeLink<W> {
    fn spawn<R: Read + Send + 'static>(input: R, out: W) -> PipeLink<W> {
        let (tx, rx) = channel();
        thread::spawn(move || pump_frames(input, tx, ipc::MAX_FRAME_LEN));
        PipeLink { rx, out }
    }
}

impl<W: Write> WorkerLink for PipeLink<W> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Fx10Error> {
        ipc::write_frame_bytes(&mut self.out, frame)
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Option<In> {
        match timeout {
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(ev) => Some(ev),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => Some(In::Eof),
            },
            None => match self.rx.try_recv() {
                Ok(ev) => Some(ev),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(In::Eof),
            },
        }
    }

    fn reliable(&self) -> bool {
        true
    }

    fn reconnect(&mut self) -> Result<(), Fx10Error> {
        Err(Fx10Error::Io {
            path: "<shard pipe>".into(),
            message: "pipes cannot reconnect".into(),
        })
    }

    fn set_fingerprint(&mut self, _fp: u64) {}
}

/// Options of a socket-mode worker (`fx10 shard-worker --connect`).
#[derive(Debug, Clone)]
pub struct NetWorkerOptions {
    /// The supervisor's listen address.
    pub addr: SocketAddr,
    /// This worker's shard slot (must be below the fleet's shard count).
    pub slot: u32,
    /// Shared handshake secret (empty = structural checks only).
    pub secret: Vec<u8>,
    /// Dial attempts allowed per disconnection (0 = try once, fail fast).
    pub reconnects: u32,
}

/// The socket transport: dials the supervisor, handshakes via
/// [`fx10_robust::conn`], and re-dials with decorrelated backoff when
/// the connection drops. Each connection gets a fresh reader thread and
/// channel; replacing the channel discards any stale events a dying
/// reader raced in.
struct NetLink {
    addr: SocketAddr,
    secret: Vec<u8>,
    slot: u32,
    /// Random per-process id: lets the supervisor tell a reconnecting
    /// process (keep the dedup window) from a respawn (reset it).
    boot_id: u64,
    fingerprint: u64,
    attempts: u32,
    rng: XorShift64,
    prev_backoff: Duration,
    stream: Option<TcpStream>,
    rx: Receiver<In>,
}

impl NetLink {
    fn connect(opts: &NetWorkerOptions) -> Result<NetLink, Fx10Error> {
        // Placeholder channel; `reconnect` installs the real one.
        let (_tx, rx) = channel();
        let mut link = NetLink {
            addr: opts.addr,
            secret: opts.secret.clone(),
            slot: opts.slot,
            boot_id: conn::fresh_nonce(),
            fingerprint: 0,
            attempts: opts.reconnects,
            rng: XorShift64::new(conn::fresh_nonce()),
            prev_backoff: Duration::ZERO,
            stream: None,
            rx,
        };
        link.reconnect()?;
        Ok(link)
    }
}

impl WorkerLink for NetLink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Fx10Error> {
        // A broken socket is not fatal: drop the frame, sever the
        // stream, and let the receive path drive a reconnect.
        if let Some(s) = &mut self.stream {
            if ipc::write_frame_bytes(s, frame).is_err() {
                let _ = s.shutdown(Shutdown::Both);
                self.stream = None;
            }
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Option<In> {
        let ev = match timeout {
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(ev) => Some(ev),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => Some(In::Eof),
            },
            None => match self.rx.try_recv() {
                Ok(ev) => Some(ev),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(In::Eof),
            },
        };
        match ev {
            // A send failure severed the stream; surface it as an EOF
            // even if the old reader thread is still winding down.
            None if self.stream.is_none() => Some(In::Eof),
            ev => ev,
        }
    }

    fn reliable(&self) -> bool {
        false
    }

    fn reconnect(&mut self) -> Result<(), Fx10Error> {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let hello = ipc::Hello {
            proto: ipc::PROTOCOL_VERSION,
            slot: self.slot,
            boot_id: self.boot_id,
            fingerprint: self.fingerprint,
        };
        let stream = conn::connect_with_retry(
            &self.addr,
            &self.secret,
            &hello,
            ipc::MAX_FRAME_LEN,
            self.attempts,
            &mut self.rng,
            &mut self.prev_backoff,
        )?;
        let reader = stream.try_clone().map_err(|e| Fx10Error::Io {
            path: self.addr.to_string(),
            message: e.to_string(),
        })?;
        let (tx, rx) = channel();
        thread::spawn(move || pump_frames(reader, tx, ipc::MAX_FRAME_LEN));
        self.rx = rx;
        self.stream = Some(stream);
        Ok(())
    }

    fn set_fingerprint(&mut self, fp: u64) {
        self.fingerprint = fp;
    }
}

struct Worker {
    p: Program,
    it: Interner,
    dig: StateDigests,
    normalize: bool,
    shards: u32,
    owned: Vec<bool>,
    visited: HashSet<u64>,
    frontier: VecDeque<u64>,
    terminals: u64,
    deadlock_free: bool,
    /// Digests already forwarded to a remote owner (resend suppression —
    /// receivers dedup anyway, this just saves frames).
    emitted: HashSet<u64>,
    /// Per-shard outgoing state keys, flushed as `BATCH` frames.
    outbox: Vec<Vec<u64>>,
    /// Frame seqs processed since the last checkpoint; acked only once
    /// a checkpoint has made their effects durable.
    pending_ack: Vec<u64>,
    processed: u64,
    since_ckpt: u64,
    ckpt_path: PathBuf,
    ckpt_every: u64,
    ckpt_count: u32,
    fingerprint: u64,
    collect: bool,
    chaos: ShardChaos,
    expanded: u64,
    out_seq: u64,
    finished: bool,
    seed: (ArrayId, TreeId),
    /// Does the link guarantee delivery? Pipes do; sockets under chaos
    /// do not, which switches on the worker-side ARQ below.
    reliable: bool,
    /// Supervisor work-frame seqs already applied — the socket
    /// redelivery dedup window (a retransmitted `BATCH`/`ADOPT` is
    /// re-acked but never re-processed, so `processed` stays in step
    /// with the supervisor's `sent`).
    seen_seqs: HashSet<u64>,
    /// Batch frames sent but not yet acked by the supervisor, retained
    /// verbatim for retransmission on lossy links.
    sent_unacked: Vec<(u64, Vec<u8>)>,
    /// Encoded `RESULT` body, computed once per finish round. A large
    /// collected result (hundreds of thousands of renders) costs whole
    /// seconds to build; a retransmitted `FINISH` must re-send bytes,
    /// not redo that work, or the duplicates queue up faster than they
    /// can be answered. Invalidated by any frame that adds work.
    result_body: Option<Vec<u8>>,
}

impl Worker {
    fn new(init: ShardInit) -> Result<Worker, Fx10Error> {
        let p = Program::parse(&init.program).map_err(|e| Fx10Error::Snapshot {
            message: format!("INIT carried an unparsable program: {e}"),
        })?;
        let config = ExploreConfig {
            canonical_dedup: init.canonical_dedup,
            normalize_admin: init.normalize_admin,
            ..ExploreConfig::default()
        };
        let fp = fingerprint(&p, &init.input, &config);
        let it = Interner::new(init.canonical_dedup);
        let a0 = it.intern_array(ArrayState::with_input(&p, &init.input).cells().to_vec());
        let mut t0 = it.intern_tree(&initial_tree(&p));
        if init.normalize_admin {
            t0 = it.normalized(t0);
        }
        let mut owned = vec![false; init.shards as usize];
        for &s in &init.owned {
            if let Some(o) = owned.get_mut(s as usize) {
                *o = true;
            }
        }
        Ok(Worker {
            p,
            it,
            dig: StateDigests::new(),
            normalize: init.normalize_admin,
            shards: init.shards,
            owned,
            visited: HashSet::new(),
            frontier: VecDeque::new(),
            terminals: 0,
            deadlock_free: true,
            emitted: HashSet::new(),
            outbox: vec![Vec::new(); init.shards as usize],
            pending_ack: Vec::new(),
            processed: 0,
            since_ckpt: 0,
            ckpt_path: PathBuf::from(&init.ckpt_path),
            ckpt_every: init.ckpt_every,
            ckpt_count: 0,
            fingerprint: fp,
            collect: init.collect,
            chaos: init.chaos,
            expanded: 0,
            out_seq: 0,
            finished: false,
            seed: (a0, t0),
            reliable: true,
            seen_seqs: HashSet::new(),
            sent_unacked: Vec::new(),
            result_body: None,
        })
    }

    /// Inserts a state into the visited set; counts terminals at
    /// insertion (replay-idempotent — see the module docs) and queues
    /// non-terminal states for expansion.
    fn admit(&mut self, key: u64) {
        if self.visited.insert(key) {
            self.since_ckpt += 1;
            let (_, t) = state_parts(key);
            if t == DONE {
                self.terminals += 1;
            } else {
                self.frontier.push_back(key);
            }
        }
    }

    /// Routes a successor: admit locally if its digest lands in an
    /// owned shard, otherwise stage it for its owner.
    fn route(&mut self, a: ArrayId, t: TreeId) {
        let d = self.dig.state_digest(&self.it, a, t);
        let s = shard_of(d, self.shards);
        if self.owned[s as usize] {
            self.admit(state_key(a, t));
        } else if self.emitted.insert(d) {
            self.outbox[s as usize].push(state_key(a, t));
        }
    }

    /// Re-derives the initial state and admits it if this worker now
    /// owns its shard. Called on `INIT` and after every `ADOPT` — the
    /// seed's original owner may have died before its first checkpoint,
    /// and this is the only frame-free way the seed can re-enter the
    /// system.
    fn reseed(&mut self) {
        let (a0, t0) = self.seed;
        let d = self.dig.state_digest(&self.it, a0, t0);
        if self.owned[shard_of(d, self.shards) as usize] {
            self.admit(state_key(a0, t0));
        }
    }

    /// Re-interns a snapshot (checkpoint or batch) into this worker.
    /// `carry_verdict` is set for checkpoints (own resume or an adopted
    /// dead shard's), whose `deadlock_free` flag is part of the answer.
    fn import(&mut self, bytes: &[u8], carry_verdict: bool) -> Result<(), Fx10Error> {
        let snap = ExplorerSnapshot::from_bytes(bytes).map_err(Fx10Error::from)?;
        if snap.fingerprint != self.fingerprint {
            return Err(Fx10Error::Snapshot {
                message: format!(
                    "snapshot fingerprint {:016x} does not match this run ({:016x})",
                    snap.fingerprint, self.fingerprint
                ),
            });
        }
        let (_, tmap, amap) = snap.restore(&self.it);
        if carry_verdict {
            self.deadlock_free &= snap.deadlock_free;
        }
        let queued: HashSet<u64> = snap.frontier.iter().copied().collect();
        for &k in &snap.visited {
            let (a, t) = state_parts(k);
            let key = state_key(ArrayId(amap[a.0 as usize]), TreeId(tmap[t.0 as usize]));
            if queued.contains(&k) {
                self.admit(key);
            } else if self.visited.insert(key) {
                // Already-expanded state: record it (and its terminal
                // status) without queueing it for re-expansion.
                self.since_ckpt += 1;
                if TreeId(tmap[t.0 as usize]) == DONE {
                    self.terminals += 1;
                }
            }
        }
        Ok(())
    }

    /// Writes one frame through the link (the link flushes — frames are
    /// the heartbeat channel, and a buffered frame looks like a stall).
    /// `BATCH` frames on a lossy link are retained verbatim until the
    /// supervisor acks their sequence number.
    fn send<L: WorkerLink>(
        &mut self,
        link: &mut L,
        kind_: u32,
        body: Vec<u8>,
    ) -> Result<(), Fx10Error> {
        self.out_seq += 1;
        let frame = WireMsg::new(kind_, self.out_seq, body).frame();
        if kind_ == kind::BATCH && !self.reliable {
            self.sent_unacked.push((self.out_seq, frame.clone()));
        }
        link.send_frame(&frame)
    }

    /// Re-sends every unacked batch frame verbatim (same seqs — the
    /// supervisor's dedup window absorbs redundant deliveries).
    fn retransmit<L: WorkerLink>(&mut self, link: &mut L) -> Result<(), Fx10Error> {
        for (_, frame) in &self.sent_unacked {
            link.send_frame(frame)?;
        }
        Ok(())
    }

    /// Flushes outboxes as `BATCH` frames — all of them, or only those
    /// past the batching threshold.
    fn flush_outboxes<L: WorkerLink>(
        &mut self,
        link: &mut L,
        only_full: bool,
    ) -> Result<(), Fx10Error> {
        for s in 0..self.outbox.len() {
            let n = self.outbox[s].len();
            if n == 0 || (only_full && n < BATCH_FLUSH) {
                continue;
            }
            let keys = std::mem::take(&mut self.outbox[s]);
            let snap = ExplorerSnapshot::capture_batch(&self.it, self.fingerprint, &keys);
            let body = ipc::batch_body(s as u32, &snap.to_bytes());
            self.send(link, kind::BATCH, body)?;
        }
        Ok(())
    }

    fn outboxes_empty(&self) -> bool {
        self.outbox.iter().all(|o| o.is_empty())
    }

    /// Is this worker quiescent from the supervisor's point of view?
    /// On a lossy link an unacked batch may still be *lost*, so idleness
    /// additionally requires the retransmission buffer to be empty.
    fn idle(&self) -> bool {
        self.frontier.is_empty()
            && self.outboxes_empty()
            && (self.reliable || self.sent_unacked.is_empty())
    }

    /// Durably checkpoints and only then acks the frames the checkpoint
    /// covers. Ordering is the crash-safety story: outboxes drain first
    /// (invariant 1), the save is atomic, and acks release supervisor
    /// retention last (invariant 2). The kill-chaos hook fires *between*
    /// save and ack — the nastiest window a real crash can hit.
    fn checkpoint<L: WorkerLink>(&mut self, link: &mut L) -> Result<(), Fx10Error> {
        self.flush_outboxes(link, false)?;
        // Ack-only fast path (lossy links): when nothing has been
        // inserted since the last durable save, every state the pending
        // acks cover is already on disk, and re-saving an identical
        // visited set per deduped redelivery would turn a retransmission
        // burst into a disk-write storm. Pipe mode keeps the
        // unconditional save so the chaos hooks' checkpoint counting is
        // unchanged.
        let save = self.reliable || self.since_ckpt > 0 || self.ckpt_count == 0;
        if save {
            let visited: Vec<u64> = self.visited.iter().copied().collect();
            let frontier: Vec<u64> = self.frontier.iter().copied().collect();
            let snap = ExplorerSnapshot::capture(
                &self.it,
                self.fingerprint,
                self.terminals,
                self.deadlock_free,
                0,
                visited,
                frontier,
            );
            snap.save(&self.ckpt_path)?;
            self.since_ckpt = 0;
            self.ckpt_count += 1;
        }
        if save
            && self
                .chaos
                .kill_after_ckpt
                .is_some_and(|n| self.ckpt_count >= n)
        {
            // Simulated SIGKILL: checkpoint written, acks not sent.
            std::process::exit(9);
        }
        if !self.pending_ack.is_empty() {
            let acks = std::mem::take(&mut self.pending_ack);
            self.send(link, kind::ACK, ipc::ack_body(&acks))?;
        }
        Ok(())
    }

    /// Expands up to [`SLICE`] frontier states.
    fn expand_slice(&mut self) {
        let mut succ: Vec<(ArrayId, TreeId)> = Vec::new();
        for _ in 0..SLICE {
            let Some(key) = self.frontier.pop_front() else {
                break;
            };
            let (a, t) = state_parts(key);
            succ.clear();
            self.it.successors(&self.p, a, t, &mut succ);
            self.expanded += 1;
            if succ.is_empty() {
                // `√` is never queued, so an empty successor set is a
                // stuck non-terminal state: Theorem 1 fails here.
                self.deadlock_free = false;
                continue;
            }
            for &(na, nt) in &succ {
                let nt = if self.normalize {
                    self.it.normalized(nt)
                } else {
                    nt
                };
                self.route(na, nt);
            }
        }
    }

    /// Sends a `PROGRESS` frame — the heartbeat the supervisor's
    /// connection supervision and wedge detection listen for.
    fn heartbeat<L: WorkerLink>(&mut self, link: &mut L) -> Result<(), Fx10Error> {
        let p = ipc::Progress {
            visited: self.visited.len() as u64,
            processed: self.processed,
            idle: self.idle(),
        };
        self.send(link, kind::PROGRESS, ipc::progress_body(&p))
    }

    /// One shard's share of the answer. Collecting renders for a large
    /// visited set takes whole seconds, so the render loop interleaves
    /// `PROGRESS` heartbeats — without them the supervisor reads the
    /// busy stretch as a dead connection (and then a wedged process)
    /// and kills a healthy worker mid-answer.
    fn collect_result<L: WorkerLink>(&mut self, link: &mut L) -> Result<ShardResult, Fx10Error> {
        let trees: HashSet<TreeId> = self.visited.iter().map(|&k| state_parts(k).1).collect();
        let pairs = self
            .it
            .parallel_of_trees(trees)
            .into_iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        self.heartbeat(link)?;
        let renders = if self.collect {
            let keys: Vec<u64> = self.visited.iter().copied().collect();
            let mut out = Vec::with_capacity(keys.len());
            let mut last_beat = Instant::now();
            for chunk in keys.chunks(RENDER_CHUNK) {
                for &k in chunk {
                    let (a, t) = state_parts(k);
                    out.push(self.it.render_state(a, t));
                }
                if last_beat.elapsed() >= PROGRESS_EVERY {
                    last_beat = Instant::now();
                    self.heartbeat(link)?;
                }
            }
            out
        } else {
            Vec::new()
        };
        self.heartbeat(link)?;
        Ok(ShardResult {
            visited: self.visited.len() as u64,
            terminals: self.terminals,
            deadlock_free: self.deadlock_free,
            pairs,
            renders,
        })
    }

    /// Handles one supervisor frame.
    fn handle<L: WorkerLink>(&mut self, m: WireMsg, link: &mut L) -> Result<(), Fx10Error> {
        if matches!(m.kind, kind::BATCH | kind::ADOPT) && !self.seen_seqs.insert(m.seq) {
            // A socket redelivery of a work frame already applied: its
            // original ack may have been lost, so re-stage the ack, but
            // skip the work (and the `processed` bump — the supervisor
            // counted this frame once).
            self.pending_ack.push(m.seq);
            return Ok(());
        }
        match m.kind {
            kind::BATCH => {
                let payload = ipc::batch_payload(&m.body)?;
                self.import(payload, false)?;
                self.pending_ack.push(m.seq);
                self.processed += 1;
                self.result_body = None;
            }
            kind::ADOPT => {
                let (shards, ckpt) = ipc::parse_adopt_body(&m.body)?;
                for s in shards {
                    if let Some(o) = self.owned.get_mut(s as usize) {
                        *o = true;
                    }
                }
                if let Some(bytes) = ckpt {
                    self.import(&bytes, true)?;
                }
                self.reseed();
                self.pending_ack.push(m.seq);
                self.processed += 1;
                // Adoption reopens the exploration: a `FINISH` may
                // already have collected our result, but the supervisor
                // re-runs the finish round after any migration.
                self.finished = false;
                self.result_body = None;
            }
            kind::PROBE => {
                let token = ipc::parse_probe_body(&m.body)?;
                // Quiescence protocol: everything staged must be on the
                // wire before we claim idleness (FIFO pipes then make
                // the supervisor see those batches before this reply).
                self.flush_outboxes(link, false)?;
                let idle = self.idle();
                self.send(
                    link,
                    kind::PROBE_REPLY,
                    ipc::probe_reply_body(token, self.processed, idle),
                )?;
            }
            kind::FINISH => {
                // A retransmitted FINISH (lost RESULT) re-sends the
                // cached bytes — the supervisor keeps the last copy.
                self.flush_outboxes(link, false)?;
                if self.result_body.is_none() {
                    let r = self.collect_result(link)?;
                    self.result_body = Some(encode_result(&r));
                }
                // Stream the result as bounded RESULT_PART frames: a
                // collected result can dwarf the frame cap, and one
                // monster frame reads as worker silence (and then a
                // heartbeat drop) for its entire transfer.
                let body = self.result_body.clone().expect("just cached");
                let total = body.chunks(ipc::RESULT_PART_LEN).count().max(1) as u32;
                if body.is_empty() {
                    self.send(link, kind::RESULT_PART, ipc::result_part_body(0, 1, &[]))?;
                } else {
                    for (i, chunk) in body.chunks(ipc::RESULT_PART_LEN).enumerate() {
                        self.send(
                            link,
                            kind::RESULT_PART,
                            ipc::result_part_body(i as u32, total, chunk),
                        )?;
                    }
                }
                self.finished = true;
            }
            kind::ACK => match ipc::parse_ack_body(&m.body) {
                Ok(seqs) => self.sent_unacked.retain(|(s, _)| !seqs.contains(s)),
                Err(e) => {
                    return Err(Fx10Error::Snapshot {
                        message: format!("malformed ack from supervisor: {e}"),
                    })
                }
            },
            kind::INIT | kind::HELLO | kind::PROGRESS | kind::PROBE_REPLY | kind::RESULT => {
                // Duplicate INIT or echoed traffic: ignore rather than
                // die — the supervisor is the arbiter of liveness.
            }
            _ => {
                return Err(Fx10Error::Snapshot {
                    message: format!("unexpected frame kind {} from supervisor", m.kind),
                })
            }
        }
        Ok(())
    }
}

/// Goes silent forever (the wedge-chaos mode). The supervisor's stall
/// detector is responsible for killing this process.
fn wedge() -> ! {
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

/// The `fx10 shard-worker` event loop: speak [`ipc`] frames on
/// `input`/`output` under a [`ShardSupervisor`]'s direction until the
/// supervisor closes our stdin.
///
/// Protocol: send `HELLO`, wait for `INIT` (15 s grace by default — this
/// subcommand is not meant to be run by hand), then interleave frontier
/// expansion with frame handling. Exits `Ok` on clean EOF; any protocol
/// or I/O error propagates (the supervisor treats worker death as a
/// restartable fault).
pub fn shard_worker_main<R>(input: R, output: impl Write) -> Result<(), Fx10Error>
where
    R: Read + Send + 'static,
{
    let mut link = PipeLink::spawn(input, output);
    worker_run(&mut link)
}

/// The socket-mode worker entry behind `fx10 shard-worker --connect`:
/// dial the supervisor, handshake, and run the same event loop as the
/// pipe worker, reconnecting with decorrelated backoff whenever the
/// connection drops. A handshake `REJECT` (bad secret, protocol skew,
/// foreign fingerprint) is fatal and never retried.
pub fn shard_worker_net(opts: &NetWorkerOptions) -> Result<(), Fx10Error> {
    let mut link = NetLink::connect(opts)?;
    worker_run(&mut link)
}

/// Classifies a link failure: handshake verdicts are deterministic and
/// fatal; on a reconnectable link everything else is worth a re-dial.
fn recoverable<L: WorkerLink>(link: &L, e: &Fx10Error) -> bool {
    !link.reliable() && !matches!(e, Fx10Error::Handshake { .. })
}

/// Re-establishes a dropped socket link and replays this worker's side
/// of the resume protocol: the supervisor re-sends `INIT` plus its
/// unacked frames on attach, and we re-send ours — sequence-number
/// dedup on both sides absorbs the overlap without double-counting.
fn recover<L: WorkerLink>(w: &mut Worker, link: &mut L) -> Result<(), Fx10Error> {
    link.reconnect()?;
    w.retransmit(link)
}

/// The worker event loop over any [`WorkerLink`]: `HELLO`, wait for
/// `INIT`, then interleave frontier expansion with frame handling.
fn worker_run<L: WorkerLink>(link: &mut L) -> Result<(), Fx10Error> {
    link.send_frame(&WireMsg::new(kind::HELLO, 0, Vec::new()).frame())?;

    // The 15 s grace covers a supervisor that is slow to INIT (e.g. a
    // loaded CI box); tests shrink it via FX10_SHARD_INIT_TIMEOUT_MS so
    // the run-by-hand diagnostic can be exercised without the wait.
    let init_grace = std::env::var("FX10_SHARD_INIT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_secs(15), Duration::from_millis);
    let init_deadline = Instant::now() + init_grace;
    let init = loop {
        let left = init_deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(Fx10Error::Snapshot {
                message: "no INIT from the supervisor — `fx10 shard-worker` is spawned \
                          by `fx10 explore --shards`, not run by hand"
                    .into(),
            });
        }
        match link.recv(Some(left.min(Duration::from_millis(100)))) {
            Some(In::Msg(m)) if m.kind == kind::INIT => break decode_init(&m.body)?,
            Some(In::Msg(_)) => continue,
            Some(In::Eof) => {
                if link.reliable() {
                    return Ok(());
                }
                link.reconnect()?;
            }
            Some(In::Fail(e)) => {
                if !recoverable(link, &e) {
                    return Err(e);
                }
                link.reconnect()?;
            }
            None => continue,
        }
    };

    let mut w = Worker::new(init)?;
    w.reliable = link.reliable();
    link.set_fingerprint(w.fingerprint);
    // Restart path: resume from our own durable checkpoint. The
    // supervisor replays every unacked frame after INIT, and dedup
    // absorbs the overlap.
    if w.ckpt_path.exists() {
        let snap = ExplorerSnapshot::load(&w.ckpt_path)?;
        w.import(&snap.to_bytes(), true)?;
    }
    w.reseed();

    let mut last_progress = Instant::now();
    let mut first_progress = true;
    let mut last_retx = Instant::now();
    loop {
        if w.chaos.wedge_after_states.is_some_and(|n| w.expanded >= n) {
            wedge();
        }
        let timeout = if w.frontier.is_empty() || !w.pending_ack.is_empty() {
            Some(Duration::from_millis(20))
        } else {
            None
        };
        match link.recv(timeout) {
            Some(In::Msg(m)) => w.handle(m, link)?,
            Some(In::Eof) => {
                if link.reliable() {
                    return Ok(());
                }
                // The supervisor dropped us (heartbeat expiry, chaos, or
                // its own restart): dial back in and resume. If it is
                // gone for good the dial budget turns this into an exit —
                // a quiet one after FINISH, when a hangup is simply the
                // supervisor leaving with the results (a live supervisor
                // that still wants them keeps the redial path working).
                if let Err(e) = recover(&mut w, link) {
                    return if w.finished { Ok(()) } else { Err(e) };
                }
            }
            Some(In::Fail(e)) => {
                if !recoverable(link, &e) {
                    return Err(e);
                }
                if let Err(e) = recover(&mut w, link) {
                    return if w.finished { Ok(()) } else { Err(e) };
                }
            }
            None => {}
        }

        if !w.finished {
            w.expand_slice();
            w.flush_outboxes(link, true)?;
            if w.ckpt_every > 0 && w.since_ckpt >= w.ckpt_every {
                w.checkpoint(link)?;
            }
            if w.frontier.is_empty() {
                w.flush_outboxes(link, false)?;
                if !w.pending_ack.is_empty() || w.since_ckpt > 0 {
                    w.checkpoint(link)?;
                }
            }
        }

        // Lossy-link ARQ: periodically re-send batches the supervisor
        // has not acked (the original, or its ack, may have been lost).
        if !w.reliable && !w.sent_unacked.is_empty() && last_retx.elapsed() >= RETRANSMIT_EVERY {
            last_retx = Instant::now();
            w.retransmit(link)?;
        }

        if first_progress || last_progress.elapsed() >= PROGRESS_EVERY {
            first_progress = false;
            last_progress = Instant::now();
            w.heartbeat(link)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Parent-side orchestration
// ---------------------------------------------------------------------------

/// Configuration of a sharded exploration run.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Worker-process count (= shard count at launch).
    pub shards: usize,
    /// Executable to spawn for each worker (normally
    /// `std::env::current_exe()`).
    pub worker_exe: PathBuf,
    /// Arguments selecting the worker mode (normally
    /// `["shard-worker"]`).
    pub worker_args: Vec<String>,
    /// Directory for the per-slot durable checkpoints. Pre-existing
    /// `shard-*.fxsnap` files in it are removed before the run.
    pub ckpt_dir: PathBuf,
    /// Worker checkpoint cadence in newly inserted states.
    pub ckpt_every: u64,
    /// Restart budget and backoff.
    pub policy: RestartPolicy,
    /// Wedge detection threshold.
    pub stall_after: Duration,
    /// Supervisor poll interval.
    pub poll: Duration,
    /// Wall-clock budget for the whole fleet.
    pub deadline: Option<Duration>,
    /// Collect canonical state renderings (the differential hook).
    pub collect: bool,
    /// Kill worker `k` abruptly after its n-th checkpoint
    /// (`(k, n)`, first incarnation only).
    pub chaos_kill: Option<(u32, u32)>,
    /// Wedge worker `k` after it expands n states
    /// (`(k, n)`, first incarnation only).
    pub chaos_wedge: Option<(u32, u64)>,
    /// Listen address for socket-mode workers (`None` = stdio pipes).
    /// Bind to port 0 to let the OS pick; the actual address is printed
    /// to stderr as `shards: listening on ADDR`.
    pub listen: Option<SocketAddr>,
    /// File holding the shared handshake secret (socket mode; trailing
    /// newlines are stripped). `None` = structural checks only.
    pub secret_file: Option<PathBuf>,
    /// Reconnect budget per disconnection, on both sides of the link:
    /// worker dial attempts, and supervisor-tolerated connection drops
    /// per worker incarnation.
    pub reconnects: u32,
    /// Deterministic network-fault injection (socket mode; tests/CI).
    pub net_chaos: NetChaos,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 2,
            worker_exe: PathBuf::new(),
            worker_args: vec!["shard-worker".into()],
            ckpt_dir: std::env::temp_dir(),
            ckpt_every: 1024,
            policy: RestartPolicy::default(),
            stall_after: Duration::from_secs(10),
            poll: Duration::from_millis(20),
            deadline: None,
            collect: false,
            chaos_kill: None,
            chaos_wedge: None,
            listen: None,
            secret_file: None,
            reconnects: 5,
            net_chaos: NetChaos::default(),
        }
    }
}

/// What the supervision layer did to produce an answer — the provenance
/// the ladder stamps into its `SupervisedAnswer`.
#[derive(Debug, Clone, Default)]
pub struct ShardProvenance {
    /// Supervision events in order (restarts, migrations, quiescence).
    pub events: Vec<String>,
    /// Worker restarts performed.
    pub restarts: u32,
    /// Shard migrations performed.
    pub migrations: u32,
}

/// Explores `p` across `opts.shards` worker processes and merges the
/// per-shard answers.
///
/// The merge is lossless because shard ownership partitions the visited
/// set: `visited`/`terminals` add, `deadlock_free` conjoins, MHP and
/// the rendered digest set union. Errors (`Cancelled`, deadline,
/// `WorkerPanicked` after the restart budget and migration are both
/// exhausted) propagate to the caller, which is expected to descend the
/// degradation ladder.
pub fn explore_sharded(
    p: &Program,
    input: &[i64],
    config: &ExploreConfig,
    opts: &ShardedOptions,
    cancel: &CancelToken,
) -> Result<(Exploration, ShardProvenance), Fx10Error> {
    std::fs::create_dir_all(&opts.ckpt_dir).map_err(|e| Fx10Error::Io {
        path: opts.ckpt_dir.display().to_string(),
        message: e.to_string(),
    })?;
    let slot_ckpt = |slot: usize| opts.ckpt_dir.join(format!("shard-{slot}.fxsnap"));
    for slot in 0..opts.shards {
        // Stale checkpoints from a previous run must not leak into this
        // one (a same-fingerprint leftover would silently pre-seed it).
        let _ = std::fs::remove_file(slot_ckpt(slot));
    }

    let sup = ShardSupervisor {
        shards: opts.shards,
        policy: opts.policy,
        stall_after: opts.stall_after,
        poll: opts.poll,
        deadline: opts.deadline,
        progress_cap: Some(config.max_states as u64),
        max_frame: ipc::MAX_FRAME_LEN,
    };
    let program_text = fx10_syntax::pretty::program(p);
    let io_err = |path: String| move |e: std::io::Error| Fx10Error::Io {
        path,
        message: e.to_string(),
    };
    let mut net_addr: Option<SocketAddr> = None;
    let link = match opts.listen {
        Some(bind) => {
            let listener = TcpListener::bind(bind).map_err(io_err(bind.to_string()))?;
            let addr = listener.local_addr().map_err(io_err(bind.to_string()))?;
            // Live, unbuffered: operators (and tests) binding port 0
            // read the actual port back off this stderr line.
            eprintln!("shards: listening on {addr}");
            net_addr = Some(addr);
            let secret = match &opts.secret_file {
                Some(path) => {
                    let mut s =
                        std::fs::read(path).map_err(io_err(path.display().to_string()))?;
                    while s.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
                        s.pop();
                    }
                    s
                }
                None => Vec::new(),
            };
            FleetLink::Tcp {
                listener,
                cfg: TcpLinkConfig {
                    secret,
                    // The worker re-derives this from the INIT it
                    // receives (re-parsing the pretty-printed program),
                    // and the handshake rejects any mismatch.
                    fingerprint: fingerprint(p, input, config),
                    // Strictly inside the stall window: a silent
                    // connection gets dropped (and redialed) well
                    // before the process-level wedge detector fires.
                    heartbeat_timeout: (opts.stall_after / 3).max(Duration::from_millis(300)),
                    retransmit_after: Duration::from_millis(250),
                    max_reconnects: opts.reconnects,
                    chaos: opts.net_chaos,
                },
            }
        }
        None => FleetLink::Pipes,
    };
    let report = sup.run_linked(
        cancel,
        link,
        |slot| {
            let mut c = Command::new(&opts.worker_exe);
            c.args(&opts.worker_args);
            if let Some(addr) = net_addr {
                c.arg("--connect").arg(addr.to_string());
                c.arg("--slot").arg(slot.to_string());
                c.arg("--reconnects").arg(opts.reconnects.to_string());
                if let Some(f) = &opts.secret_file {
                    c.arg("--secret-file").arg(f);
                }
            }
            c
        },
        |slot, attempt, owned| {
            let first = attempt == 0;
            encode_init(&ShardInit {
                program: program_text.clone(),
                input: input.to_vec(),
                canonical_dedup: config.canonical_dedup,
                normalize_admin: config.normalize_admin,
                shards: opts.shards as u32,
                slot: slot as u32,
                attempt,
                owned: owned.to_vec(),
                ckpt_path: slot_ckpt(slot).to_string_lossy().into_owned(),
                ckpt_every: opts.ckpt_every,
                collect: opts.collect,
                chaos: ShardChaos {
                    kill_after_ckpt: opts
                        .chaos_kill
                        .filter(|&(k, _)| first && k as usize == slot)
                        .map(|(_, n)| n),
                    wedge_after_states: opts
                        .chaos_wedge
                        .filter(|&(k, _)| first && k as usize == slot)
                        .map(|(_, n)| n),
                },
            })
        },
        |slot| Some(slot_ckpt(slot)),
    )?;

    let mut visited = 0u64;
    let mut terminals = 0u64;
    let mut deadlock_free = true;
    let mut mhp: BTreeSet<(Label, Label)> = BTreeSet::new();
    let mut renders: BTreeSet<String> = BTreeSet::new();
    for body in report.results.iter().flatten() {
        let r = decode_result(body).map_err(Fx10Error::from)?;
        visited += r.visited;
        terminals += r.terminals;
        deadlock_free &= r.deadlock_free;
        mhp.extend(r.pairs.iter().map(|&(a, b)| (Label(a), Label(b))));
        renders.extend(r.renders);
    }
    let exploration = Exploration {
        visited: visited as usize,
        truncated: report.truncated,
        exhausted: report.truncated.then_some(Exhaustion::States),
        mhp,
        deadlock_free,
        terminals: terminals as usize,
        state_digests: opts.collect.then_some(renders),
    };
    Ok((
        exploration,
        ShardProvenance {
            events: report.events,
            restarts: report.restarts,
            migrations: report.migrations,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::examples;

    fn digest_all(p: &Program) -> BTreeSet<u64> {
        // Explore the whole space in one interner and digest every
        // state.
        let it = Interner::new(true);
        let a0 = it.intern_array(ArrayState::with_input(p, &[]).cells().to_vec());
        let t0 = it.intern_tree(&initial_tree(p));
        let mut dig = StateDigests::new();
        let mut seen = HashSet::new();
        let mut work = vec![(a0, t0)];
        let mut out = BTreeSet::new();
        let mut succ = Vec::new();
        while let Some((a, t)) = work.pop() {
            if !seen.insert(state_key(a, t)) {
                continue;
            }
            out.insert(dig.state_digest(&it, a, t));
            succ.clear();
            it.successors(p, a, t, &mut succ);
            work.extend(succ.iter().copied());
        }
        out
    }

    #[test]
    fn digests_are_interner_independent() {
        // Two interners visiting the same space in opposite orders
        // assign different ids but must agree on every digest.
        let p = examples::example_2_1();
        let a = digest_all(&p);
        let it = Interner::new(true);
        // Intern a few unrelated things first to shift all ids.
        it.intern_array(vec![9, 9, 9]);
        it.intern_tree(&initial_tree(&examples::example_2_2()));
        let a0 = it.intern_array(ArrayState::with_input(&p, &[]).cells().to_vec());
        let t0 = it.intern_tree(&initial_tree(&p));
        let mut dig = StateDigests::new();
        let mut seen = HashSet::new();
        let mut work = vec![(a0, t0)];
        let mut b = BTreeSet::new();
        let mut succ = Vec::new();
        while let Some((aid, tid)) = work.pop() {
            if !seen.insert(state_key(aid, tid)) {
                continue;
            }
            b.insert(dig.state_digest(&it, aid, tid));
            succ.clear();
            it.successors(&p, aid, tid, &mut succ);
            // Reverse order: different interning sequence.
            work.extend(succ.iter().rev().copied());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn shard_of_partitions_the_digest_space() {
        assert_eq!(shard_of(0, 1), 0);
        assert_eq!(shard_of(u64::MAX, 1), 0);
        for n in [2u32, 3, 4, 7] {
            assert_eq!(shard_of(0, n), 0);
            assert_eq!(shard_of(u64::MAX, n), n - 1);
            // Monotone in the digest: ranges, not residues.
            let mut last = 0;
            for i in 0..1000u64 {
                let s = shard_of(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), n);
                assert!(s < n);
                let _ = last;
                last = s;
            }
        }
        let p = examples::example_2_1();
        let digests = digest_all(&p);
        let n = 4;
        let mut buckets = vec![0usize; n as usize];
        for &d in &digests {
            buckets[shard_of(d, n) as usize] += 1;
        }
        assert_eq!(buckets.iter().sum::<usize>(), digests.len());
    }

    #[test]
    fn init_roundtrip() {
        let init = ShardInit {
            program: "x0 := 0;".into(),
            input: vec![1, -2, 3],
            canonical_dedup: true,
            normalize_admin: false,
            shards: 4,
            slot: 2,
            attempt: 1,
            owned: vec![2, 3],
            ckpt_path: "/tmp/shard-2.fxsnap".into(),
            ckpt_every: 512,
            collect: true,
            chaos: ShardChaos {
                kill_after_ckpt: Some(3),
                wedge_after_states: None,
            },
        };
        let bytes = encode_init(&init);
        assert_eq!(decode_init(&bytes).unwrap(), init);
        // Any corruption is a typed error, never a panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let _ = decode_init(&bad);
            let _ = decode_init(&bytes[..i]);
        }
    }

    #[test]
    fn result_roundtrip() {
        let r = ShardResult {
            visited: 10,
            terminals: 2,
            deadlock_free: false,
            pairs: vec![(1, 2), (3, 3)],
            renders: vec!["[0] ⊢ √".into(), "[1] ⊢ ⟨2⟩".into()],
        };
        let bytes = encode_result(&r);
        assert_eq!(decode_result(&bytes).unwrap(), r);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let _ = decode_result(&bad);
        }
        // A lying count must not cause an OOM-sized allocation.
        let huge = {
            let mut b = SectionBuf::new();
            b.put_u64(0);
            b.put_u64(0);
            b.put_u8(1);
            b.put_usize(usize::MAX / 2);
            let mut w = SnapshotWriter::new();
            w.add_section(SEC_RESULT, b);
            w.finish()
        };
        assert!(decode_result(&huge).is_err());
    }

    #[test]
    fn batch_capture_restores_identical_renders() {
        // capture_batch → to_bytes → from_bytes → restore into a fresh
        // interner must preserve the rendered identity of every state.
        let p = examples::example_2_1();
        let it = Interner::new(true);
        let a0 = it.intern_array(ArrayState::with_input(&p, &[]).cells().to_vec());
        let t0 = it.intern_tree(&initial_tree(&p));
        let mut keys = vec![state_key(a0, t0)];
        let mut succ = Vec::new();
        it.successors(&p, a0, t0, &mut succ);
        keys.extend(succ.iter().map(|&(a, t)| state_key(a, t)));
        let snap = ExplorerSnapshot::capture_batch(&it, 42, &keys);
        let snap = ExplorerSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        let other = Interner::new(true);
        let (_, tmap, amap) = snap.restore(&other);
        let want: BTreeSet<String> = keys
            .iter()
            .map(|&k| {
                let (a, t) = state_parts(k);
                it.render_state(a, t)
            })
            .collect();
        let got: BTreeSet<String> = snap
            .visited
            .iter()
            .map(|&k| {
                let (a, t) = state_parts(k);
                other.render_state(ArrayId(amap[a.0 as usize]), TreeId(tmap[t.0 as usize]))
            })
            .collect();
        assert_eq!(want, got);
    }
}
