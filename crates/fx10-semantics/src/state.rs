//! The shared-array state `A`.
//!
//! The paper models memory as a single final one-dimensional integer array
//! `a`; `A` maps indices to integers, is fully initialized when execution
//! begins, and (if the program terminates) the result is read from `a[0]`
//! (§3.2).

use fx10_syntax::{Expr, Program};

/// The state of the array `a`: a total map from indices to integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayState {
    cells: Vec<i64>,
}

impl ArrayState {
    /// The all-zero initial state sized for `p` (`n = p.array_len()`).
    pub fn zeros(p: &Program) -> ArrayState {
        ArrayState {
            cells: vec![0; p.array_len()],
        }
    }

    /// An initial state with the given input values; padded with zeros (or
    /// truncated) to `p.array_len()` so every index the program mentions
    /// is initialized, as the paper requires.
    pub fn with_input(p: &Program, input: &[i64]) -> ArrayState {
        let mut cells = input.to_vec();
        cells.resize(p.array_len().max(cells.len()), 0);
        ArrayState { cells }
    }

    /// `A(d)`.
    #[inline]
    pub fn get(&self, d: usize) -> i64 {
        self.cells[d]
    }

    /// `A[d := v]` in place.
    #[inline]
    pub fn set(&mut self, d: usize, v: i64) {
        self.cells[d] = v;
    }

    /// `A(e)`: `A(c) = c` and `A(a[d] + 1) = A(d) + 1`.
    ///
    /// Addition wraps on overflow: FX10 models unbounded naturals, but a
    /// runaway counter must not abort the host interpreter.
    #[inline]
    pub fn eval(&self, e: &Expr) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Plus1(d) => self.get(*d).wrapping_add(1),
        }
    }

    /// The result cell `a[0]`.
    pub fn result(&self) -> i64 {
        self.cells[0]
    }

    /// All cells.
    pub fn cells(&self) -> &[i64] {
        &self.cells
    }
}

/// `A(e)` over a raw cell slice — the interned explorer stores array
/// states as `&[i64]` and must evaluate without materializing an
/// [`ArrayState`].
#[inline]
pub fn eval_cells(cells: &[i64], e: &Expr) -> i64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Plus1(d) => cells[*d].wrapping_add(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::Program;

    #[test]
    fn eval_and_update() {
        let p = Program::parse("def main() { a[2] = a[1] + 1; }").unwrap();
        let mut a = ArrayState::with_input(&p, &[7, 41]);
        assert_eq!(a.cells().len(), 3);
        assert_eq!(a.eval(&Expr::Const(5)), 5);
        assert_eq!(a.eval(&Expr::Plus1(1)), 42);
        a.set(2, a.eval(&Expr::Plus1(1)));
        assert_eq!(a.get(2), 42);
        assert_eq!(a.result(), 7);
    }

    #[test]
    fn input_longer_than_array_is_kept() {
        let p = Program::parse("def main() { skip; }").unwrap();
        let a = ArrayState::with_input(&p, &[1, 2, 3]);
        assert_eq!(a.cells(), &[1, 2, 3]);
    }
}
