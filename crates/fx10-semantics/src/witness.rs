//! Dynamic witness extraction for MHP/race diagnostics.
//!
//! A static race report says two labels *may* happen in parallel; the
//! strongest possible evidence is a concrete schedule that drives the
//! program to a state whose `parallel(T)` contains the pair — then both
//! racing instructions are enabled redexes at once. This module searches
//! for such a schedule with a bounded breadth-first exploration and
//! returns it as a trace of successor-choice indices, the same format
//! [`run_traced`](crate::interp::run_traced) records and
//! [`replay`](crate::interp::replay) consumes.
//!
//! Unlike the main explorer, the search runs over **raw** trees: no
//! `∥`-canonicalization and no administrative normalization. Canonical
//! dedup is a bisimulation — sound for reachability — but it permutes the
//! order [`successors`] enumerates transitions in, which would invalidate
//! the recorded choice indices. Determinism matters too: the BFS expands
//! states in insertion order, so the witness for a given program, input
//! and budget is always the same schedule.

use crate::parallel::{pair, parallel, LabelPair};
use crate::state::ArrayState;
use crate::step::{initial_tree, successors};
use crate::tree::Tree;

use fx10_robust::{Budget, BudgetMeter, CancelToken, Fx10Error, Stop};
use fx10_syntax::{Label, Program};
use std::collections::HashSet;
use std::collections::VecDeque;

/// A concrete interleaving exhibiting a label pair running in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The exhibited (unordered, normalized) label pair.
    pub pair: LabelPair,
    /// Successor-choice indices from the initial state; replaying the
    /// whole schedule reaches a state with the pair in `parallel(T)`.
    pub schedule: Vec<u32>,
    /// States the search expanded before finding the witness.
    pub states: usize,
}

/// The outcome of a bounded witness search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessSearch {
    /// A schedule exhibiting the pair was found.
    Found(Witness),
    /// The full (raw) state space was exhausted without the pair ever
    /// co-occurring: the static report is a proven false positive.
    Refuted {
        /// States visited by the complete search.
        states: usize,
    },
    /// The state budget ran out first — the report stands, tagged
    /// may-be-spurious.
    Exhausted {
        /// States visited before the budget tripped.
        states: usize,
    },
}

/// Searches for a schedule under which `target`'s two labels are both
/// enabled redexes, visiting at most `max_states` raw states.
///
/// The search additionally honors `budget`'s wall-clock deadline and the
/// cancel token (cancellation surfaces as [`Fx10Error::Cancelled`]; a
/// deadline trip degrades to [`WitnessSearch::Exhausted`], matching the
/// explorer's budget semantics).
pub fn find_witness(
    p: &Program,
    input: &[i64],
    target: LabelPair,
    max_states: usize,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<WitnessSearch, Fx10Error> {
    let target = pair(target.0, target.1);
    let mut meter = BudgetMeter::new(budget, cancel.clone());

    // Parent-pointer BFS: `nodes[i]` remembers how state `i` was reached
    // so the schedule reconstructs by walking back to the root.
    struct Node {
        parent: usize,
        choice: u32,
    }
    let root = (ArrayState::with_input(p, input), initial_tree(p));
    if parallel(&root.1).contains(&target) {
        return Ok(WitnessSearch::Found(Witness {
            pair: target,
            schedule: Vec::new(),
            states: 1,
        }));
    }
    let mut nodes = vec![Node {
        parent: usize::MAX,
        choice: 0,
    }];
    let mut states: Vec<(ArrayState, Tree)> = vec![root.clone()];
    let mut seen: HashSet<(ArrayState, Tree)> = HashSet::from([root]);
    let mut frontier: VecDeque<usize> = VecDeque::from([0]);

    while let Some(at) = frontier.pop_front() {
        match meter.tick() {
            Ok(()) => {}
            Err(Stop::Cancelled) => return Err(Fx10Error::Cancelled),
            Err(Stop::Exhausted(_)) => return Ok(WitnessSearch::Exhausted { states: seen.len() }),
        }
        let (array, tree) = states[at].clone();
        for (choice, succ) in successors(p, &array, &tree).into_iter().enumerate() {
            let key = (succ.array, succ.tree);
            if seen.contains(&key) {
                continue;
            }
            if parallel(&key.1).contains(&target) {
                let mut schedule = vec![choice as u32];
                let mut up = at;
                while up != 0 {
                    schedule.push(nodes[up].choice);
                    up = nodes[up].parent;
                }
                schedule.reverse();
                return Ok(WitnessSearch::Found(Witness {
                    pair: target,
                    schedule,
                    states: seen.len() + 1,
                }));
            }
            if seen.len() >= max_states {
                return Ok(WitnessSearch::Exhausted { states: seen.len() });
            }
            nodes.push(Node {
                parent: at,
                choice: choice as u32,
            });
            states.push(key.clone());
            seen.insert(key);
            frontier.push_back(nodes.len() - 1);
        }
    }
    Ok(WitnessSearch::Refuted { states: seen.len() })
}

/// Validates a witness schedule: replays it from the initial state and
/// checks that the final tree really has `target` in `parallel(T)`.
///
/// This is the property the race proptests pin down — a witness is only
/// evidence if an independent replay through the interpreter's
/// transition enumeration reproduces the co-occurrence.
pub fn witness_exhibits(p: &Program, input: &[i64], schedule: &[u32], target: LabelPair) -> bool {
    let target = pair(target.0, target.1);
    let mut array = ArrayState::with_input(p, input);
    let mut tree = initial_tree(p);
    for &choice in schedule {
        let succ = successors(p, &array, &tree);
        let Some(chosen) = succ.into_iter().nth(choice as usize) else {
            return false;
        };
        array = chosen.array;
        tree = chosen.tree;
    }
    parallel(&tree).contains(&target)
}

/// Convenience for diagnostics: searches for a witness of `(a, b)` with
/// an unlimited time budget and no cancellation.
pub fn find_witness_simple(
    p: &Program,
    input: &[i64],
    a: Label,
    b: Label,
    max_states: usize,
) -> WitnessSearch {
    match find_witness(
        p,
        input,
        (a, b),
        max_states,
        Budget::unlimited(),
        &CancelToken::new(),
    ) {
        Ok(w) => w,
        // Unreachable (nobody cancels), but degrade rather than panic.
        Err(_) => WitnessSearch::Exhausted { states: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::replay;

    fn racey() -> Program {
        Program::parse("def main() { W1: async { a[0] = 1; } W2: a[0] = 2; }").unwrap()
    }

    #[test]
    fn finds_a_witness_for_the_racy_pair() {
        let p = racey();
        // The racing accesses: the assign inside W1's async body, and W2.
        let w1 = Label(p.labels().lookup("W1").unwrap().0 + 1);
        let w2 = p.labels().lookup("W2").unwrap();
        match find_witness_simple(&p, &[], w1, w2, 10_000) {
            WitnessSearch::Found(w) => {
                assert!(witness_exhibits(&p, &[], &w.schedule, w.pair));
                // The schedule replays cleanly through the interpreter.
                assert!(replay(&p, &[], &w.schedule).is_ok());
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn refutes_a_finish_protected_pair() {
        let p = Program::parse("def main() { finish { X: async { a[0] = 1; } } Y: a[0] = 2; }")
            .unwrap();
        let x = p.labels().lookup("X").unwrap();
        let y = p.labels().lookup("Y").unwrap();
        // X's body and Y never co-occur; the search must prove it.
        let body = Label(x.0 + 1);
        match find_witness_simple(&p, &[], body, y, 10_000) {
            WitnessSearch::Refuted { states } => assert!(states > 0),
            other => panic!("expected refuted, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // The racing pair only co-occurs after both prefix skips run;
        // one admitted state cannot get there.
        let p = Program::parse("def main() { async { skip; X: a[0] = 1; } skip; Y: a[0] = 2; }")
            .unwrap();
        let x = p.labels().lookup("X").unwrap();
        let y = p.labels().lookup("Y").unwrap();
        match find_witness_simple(&p, &[], x, y, 1) {
            WitnessSearch::Exhausted { .. } => {}
            other => panic!("expected exhausted, got {other:?}"),
        }
        // With room to search, the same pair gets a witness.
        match find_witness_simple(&p, &[], x, y, 10_000) {
            WitnessSearch::Found(w) => {
                assert!(witness_exhibits(&p, &[], &w.schedule, (x, y)));
            }
            other => panic!("expected found, got {other:?}"),
        }
    }

    #[test]
    fn witness_search_is_deterministic() {
        let p = racey();
        let w1 = Label(p.labels().lookup("W1").unwrap().0 + 1);
        let w2 = p.labels().lookup("W2").unwrap();
        let a = find_witness_simple(&p, &[], w1, w2, 10_000);
        let b = find_witness_simple(&p, &[], w1, w2, 10_000);
        assert_eq!(a, b);
    }
}
