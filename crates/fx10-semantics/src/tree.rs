//! Execution trees (paper §3.3).

use fx10_syntax::Stmt;

/// An execution tree.
///
/// Internal nodes are `▷` ([`Tree::Seq`], from `finish`) or `∥`
/// ([`Tree::Par`], from `async`); leaves are `√` ([`Tree::Done`]) or a
/// running statement `⟨s⟩` ([`Tree::Stm`]).
/// The derived `Ord` is the *structural order* (`√ < ⟨s⟩ < ▷ < ∥`,
/// then lexicographic on children): the total order under which
/// [`Tree::canonical`] sorts `∥` children. The interned explorer mirrors
/// exactly this order, so canonical forms agree across representations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tree {
    /// `√` — a completed computation.
    Done,
    /// `⟨s⟩` — statement `s` running.
    Stm(Stmt),
    /// `T₁ ▷ T₂` — `T₁` must complete before `T₂` proceeds.
    Seq(Box<Tree>, Box<Tree>),
    /// `T₁ ∥ T₂` — interleaved parallel execution.
    Par(Box<Tree>, Box<Tree>),
}

impl Tree {
    /// `⟨s⟩`.
    pub fn stm(s: Stmt) -> Tree {
        Tree::Stm(s)
    }

    /// `T₁ ▷ T₂`.
    pub fn seq(t1: Tree, t2: Tree) -> Tree {
        Tree::Seq(Box::new(t1), Box::new(t2))
    }

    /// `T₁ ∥ T₂`.
    pub fn par(t1: Tree, t2: Tree) -> Tree {
        Tree::Par(Box::new(t1), Box::new(t2))
    }

    /// True iff the tree is `√`.
    pub fn is_done(&self) -> bool {
        matches!(self, Tree::Done)
    }

    /// Number of nodes in the tree (for diagnostics and bounds).
    pub fn node_count(&self) -> usize {
        match self {
            Tree::Done | Tree::Stm(_) => 1,
            Tree::Seq(a, b) | Tree::Par(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    /// Collapses the administrative `√`-elimination forms:
    /// `√ ∥ T ≡ T ∥ √ ≡ √ ▷ T ≡ T` (recursively).
    ///
    /// Normalization never loses MHP information:
    /// `parallel(T) ⊆ parallel(T.normalized())`. Eliminating `√` from a
    /// `∥` preserves `parallel` exactly (rule 43 crosses with
    /// `FTlabels(√) = ∅`), and eliminating `√ ▷ T₂` only *advances* to
    /// the state the always-enabled rule (1) reaches next — whose pairs
    /// the literal exploration collects one step later. Exploring
    /// normalized states therefore computes the same dynamic MHP union
    /// over a smaller state space (tested in `explore::tests`).
    pub fn normalized(self) -> Tree {
        match self {
            Tree::Done | Tree::Stm(_) => self,
            Tree::Seq(a, b) => match a.normalized() {
                Tree::Done => b.normalized(),
                a => Tree::seq(a, (*b).normalized()),
            },
            Tree::Par(a, b) => match (a.normalized(), b.normalized()) {
                (Tree::Done, t) | (t, Tree::Done) => t,
                (a, b) => Tree::par(a, b),
            },
        }
    }

    /// The canonical representative of the tree's `∥`-symmetry class:
    /// every `Par` node's children are recursively put in structural
    /// order (the derived `Ord`).
    ///
    /// Swapping the children of a `∥` is a bisimulation of the semantics
    /// — `parallel`/`FTlabels` are computed symmetrically (unordered
    /// pairs) and the successors of `T₂ ∥ T₁` are exactly the swaps of
    /// the successors of `T₁ ∥ T₂` with identical array states — so
    /// exploring canonical representatives visits the same MHP pairs,
    /// terminals and deadlock verdict over a (often much) smaller state
    /// space. `▷` is *not* commutative and is left untouched.
    pub fn canonical(self) -> Tree {
        match self {
            Tree::Done | Tree::Stm(_) => self,
            Tree::Seq(a, b) => Tree::seq(a.canonical(), b.canonical()),
            Tree::Par(a, b) => {
                let (a, b) = (a.canonical(), b.canonical());
                if a <= b {
                    Tree::par(a, b)
                } else {
                    Tree::par(b, a)
                }
            }
        }
    }

    /// Number of `⟨s⟩` leaves — the current "activities".
    pub fn activity_count(&self) -> usize {
        match self {
            Tree::Done => 0,
            Tree::Stm(_) => 1,
            Tree::Seq(a, b) | Tree::Par(a, b) => a.activity_count() + b.activity_count(),
        }
    }
}

impl std::fmt::Display for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tree::Done => write!(f, "√"),
            Tree::Stm(s) => {
                write!(f, "⟨")?;
                let mut first = true;
                for i in s.instrs() {
                    if !first {
                        write!(f, " ")?;
                    }
                    first = false;
                    write!(f, "{}", i.label)?;
                }
                write!(f, "⟩")
            }
            Tree::Seq(a, b) => write!(f, "({a} ▷ {b})"),
            Tree::Par(a, b) => write!(f, "({a} ∥ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::Program;

    #[test]
    fn counts_and_display() {
        let p = Program::parse("def main() { S1; S2; }").unwrap();
        let t = Tree::par(Tree::stm(p.body(p.main()).clone()), Tree::Done);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.activity_count(), 1);
        assert!(!t.is_done());
        assert_eq!(format!("{t}"), "(⟨L0 L1⟩ ∥ √)");
        assert_eq!(format!("{}", Tree::seq(Tree::Done, Tree::Done)), "(√ ▷ √)");
    }
}
