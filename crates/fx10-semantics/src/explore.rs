//! Exhaustive state-space exploration.
//!
//! For a program `p`, the paper defines
//!
//! ```text
//! MHP(p) = ∪ { parallel(T) | (p, A₀, ⟨s₀⟩) →* (p, A, T) }
//! ```
//!
//! [`explore`] enumerates the reachable states of `(p, A₀)` breadth-first
//! and accumulates exactly this union — the *dynamic*, ground-truth MHP
//! relation. On terminating programs with a sufficient state budget the
//! result is exact; when the budget truncates the search the result is an
//! *under*-approximation, which is still sound to compare against the
//! static analysis (`dynamic ⊆ static` must hold either way).
//!
//! Along the way the explorer machine-checks **Theorem 1 (deadlock
//! freedom)**: every visited state is either `√` or has at least one
//! successor.
//!
//! ## Two engines, one contract
//!
//! - The **sequential reference** ([`explore_budgeted`]) is a cloned-tree
//!   breadth-first search — deliberately simple, the oracle the
//!   differential tests trust.
//! - The **interned engine** ([`explore_parallel_budgeted`],
//!   [`explore_interned_budgeted`]) hash-conses every statement, tree and
//!   array into 32-bit ids (see [`crate::intern`]) so a state is one
//!   packed `u64`, and drains the frontier with *work-stealing* workers:
//!   each worker owns a deque (push/pop at the back), steals the front
//!   half of a victim's deque when empty, and all workers share one
//!   [`SharedMeter`] so a global budget bounds the whole crew.
//!
//! Both engines deduplicate states by **canonical `∥`-form** by default
//! ([`ExploreConfig::canonical_dedup`]): `T₁ ∥ T₂` and `T₂ ∥ T₁` are the
//! same state. Canonicalization is a bisimulation (see
//! [`Tree::canonical`]), so the MHP set, deadlock verdict and terminal
//! count are unchanged while `∥`-symmetric spaces shrink, often
//! exponentially in the number of peer activities. Because the canonical
//! order is *structural* (never interner-id order), results are
//! schedule-independent: any worker count, any steal order, any fault
//! plan yields byte-identical canonical state sets.
//!
//! ## Robustness
//!
//! The budgeted entry points accept a [`Budget`] (state cap, wall-clock
//! deadline, peak visited-set memory), a [`CancelToken`], and — for the
//! parallel engine — a [`FaultPlan`]. Budget exhaustion returns a
//! *partial* [`Exploration`] tagged with its [`Exhaustion`] provenance
//! (state-cap overshoot is bounded by one reservation batch per worker);
//! cancellation returns [`Fx10Error::Cancelled`]; a worker panic (organic
//! or injected) is contained by `catch_unwind` and surfaces as
//! [`Fx10Error::WorkerPanicked`] instead of aborting the process.

use crate::intern::{self, state_key, state_parts, ArrayId, Interner, TreeId};
use crate::parallel::{parallel, LabelPair};
use crate::snapshot::{self, ExplorerSnapshot};
use crate::state::ArrayState;
use crate::step::{initial_tree, successors};
use crate::tree::Tree;
use fx10_robust::{Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error, SharedMeter, Stop};
use fx10_syntax::Program;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Exploration limits and state-representation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop expanding after this many distinct states (the search is then
    /// marked truncated). The default (200 000) comfortably covers the
    /// paper's examples.
    pub max_states: usize,
    /// Collapse the administrative `√`-elimination steps (rules 1, 3, 4)
    /// eagerly via [`Tree::normalized`]. Sound for dynamic MHP (the
    /// collapsed states contribute no pairs of their own) and typically
    /// shrinks the state space severalfold; off by default so the
    /// explorer matches the literal semantics.
    pub normalize_admin: bool,
    /// Deduplicate frontier states by their canonical `∥`-form
    /// ([`Tree::canonical`]): `T₁ ∥ T₂` and `T₂ ∥ T₁` are one state.
    /// Sound (swapping `∥` children is a bisimulation) and on by default;
    /// turn off to enumerate the literal, orientation-sensitive space.
    pub canonical_dedup: bool,
    /// Record a canonical digest (`"cells ⊢ tree"`) of every visited
    /// state in [`Exploration::state_digests`]. Off by default — this is
    /// the differential-testing hook, not a production feature.
    pub collect_states: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 200_000,
            normalize_admin: false,
            canonical_dedup: true,
            collect_states: false,
        }
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of distinct states visited.
    pub visited: usize,
    /// True when a budget cut the search short (the MHP set is then a
    /// lower bound).
    pub truncated: bool,
    /// Which resource truncated the search, when `truncated` is true.
    /// `Some(States)` covers both the legacy `max_states` cap and an
    /// explicit budget cap.
    pub exhausted: Option<Exhaustion>,
    /// `∪ parallel(T)` over all visited states — dynamic MHP, as
    /// unordered label pairs.
    pub mhp: BTreeSet<LabelPair>,
    /// Theorem 1 verdict: every visited non-`√` state had a successor.
    pub deadlock_free: bool,
    /// Number of terminal (`√`) states reached.
    pub terminals: usize,
    /// Canonical renderings of every visited state, when
    /// [`ExploreConfig::collect_states`] was set. Byte-comparable across
    /// engines, representations (cloned vs interned) and worker counts —
    /// the currency of the differential oracle.
    pub state_digests: Option<BTreeSet<String>>,
}

impl Exploration {
    /// An empty, truncation-tagged result (the degenerate fallback for
    /// infallible legacy entry points).
    fn empty_truncated() -> Exploration {
        Exploration {
            visited: 0,
            truncated: true,
            exhausted: Some(Exhaustion::States),
            mhp: BTreeSet::new(),
            deadlock_free: true,
            terminals: 0,
            state_digests: None,
        }
    }
}

/// One state of the transition system (the program is fixed).
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    array: ArrayState,
    tree: Tree,
}

impl State {
    /// Approximate heap footprint, for the peak-set-memory budget.
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<State>()
            + self.tree.node_count() * 48
            + std::mem::size_of_val(self.array.cells())
    }

    fn digest(&self) -> String {
        format!("{:?} ⊢ {}", self.array.cells(), self.tree)
    }
}

/// How often the explorers poll the clock and cancel token.
const POLL_STRIDE: usize = 256;

/// Sequential breadth-first exploration from `(A₀(input), ⟨s₀⟩)`.
///
/// Infallible legacy entry point: unlimited budget, no cancellation.
pub fn explore(p: &Program, input: &[i64], config: ExploreConfig) -> Exploration {
    match explore_budgeted(p, input, config, Budget::unlimited(), &CancelToken::new()) {
        Ok(e) => e,
        // Unreachable: with no cancel token holder and no deadline the
        // budgeted explorer cannot fail — but never panic on a library
        // path; degrade to an empty truncated result instead.
        Err(_) => Exploration::empty_truncated(),
    }
}

/// Applies the configured state-shaping (admin normalization, canonical
/// `∥`-form) to a cloned tree.
fn shape(config: &ExploreConfig, t: Tree) -> Tree {
    let t = if config.normalize_admin {
        t.normalized()
    } else {
        t
    };
    if config.canonical_dedup {
        t.canonical()
    } else {
        t
    }
}

/// Sequential breadth-first exploration under a [`Budget`] and a
/// [`CancelToken`] — the cloned-tree *reference engine* the differential
/// oracle compares everything against.
///
/// Budget exhaustion (states, deadline, memory) returns `Ok` with a
/// partial, [`Exploration::exhausted`]-tagged result; cancellation
/// returns [`Fx10Error::Cancelled`].
pub fn explore_budgeted(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<Exploration, Fx10Error> {
    explore_budgeted_with_sink(p, input, config, budget, cancel, &mut |_, _| {})
}

/// One concrete observation for the abstract-interpretation differential
/// gate: the array cells of a visited state together with that state's
/// *front* labels (`FTlabels`, the next-executable instructions).
///
/// A sound value analysis must, for every sample, every front label `l`
/// and every cell `d`, have `cells[d] ∈ γ(Env[l][d])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontSample {
    /// The array state `A` of the visited state.
    pub cells: Vec<i64>,
    /// `FTlabels(T)` of the visited state's tree, sorted.
    pub fronts: Vec<fx10_syntax::Label>,
}

/// [`explore_budgeted`] plus a per-state sampling hook: every state
/// admitted to the visited set (the initial state included) is handed to
/// `sink` as a [`FrontSample`]. Sampling covers exactly the states the
/// returned [`Exploration`] counts, so on a truncated run the samples are
/// the explored prefix — still sound to test containment against, since
/// visited ⊆ reachable.
pub fn explore_sampled(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    budget: Budget,
    cancel: &CancelToken,
    sink: &mut dyn FnMut(FrontSample),
) -> Result<Exploration, Fx10Error> {
    explore_budgeted_with_sink(p, input, config, budget, cancel, &mut |array, tree| {
        let mut fronts: Vec<fx10_syntax::Label> =
            crate::parallel::ftlabels(tree).into_iter().collect();
        fronts.sort_unstable();
        sink(FrontSample {
            cells: array.cells().to_vec(),
            fronts,
        })
    })
}

fn explore_budgeted_with_sink(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    budget: Budget,
    cancel: &CancelToken,
    sink: &mut dyn FnMut(&ArrayState, &Tree),
) -> Result<Exploration, Fx10Error> {
    // A pre-cancelled token stops before any work; the in-flight poll
    // below only fires on the stride.
    cancel.check()?;
    let max_states = budget
        .max_states
        .map_or(config.max_states, |b| b.min(config.max_states));
    let init = State {
        array: ArrayState::with_input(p, input),
        tree: shape(&config, initial_tree(p)),
    };
    let mut approx_bytes = init.approx_bytes();
    let mut visited: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    sink(&init.array, &init.tree);
    visited.insert(init.clone());
    queue.push_back(init);

    let mut mhp = BTreeSet::new();
    let mut exhausted: Option<Exhaustion> = None;
    let mut deadlock_free = true;
    let mut terminals = 0usize;
    let mut processed = 0usize;

    'bfs: while let Some(st) = queue.pop_front() {
        processed += 1;
        if processed.is_multiple_of(POLL_STRIDE) {
            cancel.check()?;
            if budget.deadline_exceeded() {
                exhausted = Some(Exhaustion::Deadline);
                break 'bfs;
            }
        }
        mhp.extend(parallel(&st.tree));
        if st.tree.is_done() {
            terminals += 1;
            continue;
        }
        let succ = successors(p, &st.array, &st.tree);
        if succ.is_empty() {
            deadlock_free = false; // would falsify Theorem 1
            continue;
        }
        for s in succ {
            if visited.len() >= max_states {
                exhausted = Some(Exhaustion::States);
                break 'bfs;
            }
            if budget.memory_exhausted(approx_bytes) {
                exhausted = Some(Exhaustion::Memory);
                break 'bfs;
            }
            let next = State {
                array: s.array,
                tree: shape(&config, s.tree),
            };
            if visited.insert(next.clone()) {
                sink(&next.array, &next.tree);
                approx_bytes += next.approx_bytes();
                queue.push_back(next);
            }
        }
    }

    // Drain remaining queued states into the MHP union so truncation never
    // drops information we already paid for.
    for st in queue {
        mhp.extend(parallel(&st.tree));
    }

    let state_digests = config
        .collect_states
        .then(|| visited.iter().map(State::digest).collect());
    Ok(Exploration {
        visited: visited.len(),
        truncated: exhausted.is_some(),
        exhausted,
        mhp,
        deadlock_free,
        terminals,
        state_digests,
    })
}

const SHARDS: usize = 64;

/// Shard index of a packed state key (multiplicative hash — the key is
/// already a pair of dense ids, `DefaultHasher` would be overkill).
fn shard_idx(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % SHARDS
}

/// Locks a shard, recovering from poisoning: a worker that panicked while
/// holding the lock leaves the structure in a consistent state for our
/// invariants (visited sets only grow; deques hold plain keys), so
/// continuing is safe.
fn lock_shard<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Multi-threaded exploration. Computes the same [`Exploration`] sets as
/// [`explore`] (`visited` may differ by a few states around the truncation
/// point; on non-truncated runs all fields except queue-order artifacts
/// are identical). Infallible legacy entry point.
pub fn explore_parallel(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    threads: usize,
) -> Exploration {
    match explore_parallel_budgeted(
        p,
        input,
        config,
        threads,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
    ) {
        Ok(e) => e,
        Err(_) => Exploration::empty_truncated(),
    }
}

/// Single-threaded exploration on the *interned* engine — same
/// hash-consed representation as the parallel explorer, no worker
/// threads. Useful as the `jobs = 1` point of scaling comparisons and as
/// a fast sequential engine in its own right.
pub fn explore_interned_budgeted(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<Exploration, Fx10Error> {
    explore_parallel_budgeted(p, input, config, 1, budget, cancel, &FaultPlan::none())
}

/// Periodic durable checkpointing for the parallel explorer.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Where the snapshot file lives (atomically replaced on every
    /// checkpoint, so the path always holds the latest complete one).
    pub path: PathBuf,
    /// Take a checkpoint every this many newly-admitted states.
    pub every: usize,
}

/// Watchdog configuration: how long a worker's heartbeat may stay
/// frozen before the crew is declared stalled.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogSpec {
    /// A worker whose heartbeat has not advanced for this long (and has
    /// not exited) is *stalled* — slow workers keep beating at every
    /// loop iteration, including while parked or hunting for work, so
    /// the criterion separates "wedged" from "busy".
    pub stall_after: Duration,
    /// How often the watchdog samples the heartbeats.
    pub poll: Duration,
}

impl Default for WatchdogSpec {
    fn default() -> Self {
        WatchdogSpec {
            stall_after: Duration::from_secs(10),
            poll: Duration::from_millis(50),
        }
    }
}

/// The durability/supervision options of one parallel exploration.
#[derive(Debug, Default)]
pub struct Durability<'a> {
    /// Take periodic durable checkpoints (plus a final one on budget
    /// exhaustion, stall, deadline or completion).
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from a previously-written snapshot instead of the initial
    /// state. The snapshot's fingerprint must match the program, input
    /// and state-shaping flags.
    pub resume: Option<&'a ExplorerSnapshot>,
    /// Run a supervisor thread that converts a stalled worker into
    /// [`Fx10Error::WorkerStalled`] instead of a hang.
    pub watchdog: Option<WatchdogSpec>,
}

/// Crew-side state of the periodic-checkpoint protocol.
struct CkptCtl {
    path: PathBuf,
    every: usize,
    /// Raised by the worker that trips the `every` threshold; all other
    /// workers park at their next loop top until the writer clears it.
    paused: AtomicBool,
    /// The worker elected to write (usize::MAX = none).
    writer: AtomicUsize,
    /// States admitted since the last checkpoint.
    since: AtomicUsize,
    /// Completed checkpoints.
    seq: AtomicU64,
    /// Injected fault: stop as if SIGKILLed right after this many
    /// checkpoints (1-based).
    kill_at: Option<u64>,
    killed: AtomicBool,
    /// First checkpoint-write failure (reported after the join unless a
    /// more severe error wins).
    io_error: Mutex<Option<Fx10Error>>,
}

impl CkptCtl {
    fn new(spec: CheckpointSpec, kill_at: Option<u64>) -> CkptCtl {
        CkptCtl {
            path: spec.path,
            every: spec.every.max(1),
            paused: AtomicBool::new(false),
            writer: AtomicUsize::new(usize::MAX),
            since: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            kill_at,
            killed: AtomicBool::new(false),
            io_error: Mutex::new(None),
        }
    }
}

/// The shared mutable side of one work-stealing exploration.
struct Engine<'p> {
    p: &'p Program,
    interner: Interner,
    normalize: bool,
    max_states: usize,
    /// Distinct packed state keys, sharded.
    visited: Vec<Mutex<HashSet<u64>>>,
    /// One work deque per worker: the owner pushes and pops at the back,
    /// thieves take the front half (the opposite under an adversarial
    /// plan).
    deques: Vec<Mutex<VecDeque<u64>>>,
    /// Seed states, consulted when a worker's own deque and all steals
    /// come up empty.
    injector: Mutex<VecDeque<u64>>,
    /// States discovered but not yet fully expanded — the termination
    /// barrier: no work anywhere and `pending == 0` means done.
    pending: AtomicUsize,
    /// Crew-wide budget accounting (states, bytes, deadline, cancel).
    meter: SharedMeter,
    deadlock_free: AtomicBool,
    terminals: AtomicUsize,
    cancelled: AtomicBool,
    /// First worker panic (index, rendered payload).
    panic: Mutex<Option<(usize, String)>>,
    /// Identity of (program, input, shaping flags) for snapshots.
    fingerprint: u64,
    /// One monotonically-advancing epoch per worker; bumped at every
    /// loop iteration (including park-spins and work hunts), frozen only
    /// when a worker is genuinely wedged.
    heartbeats: Vec<AtomicU64>,
    /// Set once a worker's thread has returned (panicked or not).
    exited: Vec<AtomicBool>,
    /// Workers currently parked for a checkpoint write.
    parked: AtomicUsize,
    /// First stall the watchdog observed: (worker, frozen-for ms).
    stalled: Mutex<Option<(usize, u64)>>,
    /// Periodic-checkpoint protocol, when configured.
    ckpt: Option<CkptCtl>,
}

impl Engine<'_> {
    /// Per-admitted-state contribution to the approximate memory budget:
    /// the visited-set key plus the state's amortized share of the
    /// interner (one tree node, one deque slot, map entries).
    fn state_bytes(&self, a: ArrayId) -> usize {
        64 + std::mem::size_of_val(self.interner.cells(a))
    }

    /// Takes the next state: own deque first, then the injector, then a
    /// steal of half of some victim's deque.
    fn grab(&self, id: usize, adversarial: bool) -> Option<u64> {
        {
            let mut own = lock_shard(&self.deques[id]);
            let got = if adversarial {
                own.pop_front()
            } else {
                own.pop_back()
            };
            if got.is_some() {
                return got;
            }
        }
        if let Some(k) = lock_shard(&self.injector).pop_front() {
            return Some(k);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (id + off) % n;
            let mut stolen: VecDeque<u64> = {
                let mut v = lock_shard(&self.deques[victim]);
                let take = v.len().div_ceil(2);
                if take == 0 {
                    continue;
                }
                if adversarial {
                    // Steal the owner's end — maximal interference.
                    let keep = v.len() - take;
                    v.split_off(keep)
                } else {
                    // Steal the cold front half, leave the owner its
                    // cache-hot back.
                    let rest = v.split_off(take);
                    std::mem::replace(&mut *v, rest)
                }
            };
            let first = if adversarial {
                stolen.pop_back()
            } else {
                stolen.pop_front()
            };
            if !stolen.is_empty() {
                lock_shard(&self.deques[id]).extend(stolen);
            }
            debug_assert!(first.is_some());
            return first;
        }
        None
    }

    /// Expands one state: records the terminal / deadlock verdicts and
    /// enqueues every newly-discovered successor. Returns early when a
    /// budget wall is hit — the reservation failure has already raised
    /// the stop flag.
    fn expand(&self, id: usize, key: u64, scratch: &mut Vec<(ArrayId, TreeId)>) {
        let (a, t) = state_parts(key);
        if t == intern::DONE {
            self.terminals.fetch_add(1, Ordering::Relaxed);
            return;
        }
        scratch.clear();
        self.interner.successors(self.p, a, t, scratch);
        self.meter.charge_ticks(1);
        if scratch.is_empty() {
            self.deadlock_free.store(false, Ordering::Relaxed);
            return;
        }
        for &(sa, st) in scratch.iter() {
            let st = if self.normalize {
                self.interner.normalized(st)
            } else {
                st
            };
            let k = state_key(sa, st);
            if !lock_shard(&self.visited[shard_idx(k)]).insert(k) {
                continue;
            }
            if !self.meter.try_reserve_states(1, self.max_states)
                || !self.meter.try_grow_bytes(self.state_bytes(sa))
            {
                // Budget wall: exhaustion recorded, stop flag raised.
                // Undo the speculative insert so `visited` stays exactly
                // `expanded ∪ frontier` — the invariant the final
                // checkpoint relies on. (A concurrent duplicate that lost
                // the insert race was skipped above and is now dropped
                // with this key; that benign lost state can only happen
                // on a run that is already truncated.)
                lock_shard(&self.visited[shard_idx(k)]).remove(&k);
                return;
            }
            self.pending.fetch_add(1, Ordering::SeqCst);
            lock_shard(&self.deques[id]).push_back(k);
            if let Some(ckpt) = &self.ckpt {
                if ckpt.since.fetch_add(1, Ordering::SeqCst) + 1 >= ckpt.every
                    && ckpt
                        .paused
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    ckpt.since.store(0, Ordering::SeqCst);
                    ckpt.writer.store(id, Ordering::SeqCst);
                }
            }
        }
    }

    /// Bumps this worker's heartbeat epoch (the watchdog's liveness
    /// signal).
    fn beat(&self, id: usize) {
        self.heartbeats[id].fetch_add(1, Ordering::Relaxed);
    }

    /// One worker's drain loop. Panics escape to the `catch_unwind` in
    /// the spawner. Every path out of the loop leaves the worker holding
    /// no in-flight key, so `visited = expanded ∪ frontier` holds at
    /// exit and at every checkpoint safepoint.
    fn worker(&self, id: usize, faults: &FaultPlan) {
        let mut scratch = Vec::new();
        let mut processed = 0u64;
        loop {
            self.beat(id);
            // Checkpoint safepoint: the elected writer freezes the crew;
            // everyone else parks (still beating) until it finishes.
            if let Some(ckpt) = &self.ckpt {
                if ckpt.paused.load(Ordering::SeqCst) && !self.meter.is_stopped() {
                    if ckpt.writer.load(Ordering::SeqCst) == id {
                        self.write_checkpoint(id);
                    } else {
                        self.parked.fetch_add(1, Ordering::SeqCst);
                        while ckpt.paused.load(Ordering::SeqCst) && !self.meter.is_stopped() {
                            self.beat(id);
                            std::thread::yield_now();
                        }
                        self.parked.fetch_sub(1, Ordering::SeqCst);
                    }
                    continue;
                }
            }
            if self.meter.is_stopped() {
                break;
            }
            if faults.should_wedge(id, processed) {
                // Injected wedge: no progress and *no heartbeats*, like a
                // runaway loop or a hung syscall. Only the watchdog, a
                // budget trip or cancellation releases the worker.
                while !self.meter.is_stopped() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                break;
            }
            let Some(key) = self.grab(id, faults.adversarial_schedule) else {
                if self.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            processed += 1;
            if faults.should_panic(id, processed) {
                panic!("injected fault: worker {id} after {processed} state(s)");
            }
            if processed.is_multiple_of(POLL_STRIDE as u64) {
                if let Err(stop) = self.meter.checkpoint() {
                    if stop == Stop::Cancelled {
                        self.cancelled.store(true, Ordering::SeqCst);
                    }
                    // Put the grabbed key back (and keep its pending
                    // credit) so the frontier stays consistent for the
                    // final checkpoint.
                    lock_shard(&self.deques[id]).push_back(key);
                    break;
                }
            }
            self.expand(id, key, &mut scratch);
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// The elected writer's side of the checkpoint protocol: wait for
    /// the rest of the crew to park (or exit), freeze a consistent
    /// snapshot, write it, unpause.
    fn write_checkpoint(&self, id: usize) {
        let ckpt = self.ckpt.as_ref().expect("writer elected without ctl");
        loop {
            let exited_others = self
                .exited
                .iter()
                .enumerate()
                .filter(|&(w, e)| w != id && e.load(Ordering::SeqCst))
                .count();
            if self.parked.load(Ordering::SeqCst) + exited_others >= self.exited.len() - 1 {
                break;
            }
            if self.meter.is_stopped() {
                // A stop fired while assembling the safepoint (stall,
                // cancel, budget): abandon this checkpoint — the
                // coordinator writes the final one — and release the
                // parked workers so they can drain.
                ckpt.writer.store(usize::MAX, Ordering::SeqCst);
                ckpt.paused.store(false, Ordering::SeqCst);
                return;
            }
            self.beat(id);
            std::thread::yield_now();
        }
        match self.freeze().save(&ckpt.path) {
            Err(e) => {
                lock_shard(&ckpt.io_error).get_or_insert(e);
                self.meter.request_stop();
            }
            Ok(()) => {
                let done = ckpt.seq.fetch_add(1, Ordering::SeqCst) + 1;
                if ckpt.kill_at == Some(done) {
                    // Injected SIGKILL: stop here, leaving this
                    // checkpoint as the on-disk state to resume from.
                    ckpt.killed.store(true, Ordering::SeqCst);
                    self.meter.request_stop();
                }
            }
        }
        ckpt.writer.store(usize::MAX, Ordering::SeqCst);
        ckpt.paused.store(false, Ordering::SeqCst);
    }

    /// Freezes the engine into a snapshot. Only sound at a safepoint —
    /// every other worker parked or exited, none holding an in-flight
    /// key — or after the crew has joined.
    fn freeze(&self) -> ExplorerSnapshot {
        let mut visited: Vec<u64> = Vec::new();
        for shard in &self.visited {
            visited.extend(lock_shard(shard).iter().copied());
        }
        visited.sort_unstable();
        let mut frontier: Vec<u64> = Vec::new();
        for dq in &self.deques {
            frontier.extend(lock_shard(dq).iter().copied());
        }
        frontier.extend(lock_shard(&self.injector).iter().copied());
        frontier.sort_unstable();
        ExplorerSnapshot::capture(
            &self.interner,
            self.fingerprint,
            self.terminals.load(Ordering::SeqCst) as u64,
            self.deadlock_free.load(Ordering::SeqCst),
            self.meter.ticks(),
            visited,
            frontier,
        )
    }

    /// The watchdog thread: samples every live worker's heartbeat; a
    /// heartbeat frozen for `stall_after` on a worker that has not
    /// exited is a stall — record it, cancel the crew, return.
    fn watchdog(&self, spec: WatchdogSpec) {
        let n = self.heartbeats.len();
        let mut last: Vec<u64> = (0..n)
            .map(|i| self.heartbeats[i].load(Ordering::Relaxed))
            .collect();
        let mut fresh_at: Vec<Instant> = vec![Instant::now(); n];
        loop {
            std::thread::sleep(spec.poll);
            let mut all_exited = true;
            for i in 0..n {
                if self.exited[i].load(Ordering::SeqCst) {
                    continue;
                }
                all_exited = false;
                let now = self.heartbeats[i].load(Ordering::Relaxed);
                if now != last[i] {
                    last[i] = now;
                    fresh_at[i] = Instant::now();
                } else {
                    let frozen = fresh_at[i].elapsed();
                    if frozen >= spec.stall_after {
                        lock_shard(&self.stalled).get_or_insert((i, frozen.as_millis() as u64));
                        self.meter.request_stop();
                        return;
                    }
                }
            }
            if all_exited || self.meter.is_stopped() {
                return;
            }
        }
    }
}

/// Multi-threaded work-stealing exploration on hash-consed state ids,
/// under a [`Budget`], a [`CancelToken`] and a [`FaultPlan`].
///
/// All workers share one [`SharedMeter`], so the state budget bounds the
/// *crew*: total admitted states never exceed the cap by more than one
/// reservation batch per worker. Worker panics — organic or injected by
/// the plan — are caught per worker; the first one is reported as
/// [`Fx10Error::WorkerPanicked`] after all workers have drained (the
/// process never aborts, and no worker is left blocked). Cancellation
/// wins over budget exhaustion; panics win over both.
pub fn explore_parallel_budgeted(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    threads: usize,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
) -> Result<Exploration, Fx10Error> {
    explore_parallel_durable(
        p,
        input,
        config,
        threads,
        budget,
        cancel,
        faults,
        Durability::default(),
    )
}

/// Resolves the fault flags left behind by a joined crew into the one
/// error the run reports — the *join precedence* pinned by DESIGN.md
/// §10 and the `settle_precedence_*` tests:
///
/// `panic > stall > injected kill > checkpoint-I/O > cancellation`.
///
/// A panic outranks everything (the answer may be incomplete in a way
/// no counter records); a stall is a positive watchdog diagnosis and
/// outranks the cancellation it was delivered through; an injected
/// kill reports as [`Fx10Error::Cancelled`]; a checkpoint-write failure
/// is only reported when nothing worse happened; and plain cancellation
/// is last — every other fault also raises the stop flag, so reporting
/// cancellation first would mask the cause. Returns `Ok(())` when no
/// fault fired.
pub fn settle_outcome(
    panicked: Option<(usize, String)>,
    stalled: Option<(usize, u64)>,
    killed: bool,
    ckpt_io_error: Option<Fx10Error>,
    cancelled: bool,
) -> Result<(), Fx10Error> {
    if let Some((worker, message)) = panicked {
        return Err(Fx10Error::WorkerPanicked { worker, message });
    }
    if let Some((worker, stalled_ms)) = stalled {
        return Err(Fx10Error::WorkerStalled { worker, stalled_ms });
    }
    if killed {
        return Err(Fx10Error::Cancelled);
    }
    if let Some(e) = ckpt_io_error {
        return Err(e);
    }
    if cancelled {
        return Err(Fx10Error::Cancelled);
    }
    Ok(())
}

/// [`explore_parallel_budgeted`] plus the durability/supervision layer:
/// periodic consistent checkpoints, resume-from-snapshot, and a
/// heartbeat watchdog (see [`Durability`]).
///
/// Error precedence after the crew joins: a worker panic wins over a
/// stall, a stall ([`Fx10Error::WorkerStalled`]) over an injected kill,
/// a kill (reported as [`Fx10Error::Cancelled`]) over a checkpoint I/O
/// failure, and that over plain cancellation. A *final* checkpoint is
/// written on every path except a panic (the panicking worker dropped
/// its in-flight state, so the frontier would be inconsistent) and an
/// injected kill (the fault simulates SIGKILL — the on-disk snapshot
/// must stay exactly the one the kill interrupted).
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel_durable(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    threads: usize,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
    durability: Durability<'_>,
) -> Result<Exploration, Fx10Error> {
    cancel.check()?;
    let threads = threads.max(1);
    let max_states = faults
        .effective_max_states(budget.max_states)
        .map_or(config.max_states, |b| b.min(config.max_states));
    let fingerprint = snapshot::fingerprint(p, input, &config);

    let engine = Engine {
        p,
        interner: Interner::new(config.canonical_dedup),
        normalize: config.normalize_admin,
        max_states,
        visited: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        injector: Mutex::new(VecDeque::new()),
        pending: AtomicUsize::new(0),
        meter: SharedMeter::new(budget, cancel.clone()),
        deadlock_free: AtomicBool::new(true),
        terminals: AtomicUsize::new(0),
        cancelled: AtomicBool::new(false),
        panic: Mutex::new(None),
        fingerprint,
        heartbeats: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        exited: (0..threads).map(|_| AtomicBool::new(false)).collect(),
        parked: AtomicUsize::new(0),
        stalled: Mutex::new(None),
        ckpt: durability
            .checkpoint
            .map(|spec| CkptCtl::new(spec, faults.kill_at_checkpoint)),
    };

    let run_crew = if let Some(snap) = durability.resume {
        if snap.fingerprint != fingerprint {
            return Err(Fx10Error::Snapshot {
                message: "snapshot does not match this program, input and configuration \
                          (fingerprint mismatch)"
                    .into(),
            });
        }
        let (_smap, tmap, amap) = snap.restore(&engine.interner);
        let map_key = |k: u64| {
            let (a, t) = state_parts(k);
            state_key(ArrayId(amap[a.0 as usize]), TreeId(tmap[t.0 as usize]))
        };
        let mut restored_bytes = 0usize;
        for &k in &snap.visited {
            let nk = map_key(k);
            lock_shard(&engine.visited[shard_idx(nk)]).insert(nk);
            restored_bytes += engine.state_bytes(state_parts(nk).0);
        }
        engine
            .terminals
            .store(snap.terminals as usize, Ordering::SeqCst);
        engine
            .deadlock_free
            .store(snap.deadlock_free, Ordering::SeqCst);
        engine.meter.charge_ticks(snap.ticks);
        // Restored states keep their credits; overflowing the (new)
        // budget marks the run truncated from the start.
        let fits = engine.meter.restore_states(snap.visited.len(), max_states)
            && engine.meter.try_grow_bytes(restored_bytes);
        for (i, &k) in snap.frontier.iter().enumerate() {
            lock_shard(&engine.deques[i % threads]).push_back(map_key(k));
        }
        engine.pending.store(snap.frontier.len(), Ordering::SeqCst);
        fits && !snap.frontier.is_empty()
    } else {
        let a0 = engine
            .interner
            .intern_array(ArrayState::with_input(p, input).cells().to_vec());
        let t0 = {
            let t = engine.interner.intern_tree(&initial_tree(p));
            if config.normalize_admin {
                engine.interner.normalized(t)
            } else {
                t
            }
        };
        let seed = state_key(a0, t0);
        if engine.meter.try_reserve_states(1, max_states)
            && engine.meter.try_grow_bytes(engine.state_bytes(a0))
        {
            lock_shard(&engine.visited[shard_idx(seed)]).insert(seed);
            engine.pending.store(1, Ordering::SeqCst);
            lock_shard(&engine.injector).push_back(seed);
            true
        } else {
            false
        }
    };

    if run_crew {
        std::thread::scope(|scope| {
            for worker_id in 0..threads {
                let engine = &engine;
                scope.spawn(move || {
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| engine.worker(worker_id, faults)))
                    {
                        // Contain the panic: record it and tell the crew
                        // to drain out (the in-flight pending credit is
                        // moot once the stop flag is up).
                        lock_shard(&engine.panic).get_or_insert_with(|| {
                            (worker_id, fx10_robust::panic_message(payload.as_ref()))
                        });
                        engine.meter.request_stop();
                    }
                    engine.exited[worker_id].store(true, Ordering::SeqCst);
                });
            }
            if let Some(spec) = durability.watchdog {
                let engine = &engine;
                scope.spawn(move || engine.watchdog(spec));
            }
        });
    }

    let panicked = lock_shard(&engine.panic).take();
    let stalled = lock_shard(&engine.stalled).take();
    let killed = engine
        .ckpt
        .as_ref()
        .is_some_and(|c| c.killed.load(Ordering::SeqCst));

    // Final checkpoint: everything except a panic (inconsistent
    // frontier) and an injected kill (must preserve the interrupted
    // snapshot) gets one, including the stall / deadline / cancel paths
    // — that is what makes the error *recoverable*.
    if let Some(ckpt) = &engine.ckpt {
        if panicked.is_none() && !killed {
            if let Err(e) = engine.freeze().save(&ckpt.path) {
                lock_shard(&ckpt.io_error).get_or_insert(e);
            }
        }
    }

    settle_outcome(
        panicked,
        stalled,
        killed,
        engine
            .ckpt
            .as_ref()
            .and_then(|c| lock_shard(&c.io_error).take()),
        engine.cancelled.load(Ordering::SeqCst) || cancel.is_cancelled(),
    )?;

    // Dynamic MHP over every *discovered* state (queued-but-unexpanded
    // states included, exactly like the sequential engine's queue
    // drain), memoized per distinct tree id. The visited set is exactly
    // the admitted states, resumed or fresh, so deriving the tree set
    // from it covers both uniformly.
    let mut tree_ids: HashSet<TreeId> = HashSet::new();
    for shard in &engine.visited {
        for &k in lock_shard(shard).iter() {
            tree_ids.insert(state_parts(k).1);
        }
    }
    let mhp = engine.interner.parallel_of_trees(tree_ids.iter().copied());

    let state_digests = config.collect_states.then(|| {
        engine
            .visited
            .iter()
            .flat_map(|shard| {
                lock_shard(shard)
                    .iter()
                    .map(|&k| {
                        let (a, t) = state_parts(k);
                        engine.interner.render_state(a, t)
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    });

    let exhausted = engine.meter.exhaustion();
    Ok(Exploration {
        visited: engine.meter.states(),
        truncated: exhausted.is_some(),
        exhausted,
        mhp,
        deadlock_free: engine.deadlock_free.load(Ordering::Relaxed),
        terminals: engine.terminals.load(Ordering::Relaxed),
        state_digests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_robust::PanicFault;
    use fx10_syntax::examples;
    use fx10_syntax::Label;

    fn names(p: &Program, mhp: &BTreeSet<LabelPair>) -> BTreeSet<(String, String)> {
        mhp.iter()
            .map(|&(a, b)| {
                let (x, y) = (p.labels().display(a), p.labels().display(b));
                if x <= y {
                    (x, y)
                } else {
                    (y, x)
                }
            })
            .collect()
    }

    #[test]
    fn straight_line_has_no_mhp() {
        let p = Program::parse("def main() { S1; S2; S3; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        assert!(e.deadlock_free);
        assert!(e.mhp.is_empty());
        assert_eq!(e.terminals, 1);
    }

    #[test]
    fn async_body_parallel_with_continuation() {
        let p = Program::parse("def main() { async { B; } K; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        let n = names(&p, &e.mhp);
        assert!(n.contains(&("B".into(), "K".into())));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn finish_blocks_cross_pairs() {
        let p = Program::parse("def main() { finish { async { B; } } K; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(e.mhp.is_empty(), "finish must prevent B ∥ K: {:?}", e.mhp);
    }

    #[test]
    fn example_2_1_dynamic_mhp_matches_paper() {
        let p = examples::example_2_1();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        assert!(e.deadlock_free);
        let got = names(&p, &e.mhp);
        // The paper says its analysis result is the best possible for this
        // program, and our static labels include the async/finish
        // instructions themselves. Project to the pairs the paper lists
        // over S-labels: the dynamic relation must contain exactly the
        // §2.1 pairs when restricted to pairs of *body* statements, and
        // must not contain S3 or S0 pairs at all.
        for (a, b) in examples::example_2_1_expected_pairs() {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            // (S2, S13) is S2 against the *finish instruction*; all pairs
            // listed are reachable co-enabled instructions.
            assert!(
                got.contains(&(x.to_string(), y.to_string()))
                    || got.contains(&(y.to_string(), x.to_string())),
                "missing dynamic pair ({a},{b}); got {got:?}"
            );
        }
        for pr in &got {
            assert!(pr.0 != "S3" && pr.1 != "S3", "S3 must not run in parallel");
        }
    }

    #[test]
    fn example_2_2_dynamic_excludes_s3_s4() {
        let p = examples::example_2_2();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        let got = names(&p, &e.mhp);
        assert!(
            !got.contains(&("S3".into(), "S4".into())),
            "S3 and S4 cannot happen in parallel (the CI false positive)"
        );
        for (a, b) in examples::example_2_2_expected_pairs() {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            assert!(
                got.contains(&(x.to_string(), y.to_string())),
                "missing dynamic pair ({a},{b}); got {got:?}"
            );
        }
    }

    #[test]
    fn loop_asyncs_self_pair() {
        let p = examples::self_category();
        let e = explore(&p, &[], ExploreConfig::default());
        let s1 = p.labels().lookup("S1").unwrap();
        assert!(
            e.mhp.contains(&(s1, s1)),
            "loop async body must self-overlap: {:?}",
            e.mhp
        );
    }

    #[test]
    fn conclusion_false_positive_is_dynamically_absent() {
        let p = examples::conclusion_false_positive();
        let e = explore(&p, &[], ExploreConfig::default());
        let (s1, s2) = (
            p.labels().lookup("S1").unwrap(),
            p.labels().lookup("S2").unwrap(),
        );
        let key = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        assert!(
            !e.mhp.contains(&key),
            "loop never runs, so (S1,S2) must be dynamically absent"
        );
    }

    #[test]
    fn truncation_reports_lower_bound() {
        // Infinite loop spawning asyncs: state space unbounded.
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 500,
                ..ExploreConfig::default()
            },
        );
        assert!(e.truncated);
        assert_eq!(e.exhausted, Some(Exhaustion::States));
        assert!(e.deadlock_free);
        let b = p.labels().lookup("B").unwrap();
        assert!(e.mhp.contains(&(b, b)), "self pair must be observed");
    }

    #[test]
    fn normalized_exploration_preserves_mhp_and_shrinks_states() {
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
            examples::add_twice(),
        ] {
            let literal = explore(&p, &[], ExploreConfig::default());
            let normalized = explore(
                &p,
                &[],
                ExploreConfig {
                    normalize_admin: true,
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(literal.mhp, normalized.mhp, "MHP must be unchanged");
            assert_eq!(literal.deadlock_free, normalized.deadlock_free);
            assert!(
                normalized.visited <= literal.visited,
                "normalization cannot grow the space"
            );
            assert!(
                normalized.visited < literal.visited,
                "these examples all have administrative states"
            );
        }
    }

    #[test]
    fn canonical_dedup_preserves_verdicts_and_shrinks_symmetric_spaces() {
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
        ] {
            let literal = explore(
                &p,
                &[],
                ExploreConfig {
                    canonical_dedup: false,
                    ..ExploreConfig::default()
                },
            );
            let canonical = explore(&p, &[], ExploreConfig::default());
            assert_eq!(literal.mhp, canonical.mhp, "MHP must be unchanged");
            assert_eq!(literal.deadlock_free, canonical.deadlock_free);
            assert_eq!(literal.terminals, canonical.terminals);
            assert!(
                canonical.visited <= literal.visited,
                "canonicalization cannot grow the space"
            );
        }
        // A space with real ∥-symmetry strictly shrinks.
        let p = Program::parse("def main() { async { B; } async { B; } K; }").unwrap();
        let lit = explore(
            &p,
            &[],
            ExploreConfig {
                canonical_dedup: false,
                ..ExploreConfig::default()
            },
        );
        let canon = explore(&p, &[], ExploreConfig::default());
        assert_eq!(lit.mhp, canon.mhp);
        assert!(
            canon.visited < lit.visited,
            "{} !< {}",
            canon.visited,
            lit.visited
        );
    }

    #[test]
    fn tree_normalization_is_idempotent_and_mhp_monotone() {
        use crate::parallel::parallel;
        let p = examples::example_2_2();
        let s = p.body(p.main()).clone();

        // ∥-only elimination preserves parallel() exactly.
        let par_messy = Tree::par(
            Tree::par(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::stm(s.clone()), Tree::Done),
        );
        let par_norm = par_messy.clone().normalized();
        assert_eq!(parallel(&par_messy), parallel(&par_norm));

        // ▷-elimination may only *reveal* pairs (the ones rule (1) would
        // reach next), never drop them.
        let messy = Tree::par(
            Tree::seq(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::Done, Tree::par(Tree::stm(s), Tree::Done)),
        );
        let norm = messy.clone().normalized();
        assert!(parallel(&messy).is_subset(&parallel(&norm)));
        assert!(!parallel(&norm).is_empty());

        // Idempotent, smaller, and fully administrative trees collapse.
        assert_eq!(norm.clone().normalized(), norm);
        assert!(norm.node_count() < messy.node_count());
        assert!(Tree::par(Tree::Done, Tree::seq(Tree::Done, Tree::Done))
            .normalized()
            .is_done());
    }

    #[test]
    fn parallel_explorer_matches_sequential() {
        for src in [
            "def main() { async { B; } K; }",
            "def f() { async { S5; } } def main() { finish { async { S3; } f(); } S2; }",
        ] {
            let p = Program::parse(src).unwrap();
            let seq = explore(&p, &[], ExploreConfig::default());
            let par = explore_parallel(&p, &[], ExploreConfig::default(), 4);
            assert_eq!(seq.mhp, par.mhp);
            assert_eq!(seq.visited, par.visited);
            assert_eq!(seq.terminals, par.terminals);
            assert_eq!(seq.deadlock_free, par.deadlock_free);
        }
        let p = examples::example_2_1();
        let seq = explore(&p, &[], ExploreConfig::default());
        let par = explore_parallel(&p, &[], ExploreConfig::default(), 8);
        assert_eq!(seq.mhp, par.mhp);
        assert_eq!(seq.visited, par.visited);
    }

    #[test]
    fn interned_engine_matches_cloned_reference_digests() {
        let config = ExploreConfig {
            collect_states: true,
            ..ExploreConfig::default()
        };
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
        ] {
            let cloned =
                explore_budgeted(&p, &[], config, Budget::unlimited(), &CancelToken::new())
                    .unwrap();
            let interned = explore_interned_budgeted(
                &p,
                &[],
                config,
                Budget::unlimited(),
                &CancelToken::new(),
            )
            .unwrap();
            assert_eq!(cloned.state_digests, interned.state_digests);
            assert_eq!(cloned.mhp, interned.mhp);
            assert_eq!(cloned.visited, interned.visited);
            assert_eq!(cloned.terminals, interned.terminals);
        }
    }

    #[test]
    fn adversarial_schedule_computes_the_same_sets() {
        let p = examples::example_2_1();
        let seq = explore(&p, &[], ExploreConfig::default());
        let adv = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            4,
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan {
                adversarial_schedule: true,
                ..FaultPlan::none()
            },
        )
        .unwrap();
        assert_eq!(seq.mhp, adv.mhp);
        assert_eq!(seq.visited, adv.visited);
        assert_eq!(seq.deadlock_free, adv.deadlock_free);
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        let p = examples::example_2_1();
        let err = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            4,
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan {
                panic_worker: Some(PanicFault {
                    worker: 0,
                    after_states: 1,
                }),
                ..FaultPlan::none()
            },
        )
        .unwrap_err();
        match err {
            Fx10Error::WorkerPanicked { worker: 0, message } => {
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let p = examples::example_2_1();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            2,
            Budget::unlimited(),
            &cancel,
            &FaultPlan::none(),
        )
        .unwrap_err();
        assert_eq!(err, Fx10Error::Cancelled);
    }

    #[test]
    fn expired_deadline_yields_partial_tagged_result() {
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        let budget = Budget::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let e = explore_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            budget,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(e.truncated);
        assert_eq!(e.exhausted, Some(Exhaustion::Deadline));
    }

    #[test]
    fn memory_budget_truncates() {
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        let budget = Budget::unlimited().with_max_set_bytes(4_000);
        let e = explore_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            budget,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(e.truncated);
        assert_eq!(e.exhausted, Some(Exhaustion::Memory));
    }

    #[test]
    fn parallel_engine_respects_shared_state_budget() {
        // An unbounded space, a small shared budget: every worker count
        // must stop within `budget + one reservation batch per worker`
        // and tag the truncation.
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        for jobs in [1usize, 2, 8] {
            let e = explore_parallel_budgeted(
                &p,
                &[],
                ExploreConfig::default(),
                jobs,
                Budget::unlimited().with_max_states(300),
                &CancelToken::new(),
                &FaultPlan::none(),
            )
            .unwrap();
            assert!(e.truncated, "jobs={jobs}");
            assert_eq!(e.exhausted, Some(Exhaustion::States), "jobs={jobs}");
            assert!(
                e.visited <= 300 + jobs,
                "jobs={jobs}: visited {} exceeds budget + one batch per worker",
                e.visited
            );
        }
    }

    #[test]
    fn ftlabels_front_is_subset_of_mhp_participants() {
        // Sanity link between parallel() and explored pairs: all labels in
        // pairs must be real labels of the program.
        let p = examples::example_2_2();
        let e = explore(&p, &[], ExploreConfig::default());
        for &(a, b) in &e.mhp {
            assert!((a.index()) < p.label_count());
            assert!((b.index()) < p.label_count());
            let _ = Label(a.0); // labels round-trip
        }
    }

    fn io_err() -> Fx10Error {
        Fx10Error::Io {
            path: "ckpt".into(),
            message: "disk full".into(),
        }
    }

    #[test]
    fn settle_precedence_panic_beats_everything() {
        let e = settle_outcome(
            Some((3, "boom".into())),
            Some((1, 500)),
            true,
            Some(io_err()),
            true,
        )
        .unwrap_err();
        assert!(matches!(e, Fx10Error::WorkerPanicked { worker: 3, .. }));
    }

    #[test]
    fn settle_precedence_stall_beats_kill_io_and_cancel() {
        let e = settle_outcome(None, Some((1, 500)), true, Some(io_err()), true).unwrap_err();
        assert!(matches!(
            e,
            Fx10Error::WorkerStalled {
                worker: 1,
                stalled_ms: 500
            }
        ));
    }

    #[test]
    fn settle_precedence_kill_beats_io_and_cancel() {
        let e = settle_outcome(None, None, true, Some(io_err()), true).unwrap_err();
        assert!(matches!(e, Fx10Error::Cancelled));
    }

    #[test]
    fn settle_precedence_ckpt_io_beats_cancel() {
        let e = settle_outcome(None, None, false, Some(io_err()), true).unwrap_err();
        assert!(matches!(e, Fx10Error::Io { .. }));
    }

    #[test]
    fn settle_precedence_cancel_last_and_clean_run_ok() {
        let e = settle_outcome(None, None, false, None, true).unwrap_err();
        assert!(matches!(e, Fx10Error::Cancelled));
        assert!(settle_outcome(None, None, false, None, false).is_ok());
    }
}
