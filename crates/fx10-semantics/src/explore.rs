//! Exhaustive state-space exploration.
//!
//! For a program `p`, the paper defines
//!
//! ```text
//! MHP(p) = ∪ { parallel(T) | (p, A₀, ⟨s₀⟩) →* (p, A, T) }
//! ```
//!
//! [`explore`] enumerates the reachable states of `(p, A₀)` breadth-first
//! and accumulates exactly this union — the *dynamic*, ground-truth MHP
//! relation. On terminating programs with a sufficient state budget the
//! result is exact; when the budget truncates the search the result is an
//! *under*-approximation, which is still sound to compare against the
//! static analysis (`dynamic ⊆ static` must hold either way).
//!
//! Along the way the explorer machine-checks **Theorem 1 (deadlock
//! freedom)**: every visited state is either `√` or has at least one
//! successor.
//!
//! ## Robustness
//!
//! The budgeted entry points ([`explore_budgeted`],
//! [`explore_parallel_budgeted`]) accept a [`Budget`] (state cap,
//! wall-clock deadline, peak visited-set memory), a [`CancelToken`], and
//! — for the parallel engine — a [`FaultPlan`]. Budget exhaustion
//! returns a *partial* [`Exploration`] tagged with its [`Exhaustion`]
//! provenance; cancellation returns [`Fx10Error::Cancelled`]; a worker
//! panic (organic or injected) is contained by `catch_unwind` and
//! surfaces as [`Fx10Error::WorkerPanicked`] instead of aborting the
//! process. Visited-set shards use `std::sync::Mutex` with explicit
//! poison recovery so one panicked worker cannot wedge the others.

use crate::parallel::{parallel, LabelPair};
use crate::state::ArrayState;
use crate::step::{initial_tree, successors};
use crate::tree::Tree;
use fx10_robust::{Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error};
use fx10_syntax::Program;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop expanding after this many distinct states (the search is then
    /// marked truncated). The default (200 000) comfortably covers the
    /// paper's examples.
    pub max_states: usize,
    /// Collapse the administrative `√`-elimination steps (rules 1, 3, 4)
    /// eagerly via [`Tree::normalized`]. Sound for dynamic MHP (the
    /// collapsed states contribute no pairs of their own) and typically
    /// shrinks the state space severalfold; off by default so the
    /// explorer matches the literal semantics.
    pub normalize_admin: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 200_000,
            normalize_admin: false,
        }
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of distinct states visited.
    pub visited: usize,
    /// True when a budget cut the search short (the MHP set is then a
    /// lower bound).
    pub truncated: bool,
    /// Which resource truncated the search, when `truncated` is true.
    /// `Some(States)` covers both the legacy `max_states` cap and an
    /// explicit budget cap.
    pub exhausted: Option<Exhaustion>,
    /// `∪ parallel(T)` over all visited states — dynamic MHP, as
    /// unordered label pairs.
    pub mhp: BTreeSet<LabelPair>,
    /// Theorem 1 verdict: every visited non-`√` state had a successor.
    pub deadlock_free: bool,
    /// Number of terminal (`√`) states reached.
    pub terminals: usize,
}

/// One state of the transition system (the program is fixed).
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    array: ArrayState,
    tree: Tree,
}

impl State {
    /// Approximate heap footprint, for the peak-set-memory budget.
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<State>()
            + self.tree.node_count() * 48
            + std::mem::size_of_val(self.array.cells())
    }
}

/// How often the sequential explorer polls the clock and cancel token.
const POLL_STRIDE: usize = 256;

/// Sequential breadth-first exploration from `(A₀(input), ⟨s₀⟩)`.
///
/// Infallible legacy entry point: unlimited budget, no cancellation.
pub fn explore(p: &Program, input: &[i64], config: ExploreConfig) -> Exploration {
    match explore_budgeted(p, input, config, Budget::unlimited(), &CancelToken::new()) {
        Ok(e) => e,
        // Unreachable: with no cancel token holder and no deadline the
        // budgeted explorer cannot fail — but never panic on a library
        // path; degrade to an empty truncated result instead.
        Err(_) => Exploration {
            visited: 0,
            truncated: true,
            exhausted: Some(Exhaustion::States),
            mhp: BTreeSet::new(),
            deadlock_free: true,
            terminals: 0,
        },
    }
}

/// Sequential breadth-first exploration under a [`Budget`] and a
/// [`CancelToken`].
///
/// Budget exhaustion (states, deadline, memory) returns `Ok` with a
/// partial, [`Exploration::exhausted`]-tagged result; cancellation
/// returns [`Fx10Error::Cancelled`].
pub fn explore_budgeted(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<Exploration, Fx10Error> {
    // A pre-cancelled token stops before any work; the in-flight poll
    // below only fires on the stride.
    cancel.check()?;
    let max_states = budget
        .max_states
        .map_or(config.max_states, |b| b.min(config.max_states));
    let norm = |t: Tree| {
        if config.normalize_admin {
            t.normalized()
        } else {
            t
        }
    };
    let init = State {
        array: ArrayState::with_input(p, input),
        tree: norm(initial_tree(p)),
    };
    let mut approx_bytes = init.approx_bytes();
    let mut visited: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    let mut mhp = BTreeSet::new();
    let mut exhausted: Option<Exhaustion> = None;
    let mut deadlock_free = true;
    let mut terminals = 0usize;
    let mut processed = 0usize;

    'bfs: while let Some(st) = queue.pop_front() {
        processed += 1;
        if processed.is_multiple_of(POLL_STRIDE) {
            cancel.check()?;
            if budget.deadline_exceeded() {
                exhausted = Some(Exhaustion::Deadline);
                break 'bfs;
            }
        }
        mhp.extend(parallel(&st.tree));
        if st.tree.is_done() {
            terminals += 1;
            continue;
        }
        let succ = successors(p, &st.array, &st.tree);
        if succ.is_empty() {
            deadlock_free = false; // would falsify Theorem 1
            continue;
        }
        for s in succ {
            if visited.len() >= max_states {
                exhausted = Some(Exhaustion::States);
                break 'bfs;
            }
            if budget.memory_exhausted(approx_bytes) {
                exhausted = Some(Exhaustion::Memory);
                break 'bfs;
            }
            let next = State {
                array: s.array,
                tree: norm(s.tree),
            };
            if visited.insert(next.clone()) {
                approx_bytes += next.approx_bytes();
                queue.push_back(next);
            }
        }
    }

    // Drain remaining queued states into the MHP union so truncation never
    // drops information we already paid for.
    for st in queue {
        mhp.extend(parallel(&st.tree));
    }

    Ok(Exploration {
        visited: visited.len(),
        truncated: exhausted.is_some(),
        exhausted,
        mhp,
        deadlock_free,
        terminals,
    })
}

const SHARDS: usize = 64;

fn shard_of(state: &State) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    state.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Locks a shard, recovering from poisoning: a worker that panicked while
/// holding the lock leaves the set in a superset-consistent state (the
/// insert either happened or did not), so continuing is safe for a
/// visited-set whose only invariant is "grows monotonically".
fn lock_shard<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Multi-threaded exploration. Computes the same [`Exploration`] sets as
/// [`explore`] (`visited` may differ by a few states around the truncation
/// point; on non-truncated runs all fields except queue-order artifacts
/// are identical). Infallible legacy entry point.
pub fn explore_parallel(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    threads: usize,
) -> Exploration {
    match explore_parallel_budgeted(
        p,
        input,
        config,
        threads,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
    ) {
        Ok(e) => e,
        Err(_) => Exploration {
            visited: 0,
            truncated: true,
            exhausted: Some(Exhaustion::States),
            mhp: BTreeSet::new(),
            deadlock_free: true,
            terminals: 0,
        },
    }
}

/// Shared coordination state of one parallel exploration.
struct Crew {
    /// Work queue; popped FIFO (or LIFO under an adversarial plan).
    queue: Mutex<VecDeque<State>>,
    /// States handed out but not yet fully expanded.
    pending: AtomicUsize,
    /// Distinct states inserted across all shards.
    visited_count: AtomicUsize,
    /// Approximate bytes held by the visited shards.
    approx_bytes: AtomicUsize,
    /// First budget wall hit, encoded (0 = none).
    exhausted: Mutex<Option<Exhaustion>>,
    /// Set when any stop condition fires (budget, cancel, panic): workers
    /// drain out promptly instead of spinning.
    stop: AtomicBool,
    /// Theorem-1 verdict.
    deadlock_free: AtomicBool,
    /// Terminal states seen.
    terminals: AtomicUsize,
    /// First worker panic (index, rendered payload).
    panic: Mutex<Option<(usize, String)>>,
    /// Cancellation observed by any worker.
    cancelled: AtomicBool,
}

/// Multi-threaded exploration under a [`Budget`], a [`CancelToken`] and a
/// [`FaultPlan`].
///
/// Worker panics — organic or injected by the plan — are caught per
/// worker; the first one is reported as [`Fx10Error::WorkerPanicked`]
/// after all workers have drained (the process never aborts, and no
/// worker is left blocked). Cancellation wins over budget exhaustion;
/// panics win over both.
pub fn explore_parallel_budgeted(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    threads: usize,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
) -> Result<Exploration, Fx10Error> {
    cancel.check()?;
    let threads = threads.max(1);
    let max_states = faults
        .effective_max_states(budget.max_states)
        .map_or(config.max_states, |b| b.min(config.max_states));
    let norm = |t: Tree| {
        if config.normalize_admin {
            t.normalized()
        } else {
            t
        }
    };
    let init = State {
        array: ArrayState::with_input(p, input),
        tree: norm(initial_tree(p)),
    };

    let visited: Vec<Mutex<HashSet<State>>> =
        (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect();
    let crew = Crew {
        queue: Mutex::new(VecDeque::new()),
        pending: AtomicUsize::new(0),
        visited_count: AtomicUsize::new(1),
        approx_bytes: AtomicUsize::new(init.approx_bytes()),
        exhausted: Mutex::new(None),
        stop: AtomicBool::new(false),
        deadlock_free: AtomicBool::new(true),
        terminals: AtomicUsize::new(0),
        panic: Mutex::new(None),
        cancelled: AtomicBool::new(false),
    };
    lock_shard(&visited[shard_of(&init)]).insert(init.clone());
    crew.pending.store(1, Ordering::SeqCst);
    lock_shard(&crew.queue).push_back(init);

    let mut partial_mhp: Vec<BTreeSet<LabelPair>> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker_id in 0..threads {
            let crew = &crew;
            let visited = &visited;
            let norm = &norm;
            handles.push(scope.spawn(move || {
                let mut local_mhp: BTreeSet<LabelPair> = BTreeSet::new();
                let mut processed = 0u64;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    worker_loop(
                        p,
                        budget,
                        cancel,
                        faults,
                        crew,
                        visited,
                        norm,
                        worker_id,
                        max_states,
                        &mut local_mhp,
                        &mut processed,
                    )
                }));
                if let Err(payload) = result {
                    // Contain the panic: record it, release the state we
                    // were holding, and tell everyone to drain out.
                    let mut first = lock_shard(&crew.panic);
                    first.get_or_insert_with(|| {
                        (worker_id, fx10_robust::panic_message(payload.as_ref()))
                    });
                    drop(first);
                    crew.stop.store(true, Ordering::SeqCst);
                    // The popped state was never re-queued; make the
                    // pending count consistent so nobody waits on it.
                    crew.pending.fetch_sub(1, Ordering::SeqCst);
                }
                local_mhp
            }));
        }
        for h in handles {
            // Worker closures never unwind (the catch is inside), so the
            // join itself cannot fail; fall back to an empty set rather
            // than propagating a panic out of the library.
            partial_mhp.push(h.join().unwrap_or_default());
        }
    });

    if let Some((worker, message)) = lock_shard(&crew.panic).take() {
        return Err(Fx10Error::WorkerPanicked { worker, message });
    }
    if crew.cancelled.load(Ordering::SeqCst) || cancel.is_cancelled() {
        return Err(Fx10Error::Cancelled);
    }

    let mut mhp = BTreeSet::new();
    for part in partial_mhp {
        mhp.extend(part);
    }

    let exhausted = *lock_shard(&crew.exhausted);
    Ok(Exploration {
        visited: crew.visited_count.load(Ordering::Relaxed),
        truncated: exhausted.is_some(),
        exhausted,
        mhp,
        deadlock_free: crew.deadlock_free.load(Ordering::Relaxed),
        terminals: crew.terminals.load(Ordering::Relaxed),
    })
}

/// One worker's drain loop. Panics escape to the `catch_unwind` in the
/// spawner; every other exit path is a clean drain.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    p: &Program,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
    crew: &Crew,
    visited: &[Mutex<HashSet<State>>],
    norm: &impl Fn(Tree) -> Tree,
    worker_id: usize,
    max_states: usize,
    local_mhp: &mut BTreeSet<LabelPair>,
    processed: &mut u64,
) {
    loop {
        if crew.stop.load(Ordering::SeqCst) {
            break;
        }
        let next = {
            let mut q = lock_shard(&crew.queue);
            if faults.adversarial_schedule {
                q.pop_back()
            } else {
                q.pop_front()
            }
        };
        let Some(st) = next else {
            if crew.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };

        *processed += 1;
        if faults.should_panic(worker_id, *processed) {
            panic!("injected fault: worker {worker_id} after {processed} state(s)");
        }
        if cancel.is_cancelled() {
            crew.cancelled.store(true, Ordering::SeqCst);
            crew.stop.store(true, Ordering::SeqCst);
            crew.pending.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        if budget.deadline_exceeded() {
            lock_shard(&crew.exhausted).get_or_insert(Exhaustion::Deadline);
            crew.stop.store(true, Ordering::SeqCst);
            crew.pending.fetch_sub(1, Ordering::SeqCst);
            break;
        }

        local_mhp.extend(parallel(&st.tree));
        if st.tree.is_done() {
            crew.terminals.fetch_add(1, Ordering::Relaxed);
        } else {
            let succ = successors(p, &st.array, &st.tree);
            if succ.is_empty() {
                crew.deadlock_free.store(false, Ordering::Relaxed);
            }
            for s in succ {
                if crew.visited_count.load(Ordering::Relaxed) >= max_states {
                    lock_shard(&crew.exhausted).get_or_insert(Exhaustion::States);
                    crew.stop.store(true, Ordering::SeqCst);
                    break;
                }
                if budget.memory_exhausted(crew.approx_bytes.load(Ordering::Relaxed)) {
                    lock_shard(&crew.exhausted).get_or_insert(Exhaustion::Memory);
                    crew.stop.store(true, Ordering::SeqCst);
                    break;
                }
                let next = State {
                    array: s.array,
                    tree: norm(s.tree),
                };
                let is_new = lock_shard(&visited[shard_of(&next)]).insert(next.clone());
                if is_new {
                    crew.visited_count.fetch_add(1, Ordering::Relaxed);
                    crew.approx_bytes
                        .fetch_add(next.approx_bytes(), Ordering::Relaxed);
                    crew.pending.fetch_add(1, Ordering::SeqCst);
                    lock_shard(&crew.queue).push_back(next);
                }
            }
        }
        crew.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_robust::PanicFault;
    use fx10_syntax::examples;
    use fx10_syntax::Label;

    fn names(p: &Program, mhp: &BTreeSet<LabelPair>) -> BTreeSet<(String, String)> {
        mhp.iter()
            .map(|&(a, b)| {
                let (x, y) = (p.labels().display(a), p.labels().display(b));
                if x <= y {
                    (x, y)
                } else {
                    (y, x)
                }
            })
            .collect()
    }

    #[test]
    fn straight_line_has_no_mhp() {
        let p = Program::parse("def main() { S1; S2; S3; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        assert!(e.deadlock_free);
        assert!(e.mhp.is_empty());
        assert_eq!(e.terminals, 1);
    }

    #[test]
    fn async_body_parallel_with_continuation() {
        let p = Program::parse("def main() { async { B; } K; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        let n = names(&p, &e.mhp);
        assert!(n.contains(&("B".into(), "K".into())));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn finish_blocks_cross_pairs() {
        let p = Program::parse("def main() { finish { async { B; } } K; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(e.mhp.is_empty(), "finish must prevent B ∥ K: {:?}", e.mhp);
    }

    #[test]
    fn example_2_1_dynamic_mhp_matches_paper() {
        let p = examples::example_2_1();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        assert!(e.deadlock_free);
        let got = names(&p, &e.mhp);
        // The paper says its analysis result is the best possible for this
        // program, and our static labels include the async/finish
        // instructions themselves. Project to the pairs the paper lists
        // over S-labels: the dynamic relation must contain exactly the
        // §2.1 pairs when restricted to pairs of *body* statements, and
        // must not contain S3 or S0 pairs at all.
        for (a, b) in examples::example_2_1_expected_pairs() {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            // (S2, S13) is S2 against the *finish instruction*; all pairs
            // listed are reachable co-enabled instructions.
            assert!(
                got.contains(&(x.to_string(), y.to_string()))
                    || got.contains(&(y.to_string(), x.to_string())),
                "missing dynamic pair ({a},{b}); got {got:?}"
            );
        }
        for pr in &got {
            assert!(pr.0 != "S3" && pr.1 != "S3", "S3 must not run in parallel");
        }
    }

    #[test]
    fn example_2_2_dynamic_excludes_s3_s4() {
        let p = examples::example_2_2();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        let got = names(&p, &e.mhp);
        assert!(
            !got.contains(&("S3".into(), "S4".into())),
            "S3 and S4 cannot happen in parallel (the CI false positive)"
        );
        for (a, b) in examples::example_2_2_expected_pairs() {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            assert!(
                got.contains(&(x.to_string(), y.to_string())),
                "missing dynamic pair ({a},{b}); got {got:?}"
            );
        }
    }

    #[test]
    fn loop_asyncs_self_pair() {
        let p = examples::self_category();
        let e = explore(&p, &[], ExploreConfig::default());
        let s1 = p.labels().lookup("S1").unwrap();
        assert!(
            e.mhp.contains(&(s1, s1)),
            "loop async body must self-overlap: {:?}",
            e.mhp
        );
    }

    #[test]
    fn conclusion_false_positive_is_dynamically_absent() {
        let p = examples::conclusion_false_positive();
        let e = explore(&p, &[], ExploreConfig::default());
        let (s1, s2) = (
            p.labels().lookup("S1").unwrap(),
            p.labels().lookup("S2").unwrap(),
        );
        let key = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        assert!(
            !e.mhp.contains(&key),
            "loop never runs, so (S1,S2) must be dynamically absent"
        );
    }

    #[test]
    fn truncation_reports_lower_bound() {
        // Infinite loop spawning asyncs: state space unbounded.
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 500,
                ..ExploreConfig::default()
            },
        );
        assert!(e.truncated);
        assert_eq!(e.exhausted, Some(Exhaustion::States));
        assert!(e.deadlock_free);
        let b = p.labels().lookup("B").unwrap();
        assert!(e.mhp.contains(&(b, b)), "self pair must be observed");
    }

    #[test]
    fn normalized_exploration_preserves_mhp_and_shrinks_states() {
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
            examples::add_twice(),
        ] {
            let literal = explore(&p, &[], ExploreConfig::default());
            let normalized = explore(
                &p,
                &[],
                ExploreConfig {
                    normalize_admin: true,
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(literal.mhp, normalized.mhp, "MHP must be unchanged");
            assert_eq!(literal.deadlock_free, normalized.deadlock_free);
            assert!(
                normalized.visited <= literal.visited,
                "normalization cannot grow the space"
            );
            assert!(
                normalized.visited < literal.visited,
                "these examples all have administrative states"
            );
        }
    }

    #[test]
    fn tree_normalization_is_idempotent_and_mhp_monotone() {
        use crate::parallel::parallel;
        let p = examples::example_2_2();
        let s = p.body(p.main()).clone();

        // ∥-only elimination preserves parallel() exactly.
        let par_messy = Tree::par(
            Tree::par(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::stm(s.clone()), Tree::Done),
        );
        let par_norm = par_messy.clone().normalized();
        assert_eq!(parallel(&par_messy), parallel(&par_norm));

        // ▷-elimination may only *reveal* pairs (the ones rule (1) would
        // reach next), never drop them.
        let messy = Tree::par(
            Tree::seq(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::Done, Tree::par(Tree::stm(s), Tree::Done)),
        );
        let norm = messy.clone().normalized();
        assert!(parallel(&messy).is_subset(&parallel(&norm)));
        assert!(!parallel(&norm).is_empty());

        // Idempotent, smaller, and fully administrative trees collapse.
        assert_eq!(norm.clone().normalized(), norm);
        assert!(norm.node_count() < messy.node_count());
        assert!(Tree::par(Tree::Done, Tree::seq(Tree::Done, Tree::Done))
            .normalized()
            .is_done());
    }

    #[test]
    fn parallel_explorer_matches_sequential() {
        for src in [
            "def main() { async { B; } K; }",
            "def f() { async { S5; } } def main() { finish { async { S3; } f(); } S2; }",
        ] {
            let p = Program::parse(src).unwrap();
            let seq = explore(&p, &[], ExploreConfig::default());
            let par = explore_parallel(&p, &[], ExploreConfig::default(), 4);
            assert_eq!(seq.mhp, par.mhp);
            assert_eq!(seq.visited, par.visited);
            assert_eq!(seq.terminals, par.terminals);
            assert_eq!(seq.deadlock_free, par.deadlock_free);
        }
        let p = examples::example_2_1();
        let seq = explore(&p, &[], ExploreConfig::default());
        let par = explore_parallel(&p, &[], ExploreConfig::default(), 8);
        assert_eq!(seq.mhp, par.mhp);
        assert_eq!(seq.visited, par.visited);
    }

    #[test]
    fn adversarial_schedule_computes_the_same_sets() {
        let p = examples::example_2_1();
        let seq = explore(&p, &[], ExploreConfig::default());
        let adv = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            4,
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan {
                adversarial_schedule: true,
                ..FaultPlan::none()
            },
        )
        .unwrap();
        assert_eq!(seq.mhp, adv.mhp);
        assert_eq!(seq.visited, adv.visited);
        assert_eq!(seq.deadlock_free, adv.deadlock_free);
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        let p = examples::example_2_1();
        let err = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            4,
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan {
                panic_worker: Some(PanicFault {
                    worker: 0,
                    after_states: 1,
                }),
                ..FaultPlan::none()
            },
        )
        .unwrap_err();
        match err {
            Fx10Error::WorkerPanicked { worker: 0, message } => {
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let p = examples::example_2_1();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = explore_parallel_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            2,
            Budget::unlimited(),
            &cancel,
            &FaultPlan::none(),
        )
        .unwrap_err();
        assert_eq!(err, Fx10Error::Cancelled);
    }

    #[test]
    fn expired_deadline_yields_partial_tagged_result() {
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        let budget = Budget::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let e = explore_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            budget,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(e.truncated);
        assert_eq!(e.exhausted, Some(Exhaustion::Deadline));
    }

    #[test]
    fn memory_budget_truncates() {
        let p =
            Program::parse("def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }").unwrap();
        let budget = Budget::unlimited().with_max_set_bytes(4_000);
        let e = explore_budgeted(
            &p,
            &[],
            ExploreConfig::default(),
            budget,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(e.truncated);
        assert_eq!(e.exhausted, Some(Exhaustion::Memory));
    }

    #[test]
    fn ftlabels_front_is_subset_of_mhp_participants() {
        // Sanity link between parallel() and explored pairs: all labels in
        // pairs must be real labels of the program.
        let p = examples::example_2_2();
        let e = explore(&p, &[], ExploreConfig::default());
        for &(a, b) in &e.mhp {
            assert!((a.index()) < p.label_count());
            assert!((b.index()) < p.label_count());
            let _ = Label(a.0); // labels round-trip
        }
    }
}
