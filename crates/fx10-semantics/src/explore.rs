//! Exhaustive state-space exploration.
//!
//! For a program `p`, the paper defines
//!
//! ```text
//! MHP(p) = ∪ { parallel(T) | (p, A₀, ⟨s₀⟩) →* (p, A, T) }
//! ```
//!
//! [`explore`] enumerates the reachable states of `(p, A₀)` breadth-first
//! and accumulates exactly this union — the *dynamic*, ground-truth MHP
//! relation. On terminating programs with a sufficient state budget the
//! result is exact; when the budget truncates the search the result is an
//! *under*-approximation, which is still sound to compare against the
//! static analysis (`dynamic ⊆ static` must hold either way).
//!
//! Along the way the explorer machine-checks **Theorem 1 (deadlock
//! freedom)**: every visited state is either `√` or has at least one
//! successor.
//!
//! [`explore_parallel`] is a multi-threaded version (crossbeam scoped
//! threads, sharded `parking_lot`-protected visited tables) for larger
//! state spaces; it computes the same sets.

use crate::parallel::{parallel, LabelPair};
use crate::state::ArrayState;
use crate::step::{initial_tree, successors};
use crate::tree::Tree;
use fx10_syntax::Program;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop expanding after this many distinct states (the search is then
    /// marked truncated). The default (200 000) comfortably covers the
    /// paper's examples.
    pub max_states: usize,
    /// Collapse the administrative `√`-elimination steps (rules 1, 3, 4)
    /// eagerly via [`Tree::normalized`]. Sound for dynamic MHP (the
    /// collapsed states contribute no pairs of their own) and typically
    /// shrinks the state space severalfold; off by default so the
    /// explorer matches the literal semantics.
    pub normalize_admin: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 200_000,
            normalize_admin: false,
        }
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of distinct states visited.
    pub visited: usize,
    /// True when `max_states` cut the search short (the MHP set is then a
    /// lower bound).
    pub truncated: bool,
    /// `∪ parallel(T)` over all visited states — dynamic MHP, as
    /// unordered label pairs.
    pub mhp: BTreeSet<LabelPair>,
    /// Theorem 1 verdict: every visited non-`√` state had a successor.
    pub deadlock_free: bool,
    /// Number of terminal (`√`) states reached.
    pub terminals: usize,
}

/// One state of the transition system (the program is fixed).
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    array: ArrayState,
    tree: Tree,
}

/// Sequential breadth-first exploration from `(A₀(input), ⟨s₀⟩)`.
pub fn explore(p: &Program, input: &[i64], config: ExploreConfig) -> Exploration {
    let norm = |t: Tree| if config.normalize_admin { t.normalized() } else { t };
    let init = State {
        array: ArrayState::with_input(p, input),
        tree: norm(initial_tree(p)),
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    let mut mhp = BTreeSet::new();
    let mut truncated = false;
    let mut deadlock_free = true;
    let mut terminals = 0usize;

    while let Some(st) = queue.pop_front() {
        mhp.extend(parallel(&st.tree));
        if st.tree.is_done() {
            terminals += 1;
            continue;
        }
        let succ = successors(p, &st.array, &st.tree);
        if succ.is_empty() {
            deadlock_free = false; // would falsify Theorem 1
            continue;
        }
        for s in succ {
            if visited.len() >= config.max_states {
                truncated = true;
                break;
            }
            let next = State {
                array: s.array,
                tree: norm(s.tree),
            };
            if visited.insert(next.clone()) {
                queue.push_back(next);
            }
        }
        if truncated {
            break;
        }
    }

    // Drain remaining queued states into the MHP union so truncation never
    // drops information we already paid for.
    for st in queue {
        mhp.extend(parallel(&st.tree));
    }

    Exploration {
        visited: visited.len(),
        truncated,
        mhp,
        deadlock_free,
        terminals,
    }
}

const SHARDS: usize = 64;

fn shard_of(state: &State) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    state.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Multi-threaded exploration. Computes the same [`Exploration`] sets as
/// [`explore`] (`visited` may differ by a few states around the truncation
/// point; on non-truncated runs all fields except queue-order artifacts
/// are identical).
pub fn explore_parallel(
    p: &Program,
    input: &[i64],
    config: ExploreConfig,
    threads: usize,
) -> Exploration {
    let threads = threads.max(1);
    let norm = |t: Tree| if config.normalize_admin { t.normalized() } else { t };
    let init = State {
        array: ArrayState::with_input(p, input),
        tree: norm(initial_tree(p)),
    };

    let visited: Vec<Mutex<HashSet<State>>> =
        (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect();
    let visited_count = AtomicUsize::new(0);
    let pending = AtomicUsize::new(0);
    let truncated = AtomicBool::new(false);
    let deadlock_free = AtomicBool::new(true);
    let terminals = AtomicUsize::new(0);

    let (tx, rx) = crossbeam::channel::unbounded::<State>();
    visited[shard_of(&init)].lock().insert(init.clone());
    visited_count.fetch_add(1, Ordering::Relaxed);
    pending.fetch_add(1, Ordering::SeqCst);
    tx.send(init).unwrap();

    let mut partial_mhp: Vec<BTreeSet<LabelPair>> = Vec::new();

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rx = rx.clone();
            let tx = tx.clone();
            let visited = &visited;
            let visited_count = &visited_count;
            let pending = &pending;
            let truncated = &truncated;
            let deadlock_free = &deadlock_free;
            let terminals = &terminals;
            handles.push(scope.spawn(move |_| {
                let mut local_mhp: BTreeSet<LabelPair> = BTreeSet::new();
                loop {
                    match rx.try_recv() {
                        Ok(st) => {
                            local_mhp.extend(parallel(&st.tree));
                            if st.tree.is_done() {
                                terminals.fetch_add(1, Ordering::Relaxed);
                            } else {
                                let succ = successors(p, &st.array, &st.tree);
                                if succ.is_empty() {
                                    deadlock_free.store(false, Ordering::Relaxed);
                                }
                                for s in succ {
                                    if visited_count.load(Ordering::Relaxed) >= config.max_states {
                                        truncated.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                    let next = State {
                                        array: s.array,
                                        tree: norm(s.tree),
                                    };
                                    let is_new =
                                        visited[shard_of(&next)].lock().insert(next.clone());
                                    if is_new {
                                        visited_count.fetch_add(1, Ordering::Relaxed);
                                        pending.fetch_add(1, Ordering::SeqCst);
                                        tx.send(next).unwrap();
                                    }
                                }
                            }
                            pending.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(crossbeam::channel::TryRecvError::Empty) => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        Err(crossbeam::channel::TryRecvError::Disconnected) => break,
                    }
                }
                local_mhp
            }));
        }
        drop(tx);
        for h in handles {
            partial_mhp.push(h.join().unwrap());
        }
    })
    .expect("explorer threads must not panic");

    let mut mhp = BTreeSet::new();
    for part in partial_mhp {
        mhp.extend(part);
    }

    Exploration {
        visited: visited_count.load(Ordering::Relaxed),
        truncated: truncated.load(Ordering::Relaxed),
        mhp,
        deadlock_free: deadlock_free.load(Ordering::Relaxed),
        terminals: terminals.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::examples;
    use fx10_syntax::Label;

    fn names(p: &Program, mhp: &BTreeSet<LabelPair>) -> BTreeSet<(String, String)> {
        mhp.iter()
            .map(|&(a, b)| {
                let (x, y) = (p.labels().display(a), p.labels().display(b));
                if x <= y {
                    (x, y)
                } else {
                    (y, x)
                }
            })
            .collect()
    }

    #[test]
    fn straight_line_has_no_mhp() {
        let p = Program::parse("def main() { S1; S2; S3; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        assert!(e.deadlock_free);
        assert!(e.mhp.is_empty());
        assert_eq!(e.terminals, 1);
    }

    #[test]
    fn async_body_parallel_with_continuation() {
        let p = Program::parse("def main() { async { B; } K; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        let n = names(&p, &e.mhp);
        assert!(n.contains(&("B".into(), "K".into())));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn finish_blocks_cross_pairs() {
        let p = Program::parse("def main() { finish { async { B; } } K; }").unwrap();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(e.mhp.is_empty(), "finish must prevent B ∥ K: {:?}", e.mhp);
    }

    #[test]
    fn example_2_1_dynamic_mhp_matches_paper() {
        let p = examples::example_2_1();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        assert!(e.deadlock_free);
        let got = names(&p, &e.mhp);
        // The paper says its analysis result is the best possible for this
        // program, and our static labels include the async/finish
        // instructions themselves. Project to the pairs the paper lists
        // over S-labels: the dynamic relation must contain exactly the
        // §2.1 pairs when restricted to pairs of *body* statements, and
        // must not contain S3 or S0 pairs at all.
        for (a, b) in examples::example_2_1_expected_pairs() {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            // (S2, S13) is S2 against the *finish instruction*; all pairs
            // listed are reachable co-enabled instructions.
            assert!(
                got.contains(&(x.to_string(), y.to_string()))
                    || got.contains(&(y.to_string(), x.to_string())),
                "missing dynamic pair ({a},{b}); got {got:?}"
            );
        }
        for pr in &got {
            assert!(pr.0 != "S3" && pr.1 != "S3", "S3 must not run in parallel");
        }
    }

    #[test]
    fn example_2_2_dynamic_excludes_s3_s4() {
        let p = examples::example_2_2();
        let e = explore(&p, &[], ExploreConfig::default());
        assert!(!e.truncated);
        let got = names(&p, &e.mhp);
        assert!(
            !got.contains(&("S3".into(), "S4".into())),
            "S3 and S4 cannot happen in parallel (the CI false positive)"
        );
        for (a, b) in examples::example_2_2_expected_pairs() {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            assert!(
                got.contains(&(x.to_string(), y.to_string())),
                "missing dynamic pair ({a},{b}); got {got:?}"
            );
        }
    }

    #[test]
    fn loop_asyncs_self_pair() {
        let p = examples::self_category();
        let e = explore(&p, &[], ExploreConfig::default());
        let s1 = p.labels().lookup("S1").unwrap();
        assert!(
            e.mhp.contains(&(s1, s1)),
            "loop async body must self-overlap: {:?}",
            e.mhp
        );
    }

    #[test]
    fn conclusion_false_positive_is_dynamically_absent() {
        let p = examples::conclusion_false_positive();
        let e = explore(&p, &[], ExploreConfig::default());
        let (s1, s2) = (
            p.labels().lookup("S1").unwrap(),
            p.labels().lookup("S2").unwrap(),
        );
        let key = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        assert!(
            !e.mhp.contains(&key),
            "loop never runs, so (S1,S2) must be dynamically absent"
        );
    }

    #[test]
    fn truncation_reports_lower_bound() {
        // Infinite loop spawning asyncs: state space unbounded.
        let p = Program::parse(
            "def main() { a[0] = 1; while (a[0] != 0) { async { B; } } }",
        )
        .unwrap();
        let e = explore(&p, &[], ExploreConfig { max_states: 500, ..ExploreConfig::default() });
        assert!(e.truncated);
        assert!(e.deadlock_free);
        let b = p.labels().lookup("B").unwrap();
        assert!(e.mhp.contains(&(b, b)), "self pair must be observed");
    }

    #[test]
    fn normalized_exploration_preserves_mhp_and_shrinks_states() {
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
            examples::add_twice(),
        ] {
            let literal = explore(&p, &[], ExploreConfig::default());
            let normalized = explore(
                &p,
                &[],
                ExploreConfig {
                    normalize_admin: true,
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(literal.mhp, normalized.mhp, "MHP must be unchanged");
            assert_eq!(literal.deadlock_free, normalized.deadlock_free);
            assert!(
                normalized.visited <= literal.visited,
                "normalization cannot grow the space"
            );
            assert!(
                normalized.visited < literal.visited,
                "these examples all have administrative states"
            );
        }
    }

    #[test]
    fn tree_normalization_is_idempotent_and_mhp_monotone() {
        use crate::parallel::parallel;
        let p = examples::example_2_2();
        let s = p.body(p.main()).clone();

        // ∥-only elimination preserves parallel() exactly.
        let par_messy = Tree::par(
            Tree::par(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::stm(s.clone()), Tree::Done),
        );
        let par_norm = par_messy.clone().normalized();
        assert_eq!(parallel(&par_messy), parallel(&par_norm));

        // ▷-elimination may only *reveal* pairs (the ones rule (1) would
        // reach next), never drop them.
        let messy = Tree::par(
            Tree::seq(Tree::Done, Tree::stm(s.clone())),
            Tree::par(Tree::Done, Tree::par(Tree::stm(s), Tree::Done)),
        );
        let norm = messy.clone().normalized();
        assert!(parallel(&messy).is_subset(&parallel(&norm)));
        assert!(!parallel(&norm).is_empty());

        // Idempotent, smaller, and fully administrative trees collapse.
        assert_eq!(norm.clone().normalized(), norm);
        assert!(norm.node_count() < messy.node_count());
        assert!(Tree::par(Tree::Done, Tree::seq(Tree::Done, Tree::Done))
            .normalized()
            .is_done());
    }

    #[test]
    fn parallel_explorer_matches_sequential() {
        for src in [
            "def main() { async { B; } K; }",
            "def f() { async { S5; } } def main() { finish { async { S3; } f(); } S2; }",
        ] {
            let p = Program::parse(src).unwrap();
            let seq = explore(&p, &[], ExploreConfig::default());
            let par = explore_parallel(&p, &[], ExploreConfig::default(), 4);
            assert_eq!(seq.mhp, par.mhp);
            assert_eq!(seq.visited, par.visited);
            assert_eq!(seq.terminals, par.terminals);
            assert_eq!(seq.deadlock_free, par.deadlock_free);
        }
        let p = examples::example_2_1();
        let seq = explore(&p, &[], ExploreConfig::default());
        let par = explore_parallel(&p, &[], ExploreConfig::default(), 8);
        assert_eq!(seq.mhp, par.mhp);
        assert_eq!(seq.visited, par.visited);
    }

    #[test]
    fn ftlabels_front_is_subset_of_mhp_participants() {
        // Sanity link between parallel() and explored pairs: all labels in
        // pairs must be real labels of the program.
        let p = examples::example_2_2();
        let e = explore(&p, &[], ExploreConfig::default());
        for &(a, b) in &e.mhp {
            assert!((a.index()) < p.label_count());
            assert!((b.index()) < p.label_count());
            let _ = Label(a.0); // labels round-trip
        }
    }
}
