//! An interpreter for FX10: repeatedly picks one enabled transition.
//!
//! All nondeterminism in FX10 comes from the interleaving of `∥`; a
//! [`Scheduler`] resolves it. The interpreter is the executable face of
//! the calculus — by Theorem 1 it can only stop by completing (`√`) or by
//! exhausting its step budget, never by deadlock.

use crate::state::ArrayState;
use crate::step::{initial_tree, successors};

use fx10_robust::{Budget, CancelToken, Exhaustion, Fx10Error};
use fx10_syntax::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A policy for choosing among the enabled transitions of a state.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Always take the first enabled transition (depth-first into async
    /// bodies: spawned work runs before its spawner's continuation).
    Leftmost,
    /// Always take the last enabled transition (continuations run before
    /// spawned bodies — an adversarial schedule for async-heavy code).
    Rightmost,
    /// Uniform random choice with the given seed (reproducible).
    Random(u64),
}

/// The result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Final array state.
    pub array: ArrayState,
    /// Steps taken.
    pub steps: u64,
    /// True when the tree reached `√`; false when a budget ran out (or,
    /// for [`replay`], the trace ended early).
    pub completed: bool,
    /// Which budget ended an incomplete run (`None` for completed runs
    /// and for trace-exhausted replays).
    pub exhausted: Option<Exhaustion>,
}

/// Runs `p` from `(A₀, ⟨s₀⟩)` with the given scheduler and step budget.
///
/// `input` initializes the array (padded with zeros). Returns the final
/// state; `completed` distinguishes termination from budget exhaustion
/// (FX10 is Turing-complete, so nontermination is possible).
pub fn run(p: &Program, input: &[i64], scheduler: Scheduler, max_steps: u64) -> RunOutcome {
    match run_budgeted(
        p,
        input,
        scheduler,
        max_steps,
        Budget::unlimited(),
        &CancelToken::new(),
    ) {
        Ok(out) => out,
        // Unreachable (nobody holds the token, no deadline) — degrade
        // rather than panic on a library path.
        Err(_) => RunOutcome {
            array: ArrayState::with_input(p, input),
            steps: 0,
            completed: false,
            exhausted: Some(Exhaustion::Steps),
        },
    }
}

/// How often the interpreter polls the wall clock and cancel token.
const POLL_STRIDE: u64 = 256;

/// As [`run`], but additionally honoring a [`Budget`]'s wall-clock
/// deadline and a [`CancelToken`]. Deadline expiry returns the partial
/// outcome tagged [`Exhaustion::Deadline`]; cancellation returns
/// [`Fx10Error::Cancelled`].
pub fn run_budgeted(
    p: &Program,
    input: &[i64],
    scheduler: Scheduler,
    max_steps: u64,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<RunOutcome, Fx10Error> {
    let mut array = ArrayState::with_input(p, input);
    let mut tree = initial_tree(p);
    let mut rng = match &scheduler {
        Scheduler::Random(seed) => Some(StdRng::seed_from_u64(*seed)),
        _ => None,
    };
    let mut steps = 0u64;
    while !tree.is_done() {
        if steps >= max_steps {
            return Ok(RunOutcome {
                array,
                steps,
                completed: false,
                exhausted: Some(Exhaustion::Steps),
            });
        }
        if steps.is_multiple_of(POLL_STRIDE) {
            cancel.check()?;
            if budget.deadline_exceeded() {
                return Ok(RunOutcome {
                    array,
                    steps,
                    completed: false,
                    exhausted: Some(Exhaustion::Deadline),
                });
            }
        }
        let succ = successors(p, &array, &tree);
        debug_assert!(!succ.is_empty(), "deadlock-freedom violated");
        let idx = match &scheduler {
            Scheduler::Leftmost => 0,
            Scheduler::Rightmost => succ.len() - 1,
            Scheduler::Random(_) => rng.as_mut().unwrap().gen_range(0..succ.len()),
        };
        let chosen = succ.into_iter().nth(idx).unwrap();
        array = chosen.array;
        tree = chosen.tree;
        steps += 1;
    }
    Ok(RunOutcome {
        array,
        steps,
        completed: true,
        exhausted: None,
    })
}

/// Convenience: run to completion with a large budget and return `a[0]`,
/// or `None` if the budget was exhausted.
pub fn run_result(p: &Program, input: &[i64], scheduler: Scheduler) -> Option<i64> {
    let out = run(p, input, scheduler, 10_000_000);
    out.completed.then(|| out.array.result())
}

/// As [`run`], but also records the schedule: the index of the chosen
/// successor at every step. The trace replays bit-for-bit with
/// [`replay`] — the tool for reproducing a racy execution (e.g. one found
/// by a random scheduler) deterministically.
pub fn run_traced(
    p: &Program,
    input: &[i64],
    scheduler: Scheduler,
    max_steps: u64,
) -> (RunOutcome, Vec<u32>) {
    let mut array = ArrayState::with_input(p, input);
    let mut tree = initial_tree(p);
    let mut rng = match &scheduler {
        Scheduler::Random(seed) => Some(StdRng::seed_from_u64(*seed)),
        _ => None,
    };
    let mut steps = 0u64;
    let mut trace = Vec::new();
    while !tree.is_done() && steps < max_steps {
        let succ = successors(p, &array, &tree);
        let idx = match &scheduler {
            Scheduler::Leftmost => 0,
            Scheduler::Rightmost => succ.len() - 1,
            Scheduler::Random(_) => rng.as_mut().unwrap().gen_range(0..succ.len()),
        };
        trace.push(idx as u32);
        let chosen = succ.into_iter().nth(idx).unwrap();
        array = chosen.array;
        tree = chosen.tree;
        steps += 1;
    }
    let completed = tree.is_done();
    (
        RunOutcome {
            completed,
            exhausted: (!completed).then_some(Exhaustion::Steps),
            array,
            steps,
        },
        trace,
    )
}

/// A recorded schedule that does not fit the program's transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Step at which the trace diverged.
    pub step: u64,
    /// The invalid choice index.
    pub choice: u32,
    /// How many successors the state actually had.
    pub available: usize,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at step {}: choice {} of {} successors",
            self.step, self.choice, self.available
        )
    }
}

impl std::error::Error for ReplayError {}

/// Replays a schedule recorded by [`run_traced`]. Stops when the trace is
/// exhausted (completed = whether the tree reached `√` by then).
pub fn replay(p: &Program, input: &[i64], trace: &[u32]) -> Result<RunOutcome, ReplayError> {
    let mut array = ArrayState::with_input(p, input);
    let mut tree = initial_tree(p);
    let mut steps = 0u64;
    for &choice in trace {
        if tree.is_done() {
            break;
        }
        let succ = successors(p, &array, &tree);
        if choice as usize >= succ.len() {
            return Err(ReplayError {
                step: steps,
                choice,
                available: succ.len(),
            });
        }
        let chosen = succ.into_iter().nth(choice as usize).unwrap();
        array = chosen.array;
        tree = chosen.tree;
        steps += 1;
    }
    Ok(RunOutcome {
        completed: tree.is_done(),
        exhausted: None,
        array,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::examples;

    #[test]
    fn straight_line_program_terminates() {
        let p = Program::parse("def main() { a[0] = 7; }").unwrap();
        let out = run(&p, &[], Scheduler::Leftmost, 100);
        assert!(out.completed);
        assert_eq!(out.array.result(), 7);
    }

    #[test]
    fn all_schedulers_agree_on_confluent_program() {
        // add_twice: a[1] = 1 triggers two bump() calls under a finish;
        // final a[2] = 2 and a[0] = 0 regardless of interleaving.
        let p = examples::add_twice();
        for s in [
            Scheduler::Leftmost,
            Scheduler::Rightmost,
            Scheduler::Random(1),
            Scheduler::Random(42),
        ] {
            let out = run(&p, &[0, 1, 0], s, 100_000);
            assert!(out.completed);
            assert_eq!(out.array.get(2), 2);
            assert_eq!(out.array.result(), 0);
        }
    }

    #[test]
    fn counting_loop_computes_value() {
        // a[0] := a[1] copies by repeated increment: while(a[1]!=0) is not
        // directly decrementable, so use a bounded trick: loop once.
        let p = Program::parse(
            "def main() {\n\
               while (a[1] != 0) { a[0] = a[0] + 1; a[1] = 0; }\n\
             }",
        )
        .unwrap();
        assert_eq!(run_result(&p, &[10, 5], Scheduler::Leftmost), Some(11));
        assert_eq!(run_result(&p, &[10, 0], Scheduler::Leftmost), Some(10));
    }

    #[test]
    fn nonterminating_program_exhausts_budget() {
        let p = Program::parse("def main() { a[0] = 1; while (a[0] != 0) { skip; } }").unwrap();
        let out = run(&p, &[], Scheduler::Leftmost, 1000);
        assert!(!out.completed);
        assert_eq!(out.steps, 1000);
    }

    #[test]
    fn recursion_via_calls_works() {
        // f decrements-ish: not expressible; instead test unbounded
        // recursion halts on budget and bounded call chains complete.
        let p = Program::parse(
            "def g() { a[0] = a[0] + 1; }\n\
             def f() { g(); g(); }\n\
             def main() { f(); f(); }",
        )
        .unwrap();
        assert_eq!(run_result(&p, &[], Scheduler::Rightmost), Some(4));
    }

    #[test]
    fn race_outcome_depends_on_schedule() {
        // async writes 1, continuation writes 2: both final values are
        // possible under different schedulers.
        let p = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        let left = run_result(&p, &[], Scheduler::Leftmost).unwrap();
        let right = run_result(&p, &[], Scheduler::Rightmost).unwrap();
        assert_eq!((left, right), (2, 1));
    }

    #[test]
    fn traced_runs_replay_exactly() {
        let p = examples::add_twice();
        for sched in [
            Scheduler::Leftmost,
            Scheduler::Rightmost,
            Scheduler::Random(99),
        ] {
            let (out, trace) = run_traced(&p, &[0, 1, 0], sched, 100_000);
            assert!(out.completed);
            let replayed = replay(&p, &[0, 1, 0], &trace).unwrap();
            assert_eq!(out, replayed, "replay must be bit-for-bit");
        }
    }

    #[test]
    fn replay_reproduces_a_racy_outcome() {
        // Find a schedule where the async writer loses the race, then
        // reproduce it deterministically.
        let p = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        let mut found = None;
        for seed in 0..64 {
            let (out, trace) = run_traced(&p, &[], Scheduler::Random(seed), 1000);
            if out.array.result() == 1 {
                found = Some(trace);
                break;
            }
        }
        let trace = found.expect("some schedule ends with a[0] = 1");
        for _ in 0..3 {
            assert_eq!(replay(&p, &[], &trace).unwrap().array.result(), 1);
        }
    }

    #[test]
    fn replay_rejects_invalid_traces() {
        let p = Program::parse("def main() { S1; }").unwrap();
        let err = replay(&p, &[], &[7]).unwrap_err();
        assert_eq!(err.step, 0);
        assert_eq!(err.available, 1);
        // A short trace simply stops early.
        let p2 = Program::parse("def main() { S1; S2; }").unwrap();
        let out = replay(&p2, &[], &[0]).unwrap();
        assert!(!out.completed);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn finish_orders_writes() {
        // Same race wrapped in finish: the async body must complete first.
        let p = Program::parse("def main() { finish { async { a[0] = 1; } } a[0] = 2; }").unwrap();
        for s in [
            Scheduler::Leftmost,
            Scheduler::Rightmost,
            Scheduler::Random(7),
        ] {
            assert_eq!(run_result(&p, &[], s), Some(2));
        }
    }
}
