//! Fuzz hardening of the `.fxsnap` decoder: every corruption of a
//! valid snapshot — single bit flips, truncation at any byte, pure
//! random garbage, and forged containers whose checksums are *valid*
//! but whose counts lie — must come back as a typed [`SnapshotError`],
//! never a panic and never an allocation sized by a corrupted length
//! field. The CLI maps these to exit 2; these tests pin the layer
//! underneath.

use fx10_robust::snapshot::{SectionBuf, SnapshotError, SnapshotWriter};
use fx10_semantics::intern::{state_key, DONE};
use fx10_semantics::{snapshot_fingerprint, ExploreConfig, ExplorerSnapshot, Interner};
use fx10_syntax::Program;
use proptest::prelude::*;

/// The canonical byte image a real durable checkpoint would write:
/// a small but fully populated snapshot (statement chain, `▷`/`∥`
/// nodes, two array states, visited + frontier keys).
fn valid_bytes() -> Vec<u8> {
    let p = Program::parse(
        "def main() { finish { async { A1: a[0] = 1; } B1: a[1] = 1; } C1: a[0] = 0; }",
    )
    .unwrap();
    let it = Interner::new(true);
    let s = it.intern_stmt(&p.body(p.main()).clone());
    let t = it.par(it.stm(s), it.seq(it.stm(s), DONE));
    let a0 = it.intern_array(vec![0, 0]);
    let a1 = it.intern_array(vec![1, 0]);
    let keys = vec![state_key(a0, t), state_key(a1, t), state_key(a0, DONE)];
    ExplorerSnapshot::capture(
        &it,
        snapshot_fingerprint(&p, &[], &ExploreConfig::default()),
        1,
        true,
        9,
        keys.clone(),
        keys[..2].to_vec(),
    )
    .to_bytes()
}

proptest! {
    /// Any single bit flip lands in checksummed (or length-checked)
    /// territory: decode returns an error and does not panic.
    #[test]
    fn bit_flips_are_rejected_without_panicking(idx in 0usize..4096, bit in 0u32..8) {
        let mut bytes = valid_bytes();
        let i = idx % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(
            ExplorerSnapshot::from_bytes(&bytes).is_err(),
            "flipping bit {bit} of byte {i} must not yield a valid snapshot"
        );
    }

    /// Truncation at every prefix length is a typed error, never a
    /// read past the end or a panic.
    #[test]
    fn truncations_are_rejected_without_panicking(cut in 0usize..4096) {
        let bytes = valid_bytes();
        let cut = cut % bytes.len(); // strictly shorter than the original
        prop_assert!(ExplorerSnapshot::from_bytes(&bytes[..cut]).is_err());
    }

    /// Pure garbage — including inputs shorter than the header — is
    /// rejected at the container layer.
    #[test]
    fn random_garbage_is_rejected(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        prop_assert!(ExplorerSnapshot::from_bytes(&bytes).is_err());
    }
}

/// A forged container with a *valid* checksum but a section count
/// claiming ~4 billion entries must fail fast with a typed error —
/// the decoder sizes its buffers by the bytes actually present, not
/// by the attacker-controlled count.
#[test]
fn lying_counts_with_valid_checksums_do_not_allocate() {
    for tag in 2u32..=6 {
        let mut w = SnapshotWriter::new();
        // SEC_META must parse first (25 bytes of counters).
        let mut meta = SectionBuf::new();
        meta.put_u64(0xDEAD);
        meta.put_u8(1);
        meta.put_u64(0);
        meta.put_u64(0);
        w.add_section(1, meta);
        for t in 2u32..=6 {
            let mut b = SectionBuf::new();
            if t == tag {
                b.put_u32(u32::MAX); // count lies; almost no payload follows
                b.put_u64(0);
            } else {
                b.put_u32(0);
            }
            w.add_section(t, b);
        }
        let bytes = w.finish();
        let err =
            ExplorerSnapshot::from_bytes(&bytes).expect_err("a lying count must be a decode error");
        // Any typed variant is fine; the point is it is an Err and the
        // process neither panicked nor tried a u32::MAX-sized Vec.
        let _: SnapshotError = err;
    }
}

/// The corrupt fixtures checked into `programs/` stay rejected with
/// the message the CLI surfaces (guards against fixture rot).
#[test]
fn checked_in_corrupt_fixtures_stay_corrupt() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    for fixture in [
        "programs/snap_truncated.fxsnap",
        "programs/snap_bad_magic.fxsnap",
        "programs/snap_bad_version.fxsnap",
        "programs/snap_bad_checksum.fxsnap",
    ] {
        let bytes = std::fs::read(root.join(fixture)).unwrap();
        assert!(
            ExplorerSnapshot::from_bytes(&bytes).is_err(),
            "{fixture} must stay rejected"
        );
    }
    let good = std::fs::read(root.join("programs/snap_example22.fxsnap")).unwrap();
    assert!(ExplorerSnapshot::from_bytes(&good).is_ok());
}
