//! # fx10-absint
//!
//! Flow-sensitive **abstract interpretation** of the FX10 shared array
//! `a`, layered on the paper's may-happen-in-parallel analysis.
//!
//! Where the MHP analysis answers *"which instructions can overlap?"*,
//! this crate answers *"what values can the array hold when an
//! instruction runs?"* — and feeds the answer back: a statically-parallel
//! pair whose labels are abstractly unreachable (e.g. guarded by a loop
//! whose condition is provably false) is *infeasible* and can be soundly
//! pruned from the MHP relation.
//!
//! Three ingredients:
//!
//! - [`domain`] — the value lattices (constants, intervals with threshold
//!   widening, parity), all sound for the concrete wrapping semantics;
//! - [`interp`] — the interpreter: per-label abstract environments via
//!   chaotic iteration with method summaries, where `∥` interleaving is
//!   modeled as weak updates from every write the **static CS MHP
//!   relation** says may race in (Theorem 2 makes that an
//!   over-approximation of real interference);
//! - [`oracle`] / [`gate`] — the guard-feasibility oracle consumed by
//!   `fx10 race` and the lint suite, and the differential gate that
//!   checks, program by program, that the abstract facts contain every
//!   exact explorer state and that no pruned pair is dynamically real.

#![warn(missing_docs)]
pub mod domain;
pub mod gate;
pub mod interp;
pub mod oracle;
pub mod render;

pub use domain::{AbsVal, Domain, THRESHOLDS};
pub use gate::{soundness_gate, soundness_gate_all, GateReport, MAX_VIOLATIONS};
pub use interp::{Absint, AbsintConfig};
pub use oracle::FeasibilityOracle;
pub use render::{render_json, render_text};
