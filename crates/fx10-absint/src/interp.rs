//! The flow-sensitive abstract interpreter.
//!
//! Computes, for every labeled program point `l`, an abstract environment
//! `Env[l] : cell → AbsVal` over-approximating every concrete array state
//! `A` observable while `l` is a *front* label (`l ∈ FTlabels(T)` for some
//! reachable state `(p, A, T)`). A label whose environment stays `⊥` is
//! **abstractly unreachable** — the feasibility fact the MHP pruning
//! oracle and the lint suite consume.
//!
//! # Handling `∥`
//!
//! Sequential flow alone is unsound under async-finish parallelism: a
//! write running in parallel with `l` can land between any two of `l`'s
//! observations. The interpreter therefore keeps, per assignment label
//! `w`, the join `wval[w]` of every abstract value that assignment ever
//! stores, and *interferes* each environment:
//!
//! ```text
//! Env[l](d) ⊒ ⊔ { wval[w] | w writes d, (w, l) ∈ MHP }
//! ```
//!
//! using the **static CS may-happen-in-parallel relation** as the
//! parallelism oracle. The static relation over-approximates the dynamic
//! one (Theorem 2), and every ordering it *does* rule out is enforced by
//! `finish`/`▷` sequencing — which ordinary flow transfer covers — so the
//! combination is sound. The workspace differential gate
//! ([`crate::gate`]) checks exactly this containment on every fixture.
//!
//! # Fixpoint structure
//!
//! Global chaotic iteration over method summaries (`in`/`out` per method,
//! context-insensitive) and the `wval` table, all monotone accumulators,
//! widened after [`GLOBAL_WIDEN_DELAY`] rounds so interference feedback
//! between parallel loops terminates. `while` loops run a local ascending
//! fixpoint (widening after [`LOCAL_WIDEN_DELAY`] iterations) followed by
//! one descending (narrowing) step. Once a round changes nothing, one
//! final *recording* pass over the now-stable tables produces the
//! published environments; a round cap degrades to the sound all-`⊤`
//! answer with [`Absint::capped`] set.

use crate::domain::{AbsVal, Domain};
use fx10_core::PairSet;
use fx10_syntax::{Expr, Instr, InstrKind, Label, Program, Stmt};

/// Rounds of global iteration before the accumulators are widened.
const GLOBAL_WIDEN_DELAY: usize = 4;
/// Iterations of a local `while` fixpoint before widening kicks in.
const LOCAL_WIDEN_DELAY: usize = 2;

/// Configuration for [`Absint::analyze`].
#[derive(Debug, Clone)]
pub struct AbsintConfig {
    /// The value domain to run in.
    pub domain: Domain,
    /// The initial array, abstracted exactly (padded with zeros like the
    /// concrete semantics); `None` analyzes all inputs at once (`⊤`).
    pub input: Option<Vec<i64>>,
    /// Cap on global fixpoint rounds; hitting it yields the sound all-`⊤`
    /// fallback with [`Absint::capped`] set.
    pub max_rounds: usize,
}

impl AbsintConfig {
    /// The given domain, `⊤` input, default round cap.
    pub fn top(domain: Domain) -> Self {
        AbsintConfig {
            domain,
            input: None,
            max_rounds: 64,
        }
    }

    /// The given domain and exact initial array.
    pub fn with_input(domain: Domain, input: &[i64]) -> Self {
        AbsintConfig {
            domain,
            input: Some(input.to_vec()),
            max_rounds: 64,
        }
    }
}

/// The result of one abstract interpretation run. See the module docs for
/// the invariant each accessor exposes.
#[derive(Debug, Clone)]
pub struct Absint {
    domain: Domain,
    width: usize,
    envs: Vec<Option<Vec<AbsVal>>>,
    reasons: Vec<Option<String>>,
    divergent: Vec<(Label, usize, AbsVal)>,
    loop_heads: Vec<Option<(usize, AbsVal)>>,
    enclosing: Vec<Option<Label>>,
    rounds: usize,
    capped: bool,
}

impl Absint {
    /// Runs the interpreter to fixpoint. `mhp` is the static (CS)
    /// may-happen-in-parallel relation used as the interference oracle —
    /// pass `Analysis::mhp()`.
    pub fn analyze(p: &Program, mhp: &PairSet, cfg: &AbsintConfig) -> Absint {
        let n = p.label_count();
        let width = p.array_len().max(cfg.input.as_ref().map_or(0, |i| i.len()));
        let init: Vec<AbsVal> = match &cfg.input {
            Some(input) => (0..width)
                .map(|d| AbsVal::of(cfg.domain, input.get(d).copied().unwrap_or(0)))
                .collect(),
            None => vec![AbsVal::Top; width],
        };

        // Innermost enclosing `while` per label, for guard-fact hints.
        let mut enclosing: Vec<Option<Label>> = vec![None; n];
        fn walk_enclosing(s: &Stmt, stack: &mut Vec<Label>, out: &mut Vec<Option<Label>>) {
            for i in s.instrs() {
                out[i.label.index()] = stack.last().copied();
                match &i.kind {
                    InstrKind::While { body, .. } => {
                        stack.push(i.label);
                        walk_enclosing(body, stack, out);
                        stack.pop();
                    }
                    InstrKind::Async { body } | InstrKind::Finish { body } => {
                        walk_enclosing(body, stack, out)
                    }
                    _ => {}
                }
            }
        }
        for m in p.methods() {
            walk_enclosing(m.body(), &mut Vec::new(), &mut enclosing);
        }

        let mut writers: Vec<(Label, usize)> = Vec::new();
        p.for_each_instr(|_, i| {
            if let InstrKind::Assign { idx, .. } = i.kind {
                writers.push((i.label, idx));
            }
        });

        let pending = pending_writes_by_finish(p);

        let mut eng = Engine {
            p,
            d: cfg.domain,
            mhp,
            writers,
            pending,
            wval: vec![AbsVal::Bot; n],
            m_in: vec![None; p.method_count()],
            m_out: vec![None; p.method_count()],
            envs: vec![None; n],
            reasons: vec![None; n],
            divergent: Vec::new(),
            loop_heads: vec![None; n],
            record: false,
            widen_accum: false,
            changed: false,
            kill: None,
        };
        eng.m_in[p.main().index()] = Some(init);

        let mut rounds = 0usize;
        let mut capped = true;
        while rounds < cfg.max_rounds {
            rounds += 1;
            eng.widen_accum = rounds >= GLOBAL_WIDEN_DELAY;
            eng.record = false;
            eng.run_round();
            if eng.changed {
                continue;
            }
            // Stable: one recording pass over the stable tables. It
            // re-executes the same transfer functions, so it cannot move
            // the accumulators; the re-check is defensive.
            rounds += 1;
            eng.record = true;
            eng.clear_record();
            eng.run_round();
            if !eng.changed {
                capped = false;
                break;
            }
            eng.clear_record();
        }

        if capped {
            // Sound fallback: every label reachable with unknown values.
            return Absint {
                domain: cfg.domain,
                width,
                envs: vec![Some(vec![AbsVal::Top; width]); n],
                reasons: vec![None; n],
                divergent: Vec::new(),
                loop_heads: vec![None; n],
                enclosing,
                rounds,
                capped: true,
            };
        }

        // Labels of never-called methods get a specific reason.
        for (f, m) in p.methods().iter().enumerate() {
            if eng.m_in[f].is_none() {
                let reason = format!("method `{}` is never called", m.name());
                mark_stmt(m.body(), &mut |l| {
                    if eng.envs[l.index()].is_none() && eng.reasons[l.index()].is_none() {
                        eng.reasons[l.index()] = Some(reason.clone());
                    }
                });
            }
        }

        let mut divergent = eng.divergent;
        divergent.sort_by_key(|&(l, _, _)| l);
        divergent.dedup();
        Absint {
            domain: cfg.domain,
            width,
            envs: eng.envs,
            reasons: eng.reasons,
            divergent,
            loop_heads: eng.loop_heads,
            enclosing,
            rounds,
            capped: false,
        }
    }

    /// The domain this run used.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of array cells tracked (the runtime width, extended to the
    /// input when the input is longer).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Global fixpoint rounds taken (including the recording pass).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// True when the round cap forced the all-`⊤` fallback. The result is
    /// still sound but proves nothing; feasibility clients must not prune.
    pub fn capped(&self) -> bool {
        self.capped
    }

    /// True when `l` is abstractly reachable (its environment is not `⊥`).
    /// Unreachability is definite: no concrete execution from the analyzed
    /// input(s) ever fronts `l`.
    pub fn reachable(&self, l: Label) -> bool {
        self.envs[l.index()].is_some()
    }

    /// Number of abstractly reachable labels.
    pub fn reachable_count(&self) -> usize {
        self.envs.iter().filter(|e| e.is_some()).count()
    }

    /// The abstract environment at `l`, `None` when unreachable.
    pub fn env(&self, l: Label) -> Option<&[AbsVal]> {
        self.envs[l.index()].as_deref()
    }

    /// Differential-gate check: may the concrete array `cells` be observed
    /// while `l` is a front label? Soundness demands `true` for every
    /// sample the explorer produces.
    pub fn admits(&self, l: Label, cells: &[i64]) -> bool {
        match self.env(l) {
            None => false,
            Some(env) => {
                env.len() == cells.len() && env.iter().zip(cells).all(|(a, &v)| a.contains(v))
            }
        }
    }

    /// Why `l` is unreachable (`None` when it is reachable).
    pub fn reason(&self, l: Label) -> Option<String> {
        if self.reachable(l) {
            return None;
        }
        Some(match &self.reasons[l.index()] {
            Some(r) => r.clone(),
            None => format!("unreachable ({} domain)", self.domain),
        })
    }

    /// Loops whose exit is abstractly unreachable: `(label, guard cell,
    /// head guard value)`. Reaching such a loop diverges — under *every*
    /// input when the run was `⊤`-initial, else under the analyzed input.
    pub fn divergent_loops(&self) -> &[(Label, usize, AbsVal)] {
        &self.divergent
    }

    /// The guard observation at a reachable `while` head: `(guard cell,
    /// abstract value)`.
    pub fn loop_head(&self, l: Label) -> Option<(usize, AbsVal)> {
        self.loop_heads[l.index()]
    }

    /// A one-line abstract fact about `l`, for lint fix hints: either the
    /// unreachability reason, or the innermost enclosing guard's value, or
    /// the local environment.
    pub fn guard_fact(&self, l: Label, p: &Program) -> String {
        if let Some(r) = self.reason(l) {
            return r;
        }
        if let Some(w) = self.enclosing[l.index()] {
            if let Some((idx, v)) = self.loop_heads[w.index()] {
                return format!(
                    "enclosing guard a[{idx}] is {v} at {} ({} domain)",
                    p.labels().display(w),
                    self.domain
                );
            }
        }
        let env = self.env(l).expect("reachable label has an environment");
        let cells: Vec<String> = env.iter().map(|v| v.to_string()).collect();
        format!(
            "reachable with a = [{}] ({} domain)",
            cells.join(", "),
            self.domain
        )
    }
}

/// For every `finish` label, the assignments that may still be running
/// when the barrier releases: writes nested under an `async` the finish
/// awaits — directly in its body, inside methods called from such an
/// async (everything a pending async does is pending), or spawned by a
/// method the body calls sequentially. Writes inside a *nested* finish
/// settle at that inner barrier and are excluded.
fn pending_writes_by_finish(p: &Program) -> Vec<Vec<(Label, usize)>> {
    use std::collections::BTreeSet;
    type Set = BTreeSet<(Label, usize)>;

    fn assigns_under(s: &Stmt, out: &mut Set) {
        for i in s.instrs() {
            if let InstrKind::Assign { idx, .. } = i.kind {
                out.insert((i.label, idx));
            }
            if let Some(b) = i.kind.body() {
                assigns_under(b, out);
            }
        }
    }
    fn calls_under(s: &Stmt, out: &mut BTreeSet<usize>) {
        for i in s.instrs() {
            if let InstrKind::Call { callee } = i.kind {
                out.insert(callee.index());
            }
            if let Some(b) = i.kind.body() {
                calls_under(b, out);
            }
        }
    }

    let nm = p.method_count();
    // allw[f]: every write f may perform, transitively through calls.
    let mut allw: Vec<Set> = vec![Set::new(); nm];
    loop {
        let mut changed = false;
        for f in 0..nm {
            let mut next = Set::new();
            assigns_under(p.methods()[f].body(), &mut next);
            let mut calls = BTreeSet::new();
            calls_under(p.methods()[f].body(), &mut calls);
            for g in calls {
                next.extend(allw[g].iter().copied());
            }
            if next != allw[f] {
                allw[f] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // The pending contribution of a statement: writes under its asyncs
    // (with their calls fully expanded), plus what its sequential calls
    // spawn, skipping nested finish bodies (their asyncs are settled).
    fn pending_of(s: &Stmt, allw: &[Set], aw: &[Set], out: &mut Set) {
        for i in s.instrs() {
            match &i.kind {
                InstrKind::Async { body } => {
                    assigns_under(body, out);
                    let mut calls = BTreeSet::new();
                    calls_under(body, &mut calls);
                    for g in calls {
                        out.extend(allw[g].iter().copied());
                    }
                }
                InstrKind::Call { callee } => out.extend(aw[callee.index()].iter().copied()),
                InstrKind::While { body, .. } => pending_of(body, allw, aw, out),
                InstrKind::Finish { .. } | InstrKind::Skip | InstrKind::Assign { .. } => {}
            }
        }
    }

    // aw[f]: writes a call to f may leave in flight after it returns.
    let mut aw: Vec<Set> = vec![Set::new(); nm];
    loop {
        let mut changed = false;
        for f in 0..nm {
            let mut next = Set::new();
            pending_of(p.methods()[f].body(), &allw, &aw, &mut next);
            if next != aw[f] {
                aw[f] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut pending: Vec<Vec<(Label, usize)>> = vec![Vec::new(); p.label_count()];
    fn visit(s: &Stmt, allw: &[Set], aw: &[Set], pending: &mut Vec<Vec<(Label, usize)>>) {
        for i in s.instrs() {
            if let InstrKind::Finish { body } = &i.kind {
                let mut set = Set::new();
                pending_of(body, allw, aw, &mut set);
                pending[i.label.index()] = set.into_iter().collect();
            }
            if let Some(b) = i.kind.body() {
                visit(b, allw, aw, pending);
            }
        }
    }
    for m in p.methods() {
        visit(m.body(), &allw, &aw, &mut pending);
    }
    pending
}

/// Applies `f` to every label of `s`, bodies included.
fn mark_stmt(s: &Stmt, f: &mut impl FnMut(Label)) {
    for i in s.instrs() {
        f(i.label);
        if let Some(b) = i.kind.body() {
            mark_stmt(b, f);
        }
    }
}

struct Engine<'a> {
    p: &'a Program,
    d: Domain,
    mhp: &'a PairSet,
    /// Every assignment in the program: `(label, written cell)`.
    writers: Vec<(Label, usize)>,
    /// Per `finish` label: the assignments that may still be in flight
    /// when the barrier releases (writes under asyncs the finish awaits).
    pending: Vec<Vec<(Label, usize)>>,
    /// Join of every value each assignment ever stores.
    wval: Vec<AbsVal>,
    m_in: Vec<Option<Vec<AbsVal>>>,
    m_out: Vec<Option<Vec<AbsVal>>>,
    envs: Vec<Option<Vec<AbsVal>>>,
    reasons: Vec<Option<String>>,
    divergent: Vec<(Label, usize, AbsVal)>,
    loop_heads: Vec<Option<(usize, AbsVal)>>,
    record: bool,
    widen_accum: bool,
    changed: bool,
    /// Why flow most recently died, for dead-label reasons.
    kill: Option<String>,
}

impl Engine<'_> {
    fn clear_record(&mut self) {
        self.envs.iter_mut().for_each(|e| *e = None);
        self.reasons.iter_mut().for_each(|r| *r = None);
        self.loop_heads.iter_mut().for_each(|h| *h = None);
        self.divergent.clear();
    }

    fn run_round(&mut self) {
        self.changed = false;
        for f in 0..self.p.method_count() {
            let Some(entry) = self.m_in[f].clone() else {
                continue;
            };
            self.kill = None;
            let body = self.p.body(fx10_syntax::FuncId(f as u32)).clone();
            if let Some(out) = self.exec_stmt(&body, Some(entry)) {
                self.accum_method_out(f, &out);
            }
        }
    }

    /// Accumulator join (with global widening past the delay), returning
    /// nothing but flagging `changed`.
    fn accum_val(&mut self, old: AbsVal, v: AbsVal) -> AbsVal {
        let mut new = old.join(v, self.d);
        if self.widen_accum {
            new = old.widen(new, self.d);
        }
        if new != old {
            self.changed = true;
        }
        new
    }

    fn accum_wval(&mut self, w: Label, v: AbsVal) {
        let old = self.wval[w.index()];
        self.wval[w.index()] = self.accum_val(old, v);
    }

    fn accum_method_in(&mut self, f: usize, st: &[AbsVal]) {
        match self.m_in[f].take() {
            None => {
                self.m_in[f] = Some(st.to_vec());
                self.changed = true;
            }
            Some(mut cur) => {
                for (c, &v) in cur.iter_mut().zip(st) {
                    *c = self.accum_val(*c, v);
                }
                self.m_in[f] = Some(cur);
            }
        }
    }

    fn accum_method_out(&mut self, f: usize, st: &[AbsVal]) {
        match self.m_out[f].take() {
            None => {
                self.m_out[f] = Some(st.to_vec());
                self.changed = true;
            }
            Some(mut cur) => {
                for (c, &v) in cur.iter_mut().zip(st) {
                    *c = self.accum_val(*c, v);
                }
                self.m_out[f] = Some(cur);
            }
        }
    }

    /// `st ⊔ interference(l)`: weak-updates every cell some parallel
    /// assignment may race into.
    fn interfere(&self, l: Label, mut st: Vec<AbsVal>) -> Vec<AbsVal> {
        for &(w, cell) in &self.writers {
            let v = self.wval[w.index()];
            if v != AbsVal::Bot && self.mhp.contains(w, l) {
                st[cell] = st[cell].join(v, self.d);
            }
        }
        st
    }

    fn eval(&self, e: &Expr, st: &[AbsVal]) -> AbsVal {
        match e {
            Expr::Const(c) => AbsVal::of(self.d, *c),
            Expr::Plus1(d) => st[*d].plus1(),
        }
    }

    fn record_env(&mut self, l: Label, st: &[AbsVal]) {
        match self.envs[l.index()].take() {
            None => self.envs[l.index()] = Some(st.to_vec()),
            Some(mut cur) => {
                for (c, &v) in cur.iter_mut().zip(st) {
                    *c = c.join(v, self.d);
                }
                self.envs[l.index()] = Some(cur);
            }
        }
    }

    /// Marks `i` (and its body) dead with the current kill reason.
    fn mark_dead(&mut self, i: &Instr) {
        let reason = self.kill.clone();
        mark_stmt(
            &Stmt::new(vec![i.clone()]).expect("singleton statement"),
            &mut |l| {
                if self.envs[l.index()].is_none() && self.reasons[l.index()].is_none() {
                    self.reasons[l.index()] = reason.clone();
                }
            },
        );
    }

    fn exec_stmt(&mut self, s: &Stmt, mut st: Option<Vec<AbsVal>>) -> Option<Vec<AbsVal>> {
        for i in s.instrs() {
            match st.take() {
                Some(live) => st = self.exec_instr(i, live),
                None => {
                    if self.record {
                        self.mark_dead(i);
                    }
                }
            }
        }
        st
    }

    fn exec_instr(&mut self, i: &Instr, st: Vec<AbsVal>) -> Option<Vec<AbsVal>> {
        let l = i.label;
        let st_at = self.interfere(l, st);
        if self.record && !matches!(i.kind, InstrKind::While { .. }) {
            self.record_env(l, &st_at);
        }
        match &i.kind {
            InstrKind::Skip => Some(st_at),
            InstrKind::Assign { idx, expr } => {
                let v = self.eval(expr, &st_at);
                self.accum_wval(l, v);
                let mut out = st_at;
                out[*idx] = v;
                Some(out)
            }
            InstrKind::Call { callee } => {
                self.accum_method_in(callee.index(), &st_at);
                match self.m_out[callee.index()].clone() {
                    Some(out) => Some(out),
                    None => {
                        self.kill = Some(format!(
                            "the call at {} never returns: `{}` does not complete",
                            self.p.labels().display(l),
                            self.p.method(*callee).name()
                        ));
                        None
                    }
                }
            }
            InstrKind::Async { body } => {
                // The continuation proceeds independently of the body;
                // the body's effects reach continuation labels through
                // interference (every body write is statically MHP with
                // them) and settle at the enclosing `finish` exit via the
                // pending-writes join below.
                let _ = self.exec_stmt(body, Some(st_at.clone()));
                Some(st_at)
            }
            InstrKind::Finish { body } => match self.exec_stmt(body, Some(st_at)) {
                Some(mut out) => {
                    // A write under an async awaited by this finish may
                    // land *after* every sequential strong update in the
                    // body — its value can persist past the barrier, so
                    // the exit state must re-admit it.
                    for k in 0..self.pending[l.index()].len() {
                        let (w, cell) = self.pending[l.index()][k];
                        let v = self.wval[w.index()];
                        if v != AbsVal::Bot {
                            out[cell] = out[cell].join(v, self.d);
                        }
                    }
                    Some(out)
                }
                None => {
                    self.kill = Some(format!(
                        "code after `finish` at {} is unreachable: its body never completes",
                        self.p.labels().display(l)
                    ));
                    None
                }
            },
            InstrKind::While { idx, body } => self.exec_while(l, *idx, body, st_at),
        }
    }

    fn exec_while(
        &mut self,
        l: Label,
        idx: usize,
        body: &Stmt,
        entry: Vec<AbsVal>,
    ) -> Option<Vec<AbsVal>> {
        // Ascending fixpoint with widening; recording suppressed so only
        // the final invariant lands in the environments.
        let saved = std::mem::replace(&mut self.record, false);
        let mut acc = entry.clone();
        let mut iter = 0usize;
        loop {
            let head = self.interfere(l, acc.clone());
            let guard = head[idx].refine_nonzero();
            let body_out = if guard == AbsVal::Bot {
                None
            } else {
                let mut bin = head.clone();
                bin[idx] = guard;
                self.exec_stmt(body, Some(bin))
            };
            let grown = match &body_out {
                Some(b) => join_states(acc.clone(), b, self.d),
                None => acc.clone(),
            };
            if grown == acc {
                break;
            }
            acc = if iter >= LOCAL_WIDEN_DELAY {
                widen_states(&acc, &grown, self.d)
            } else {
                grown
            };
            iter += 1;
        }
        // One descending (narrowing) step: `F(acc) ⊑ acc` at a stable
        // `acc`, and `F(acc)` is itself a post-fixpoint by monotonicity.
        {
            let head = self.interfere(l, acc.clone());
            let guard = head[idx].refine_nonzero();
            let body_out = if guard == AbsVal::Bot {
                None
            } else {
                let mut bin = head.clone();
                bin[idx] = guard;
                self.exec_stmt(body, Some(bin))
            };
            acc = match &body_out {
                Some(b) => join_states(entry.clone(), b, self.d),
                None => entry,
            };
        }
        self.record = saved;

        let head = self.interfere(l, acc);
        let guard = head[idx].refine_nonzero();
        if self.record {
            self.record_env(l, &head);
            self.loop_heads[l.index()] = Some((idx, head[idx]));
            if guard == AbsVal::Bot {
                self.kill = Some(format!(
                    "the body of the loop at {} is unreachable: guard a[{idx}] is always 0",
                    self.p.labels().display(l)
                ));
                let kill = self.kill.clone();
                mark_stmt(body, &mut |bl| {
                    if self.envs[bl.index()].is_none() && self.reasons[bl.index()].is_none() {
                        self.reasons[bl.index()] = kill.clone();
                    }
                });
            } else {
                // Record the body under the final invariant.
                let mut bin = head.clone();
                bin[idx] = guard;
                let _ = self.exec_stmt(body, Some(bin));
            }
        }
        let exitv = head[idx].refine_zero(self.d);
        if exitv == AbsVal::Bot {
            if self.record {
                self.divergent.push((l, idx, head[idx]));
            }
            self.kill = Some(format!(
                "code after the loop at {} is unreachable: guard a[{idx}] is {} and never 0",
                self.p.labels().display(l),
                head[idx]
            ));
            None
        } else {
            let mut out = head;
            out[idx] = exitv;
            Some(out)
        }
    }
}

fn join_states(mut a: Vec<AbsVal>, b: &[AbsVal], d: Domain) -> Vec<AbsVal> {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = x.join(y, d);
    }
    a
}

fn widen_states(a: &[AbsVal], b: &[AbsVal], d: Domain) -> Vec<AbsVal> {
    a.iter().zip(b).map(|(&x, &y)| x.widen(y, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_core::analyze;

    fn run(src: &str, domain: Domain, input: Option<&[i64]>) -> (Program, Absint) {
        let p = Program::parse(src).expect("parse");
        let a = analyze(&p);
        let cfg = match input {
            Some(i) => AbsintConfig::with_input(domain, i),
            None => AbsintConfig::top(domain),
        };
        let r = Absint::analyze(&p, a.mhp(), &cfg);
        (p, r)
    }

    #[test]
    fn straight_line_constants_are_exact() {
        let src = "def main() { W1: a[0] = 3; W2: a[1] = a[0] + 1; S: skip; }";
        let (p, r) = run(src, Domain::Const, Some(&[0, 0]));
        assert!(!r.capped());
        let s = p.labels().lookup("S").unwrap();
        assert_eq!(r.env(s).unwrap(), &[AbsVal::Const(3), AbsVal::Const(4)]);
    }

    #[test]
    fn loop_counter_widens_to_interval() {
        let src = "def main() { a[0] = 1; while (a[0] != 0) { W: a[1] = a[1] + 1; } S: skip; }";
        let (p, r) = run(src, Domain::Interval, Some(&[0, 0]));
        let w = p.labels().lookup("W").unwrap();
        // Inside the body the counter has been 0, 1, 2, ... — widened above.
        assert!(r.reachable(w));
        let env = r.env(w).unwrap();
        assert_eq!(env[1], AbsVal::Range(Some(0), None));
        // The guard cell is the constant 1 inside the loop (never written).
        assert_eq!(env[0], AbsVal::Range(Some(1), Some(1)));
        // The loop never exits: S is unreachable and the loop is divergent.
        let s = p.labels().lookup("S").unwrap();
        assert!(!r.reachable(s));
        assert_eq!(r.divergent_loops().len(), 1);
        assert!(r.reason(s).unwrap().contains("never 0"));
    }

    #[test]
    fn terminating_countdown_reaches_exit_with_zero_guard() {
        // a[0] starts unknown; the loop zeroes it explicitly.
        let src = "def main() { while (a[0] != 0) { a[0] = 0; } S: skip; }";
        let (p, r) = run(src, Domain::Interval, None);
        let s = p.labels().lookup("S").unwrap();
        assert!(r.reachable(s));
        assert_eq!(r.env(s).unwrap()[0], AbsVal::Range(Some(0), Some(0)));
    }

    #[test]
    fn parity_proves_odd_guard_divergence_for_all_inputs() {
        // Guard cell is odd forever: starts at 1, body adds 2.
        let src = "def main() { a[0] = 1; L: while (a[0] != 0) { a[0] = a[0] + 1; a[0] = a[0] + 1; } S: skip; }";
        let (p, r) = run(src, Domain::Parity, None);
        let s = p.labels().lookup("S").unwrap();
        assert!(!r.reachable(s), "parity proves the guard never hits 0");
        let l = p.labels().lookup("L").unwrap();
        assert_eq!(r.divergent_loops(), &[(l, 0, AbsVal::Odd)]);
    }

    #[test]
    fn parallel_write_interferes_with_reader_env() {
        // The async write of 7 races with the continuation: S must admit
        // both the initial 0 and the raced 7.
        let src = "def main() { async { W: a[0] = 7; } S: skip; }";
        let (p, r) = run(src, Domain::Const, Some(&[0]));
        let s = p.labels().lookup("S").unwrap();
        assert!(r.admits(s, &[0]));
        assert!(r.admits(s, &[7]));
        let env = r.env(s).unwrap();
        assert_eq!(env[0], AbsVal::Top);
    }

    #[test]
    fn finish_exit_covers_async_writes() {
        // The async completes before S, so concretely a[0] is exactly 7
        // there; the abstraction keeps the pre-write value too (the
        // pending-writes join is a may-persist rule, not a must) — what
        // matters is that 7 is admitted.
        let src = "def main() { finish { async { a[0] = 7; } } S: skip; }";
        let (p, r) = run(src, Domain::Const, Some(&[0]));
        let s = p.labels().lookup("S").unwrap();
        assert!(r.admits(s, &[7]));
        assert_eq!(r.env(s).unwrap()[0], AbsVal::Top);
    }

    #[test]
    fn racing_async_write_persists_past_sequential_update() {
        // W1 may run *after* W2 inside the finish, so at S the cell may
        // be 2 (W2 wrote 1, then W1 incremented it). The finish exit
        // must admit that even though sequential flow ends at W2.
        let src = "def main() { finish { async { W1: a[0] = a[0] + 1; } W2: a[0] = a[1] + 1; } S: skip; }";
        let (p, r) = run(src, Domain::Const, Some(&[0, 0]));
        let s = p.labels().lookup("S").unwrap();
        assert!(r.admits(s, &[2, 0]));
        assert!(r.admits(s, &[1, 0]));
    }

    #[test]
    fn dead_method_labels_carry_a_reason() {
        let src = "def main() { skip; } def ghost() { G: a[0] = 1; }";
        let (p, r) = run(src, Domain::Const, Some(&[0]));
        let g = p.labels().lookup("G").unwrap();
        assert!(!r.reachable(g));
        assert_eq!(r.reason(g).unwrap(), "method `ghost` is never called");
    }

    #[test]
    fn call_flows_through_method_summary() {
        let src = "def main() { f(); S: skip; } def f() { a[0] = 5; }";
        let (p, r) = run(src, Domain::Const, Some(&[0]));
        let s = p.labels().lookup("S").unwrap();
        assert_eq!(r.env(s).unwrap()[0], AbsVal::Const(5));
    }

    #[test]
    fn guard_fact_cites_enclosing_guard() {
        let src = "def main() { a[0] = 1; L: while (a[0] != 0) { B: a[1] = 2; } }";
        let (p, r) = run(src, Domain::Const, Some(&[0, 0]));
        let b = p.labels().lookup("B").unwrap();
        let fact = r.guard_fact(b, &p);
        assert!(fact.contains("enclosing guard a[0]"), "{fact}");
        assert!(fact.contains("at L"), "{fact}");
    }

    #[test]
    fn top_input_runs_are_sound_for_any_start() {
        let src = "def main() { while (a[0] != 0) { a[1] = a[1] + 1; } S: skip; }";
        for d in Domain::ALL {
            let (p, r) = run(src, d, None);
            let s = p.labels().lookup("S").unwrap();
            // With unknown input the loop may be skipped entirely.
            assert!(r.reachable(s), "domain {d}");
        }
    }

    #[test]
    fn recursion_terminates_via_summaries() {
        let src = "def main() { f(); S: skip; } def f() { while (a[0] != 0) { a[0] = 0; f(); } }";
        let (p, r) = run(src, Domain::Interval, None);
        assert!(!r.capped());
        let s = p.labels().lookup("S").unwrap();
        assert!(r.reachable(s));
    }

    #[test]
    fn interference_feedback_between_parallel_loops_terminates() {
        // Two parallel unbounded counters feeding each other's cells.
        let src = "def main() { a[0] = 1; a[1] = 1; async { while (a[0] != 0) { a[2] = a[3] + 1; } } while (a[1] != 0) { a[3] = a[2] + 1; } }";
        for d in Domain::ALL {
            let (_p, r) = run(src, d, Some(&[0, 0, 0, 0]));
            assert!(!r.capped(), "domain {d} hit the round cap");
        }
    }
}
