//! The guard-feasibility oracle: the bridge between the abstract
//! interpreter and the MHP clients (`fx10 race`, the lint suite).
//!
//! A static MHP pair `(a, b)` is *feasible* only if both labels are
//! abstractly reachable. The oracle prunes infeasible pairs — but only
//! when it is entitled to: the underlying CS analysis must be complete
//! (not budget-exhausted) and the abstract run must not have hit its
//! round cap. On an incomplete foundation every label is reported
//! feasible, so clients degrade to the unpruned answer instead of
//! unsoundly shrinking it.

use crate::domain::Domain;
use crate::interp::{Absint, AbsintConfig};
use fx10_core::{Analysis, PruneReport};
use fx10_syntax::{Label, Program};

/// Feasibility facts for one program under one input (or `⊤`).
#[derive(Debug, Clone)]
pub struct FeasibilityOracle {
    /// The abstract interpretation run backing the facts.
    pub facts: Absint,
    /// True when pruning is licensed: the CS analysis was complete and
    /// the abstract run converged without the cap fallback.
    pub complete: bool,
}

impl FeasibilityOracle {
    /// Runs the interpreter against `analysis` (a CS run; its MHP relation
    /// is the interference oracle) and records whether pruning is sound.
    pub fn build(p: &Program, analysis: &Analysis, domain: Domain, input: Option<&[i64]>) -> Self {
        let cfg = match input {
            Some(i) => AbsintConfig::with_input(domain, i),
            None => AbsintConfig::top(domain),
        };
        let facts = Absint::analyze(p, analysis.mhp(), &cfg);
        let complete = analysis.exhausted.is_none() && !facts.capped();
        FeasibilityOracle { facts, complete }
    }

    /// May `l` front any execution? `true` whenever pruning is not
    /// licensed — an inconclusive oracle never shrinks anything.
    pub fn label_feasible(&self, l: Label) -> bool {
        !self.complete || self.facts.reachable(l)
    }

    /// May the pair co-execute, as far as this oracle can tell?
    pub fn pair_feasible(&self, a: Label, b: Label) -> bool {
        self.label_feasible(a) && self.label_feasible(b)
    }

    /// Splits the analysis' MHP relation into kept and pruned pairs.
    pub fn prune(&self, analysis: &Analysis) -> PruneReport {
        analysis.prune_mhp(|l| self.label_feasible(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_core::analyze;

    #[test]
    fn prunes_pairs_under_an_always_zero_guard() {
        // The loop body (and its async) are unreachable: the guard cell is
        // the constant 0. Every MHP pair involving body labels prunes.
        let src = "def main() { a[0] = 0; while (a[0] != 0) { async { W1: a[1] = 1; } W2: a[1] = 2; } async { W3: a[1] = 3; } S: skip; }";
        let p = Program::parse(src).unwrap();
        let a = analyze(&p);
        let o = FeasibilityOracle::build(&p, &a, Domain::Const, Some(&[0, 0]));
        assert!(o.complete);
        let w1 = p.labels().lookup("W1").unwrap();
        let w2 = p.labels().lookup("W2").unwrap();
        let w3 = p.labels().lookup("W3").unwrap();
        let s = p.labels().lookup("S").unwrap();
        assert!(!o.label_feasible(w1));
        assert!(!o.label_feasible(w2));
        assert!(o.label_feasible(w3));
        let report = o.prune(&a);
        assert!(a.mhp().contains(w1, w2), "static MHP has the dead pair");
        assert!(!report.may_happen_in_parallel(w1, w2));
        assert!(report.may_happen_in_parallel(w3, s) == a.mhp().contains(w3, s));
        assert!(report
            .pruned
            .iter()
            .any(|&(x, y)| (x, y) == (w1.min(w2), w1.max(w2))));
    }

    #[test]
    fn incomplete_oracle_prunes_nothing() {
        let src = "def main() { a[0] = 0; while (a[0] != 0) { async { a[1] = 1; } a[1] = 2; } }";
        let p = Program::parse(src).unwrap();
        let a = analyze(&p);
        let mut o = FeasibilityOracle::build(&p, &a, Domain::Const, Some(&[0, 0]));
        o.complete = false;
        let report = o.prune(&a);
        assert!(report.pruned.is_empty());
        assert_eq!(report.kept.len(), a.mhp().len());
    }
}
