//! Abstract value domains for the shared array's cells.
//!
//! Three layered domains, all over `i64` cell values:
//!
//! - **constants** — the flat lattice `⊥ ⊑ c ⊑ ⊤`; exact while a cell has
//!   a single possible value, collapses to `⊤` at the first join of two
//!   distinct values,
//! - **intervals** — `[lo, hi]` with open ends, widened through the
//!   threshold set `{-1, 0, 1}` so `a[d] != 0` guards stay useful,
//! - **parity** — `⊥ ⊑ {even, odd} ⊑ ⊤`; wrap-safe (a wrapping `+ 1`
//!   always flips parity), cheap, and strong enough to kill loops whose
//!   guard cell is provably odd.
//!
//! A single [`AbsVal`] enum carries all three; [`Domain`] selects which
//! variants are legal and dispatches the operators. Every operator is a
//! sound abstraction of the concrete semantics in `fx10-semantics`
//! (constants, and `+ 1` as `i64::wrapping_add`); the workspace-level
//! differential gate and property tests check exactly that.

/// Which value domain the interpreter runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Flat constant propagation.
    Const,
    /// Intervals with threshold widening.
    Interval,
    /// Even/odd parity.
    Parity,
}

impl Domain {
    /// All domains, in precision-report order.
    pub const ALL: [Domain; 3] = [Domain::Const, Domain::Interval, Domain::Parity];

    /// Parses a `--domain` value. Accepts exactly `const`, `interval`,
    /// `parity` — anything else is `None` (callers reject with a usage
    /// error rather than guessing).
    pub fn parse(s: &str) -> Option<Domain> {
        match s {
            "const" => Some(Domain::Const),
            "interval" => Some(Domain::Interval),
            "parity" => Some(Domain::Parity),
            _ => None,
        }
    }

    /// The canonical `--domain` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Const => "const",
            Domain::Interval => "interval",
            Domain::Parity => "parity",
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Widening thresholds: interval bounds escaping these snap to ±∞.
/// `0` keeps `!= 0` guard refinements meaningful after widening; `±1`
/// preserve the off-by-one shapes `+ 1` loops produce.
pub const THRESHOLDS: [i64; 3] = [-1, 0, 1];

/// An abstract cell value. Which variants may appear depends on the
/// [`Domain`]: `Const(_)` only under [`Domain::Const`], `Range(_, _)` only
/// under [`Domain::Interval`], `Even`/`Odd` only under [`Domain::Parity`];
/// `Bot` and `Top` are shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsVal {
    /// No value (unreachable).
    Bot,
    /// Exactly the constant `c`.
    Const(i64),
    /// The interval `[lo, hi]`; `None` is an open (infinite) end.
    /// Invariant: never `(None, None)` (that is [`AbsVal::Top`]) and never
    /// empty (that is [`AbsVal::Bot`]).
    Range(Option<i64>, Option<i64>),
    /// Any even value.
    Even,
    /// Any odd value.
    Odd,
    /// Any value.
    Top,
}

use AbsVal::{Bot, Const, Even, Odd, Range, Top};

/// Normalizes a candidate interval: empty → `Bot`, doubly-open → `Top`.
fn mk_range(lo: Option<i64>, hi: Option<i64>) -> AbsVal {
    match (lo, hi) {
        (None, None) => Top,
        (Some(l), Some(h)) if l > h => Bot,
        _ => Range(lo, hi),
    }
}

impl AbsVal {
    /// `α({v})`: the abstraction of a single concrete value.
    pub fn of(d: Domain, v: i64) -> AbsVal {
        match d {
            Domain::Const => Const(v),
            Domain::Interval => Range(Some(v), Some(v)),
            Domain::Parity => {
                if v & 1 == 0 {
                    Even
                } else {
                    Odd
                }
            }
        }
    }

    /// `v ∈ γ(self)`: concretization membership.
    pub fn contains(self, v: i64) -> bool {
        match self {
            Bot => false,
            Top => true,
            Const(c) => v == c,
            Range(lo, hi) => lo.is_none_or(|l| l <= v) && hi.is_none_or(|h| v <= h),
            Even => v & 1 == 0,
            Odd => v & 1 == 1,
        }
    }

    /// Least upper bound.
    pub fn join(self, other: AbsVal, d: Domain) -> AbsVal {
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Top, _) | (_, Top) => Top,
            (Const(a), Const(b)) => {
                if a == b {
                    Const(a)
                } else {
                    Top
                }
            }
            (Range(al, ah), Range(bl, bh)) => {
                let lo = match (al, bl) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    _ => None,
                };
                let hi = match (ah, bh) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                mk_range(lo, hi)
            }
            (Even, Even) => Even,
            (Odd, Odd) => Odd,
            _ => {
                debug_assert!(matches!(d, Domain::Parity), "mixed-domain join");
                Top
            }
        }
    }

    /// `self ⊑ other`.
    pub fn le(self, other: AbsVal, d: Domain) -> bool {
        self.join(other, d) == other
    }

    /// Widening `self ∇ other`, assuming `self ⊑ other` (callers pass
    /// `other = self.join(new)`). Interval bounds that moved snap outward
    /// to the nearest [`THRESHOLDS`] entry, then to ±∞; the finite-height
    /// domains just take `other`.
    pub fn widen(self, other: AbsVal, _d: Domain) -> AbsVal {
        match (self, other) {
            (a, b) if a == b => a,
            (Range(al, ah), Range(bl, bh)) => {
                let lo = if bl == al {
                    al
                } else {
                    // Lower bound dropped: snap to the largest threshold
                    // still below it, else open.
                    bl.and_then(|b| THRESHOLDS.iter().copied().filter(|&t| t <= b).max())
                };
                let hi = if bh == ah {
                    ah
                } else {
                    bh.and_then(|b| THRESHOLDS.iter().copied().filter(|&t| t >= b).min())
                };
                mk_range(lo, hi)
            }
            (_, b) => b,
        }
    }

    /// Abstract `a[d] + 1` under the concrete semantics' `wrapping_add`.
    ///
    /// Constants wrap exactly like the interpreter; an interval touching
    /// `i64::MAX` goes to `⊤` (the wrapped value would leave the interval);
    /// parity always flips (wrapping at `i64::MAX` lands on `i64::MIN`,
    /// which is even — still a flip).
    pub fn plus1(self) -> AbsVal {
        match self {
            Bot => Bot,
            Top => Top,
            Const(c) => Const(c.wrapping_add(1)),
            Range(lo, hi) => match (lo, hi) {
                (l, Some(h)) => match (l.map(|v| v.checked_add(1)), h.checked_add(1)) {
                    (Some(None), _) | (_, None) => Top,
                    (Some(Some(l1)), Some(h1)) => Range(Some(l1), Some(h1)),
                    (None, Some(h1)) => Range(None, Some(h1)),
                },
                (l, None) => match l.map(|v| v.checked_add(1)) {
                    Some(None) => Top,
                    Some(Some(l1)) => Range(Some(l1), None),
                    None => Top, // unreachable: (None, None) is Top
                },
            },
            Even => Odd,
            Odd => Even,
        }
    }

    /// Refinement on entering a `while (a[d] != 0)` body: meet with
    /// "non-zero". `Bot` means the body is abstractly unreachable.
    pub fn refine_nonzero(self) -> AbsVal {
        match self {
            Const(0) => Bot,
            Range(Some(0), Some(0)) => Bot,
            Range(Some(0), hi) => mk_range(Some(1), hi),
            Range(lo, Some(0)) => mk_range(lo, Some(-1)),
            v => v,
        }
    }

    /// Refinement on *exiting* a `while (a[d] != 0)`: meet with `{0}`.
    /// `Bot` means the loop abstractly never exits — a divergence proof.
    /// In the parity domain the best over-approximation of `{0}` is
    /// `Even`.
    pub fn refine_zero(self, d: Domain) -> AbsVal {
        if !self.contains(0) {
            return Bot;
        }
        match d {
            Domain::Parity => Even,
            _ => AbsVal::of(d, 0),
        }
    }

    /// True when the value excludes zero (and is not `Bot`): the fact the
    /// divergence and feasibility rules cite.
    pub fn excludes_zero(self) -> bool {
        self != Bot && !self.contains(0)
    }
}

/// Renders the value in the deterministic ASCII form shared by the text
/// and JSON outputs: `bot`, `top`, `7`, `[0, +inf]`, `even`, `odd`.
impl std::fmt::Display for AbsVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bot => f.write_str("bot"),
            Top => f.write_str("top"),
            Const(c) => write!(f, "{c}"),
            Range(lo, hi) => {
                match lo {
                    Some(l) => write!(f, "[{l}, ")?,
                    None => f.write_str("[-inf, ")?,
                }
                match hi {
                    Some(h) => write!(f, "{h}]"),
                    None => f.write_str("+inf]"),
                }
            }
            Even => f.write_str("even"),
            Odd => f.write_str("odd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_parse_is_strict() {
        assert_eq!(Domain::parse("const"), Some(Domain::Const));
        assert_eq!(Domain::parse("interval"), Some(Domain::Interval));
        assert_eq!(Domain::parse("parity"), Some(Domain::Parity));
        assert_eq!(Domain::parse("Interval"), None);
        assert_eq!(Domain::parse(""), None);
        assert_eq!(Domain::parse("octagon"), None);
        for d in Domain::ALL {
            assert_eq!(Domain::parse(d.name()), Some(d));
        }
    }

    #[test]
    fn join_is_commutative_and_sound() {
        let pairs = [
            (Const(1), Const(1), Const(1)),
            (Const(1), Const(2), Top),
            (Bot, Const(5), Const(5)),
            (
                Range(Some(0), Some(3)),
                Range(Some(2), Some(9)),
                Range(Some(0), Some(9)),
            ),
            (Range(None, Some(3)), Range(Some(2), None), Top),
            (Even, Even, Even),
            (Even, Odd, Top),
        ];
        for (a, b, want) in pairs {
            let d = match a {
                Const(_) => Domain::Const,
                Range(..) => Domain::Interval,
                _ => Domain::Parity,
            };
            assert_eq!(a.join(b, d), want);
            assert_eq!(b.join(a, d), want);
        }
    }

    #[test]
    fn widen_snaps_to_thresholds_then_infinity() {
        let d = Domain::Interval;
        let a = Range(Some(0), Some(3));
        let grown = a.join(Range(Some(0), Some(4)), d);
        // hi moved past every threshold → open above; lo unchanged.
        assert_eq!(a.widen(grown, d), Range(Some(0), None));
        let b = Range(Some(2), Some(5));
        let down = b.join(Range(Some(1), Some(5)), d);
        // lo dropped to 1, a threshold below it exists (1 itself).
        assert_eq!(b.widen(down, d), Range(Some(1), Some(5)));
        let further = Range(Some(1), Some(5)).join(Range(Some(-3), Some(5)), d);
        // -3 is below every threshold → open below.
        assert_eq!(
            Range(Some(1), Some(5)).widen(further, d),
            Range(None, Some(5))
        );
    }

    #[test]
    fn plus1_matches_wrapping_semantics() {
        assert_eq!(Const(i64::MAX).plus1(), Const(i64::MIN));
        assert_eq!(Const(41).plus1(), Const(42));
        assert_eq!(Range(Some(0), Some(3)).plus1(), Range(Some(1), Some(4)));
        assert_eq!(Range(Some(0), Some(i64::MAX)).plus1(), Top);
        assert_eq!(Range(None, Some(7)).plus1(), Range(None, Some(8)));
        assert_eq!(Range(Some(7), None).plus1(), Range(Some(8), None));
        // Parity flips even at the wrap point: MAX (odd) + 1 = MIN (even).
        assert_eq!(Odd.plus1(), Even);
        assert_eq!(Even.plus1(), Odd);
        assert!(AbsVal::of(Domain::Parity, i64::MAX)
            .plus1()
            .contains(i64::MIN));
    }

    #[test]
    fn guard_refinements() {
        assert_eq!(Const(0).refine_nonzero(), Bot);
        assert_eq!(Const(7).refine_nonzero(), Const(7));
        assert_eq!(
            Range(Some(0), Some(4)).refine_nonzero(),
            Range(Some(1), Some(4))
        );
        assert_eq!(
            Range(Some(-4), Some(0)).refine_nonzero(),
            Range(Some(-4), Some(-1))
        );
        assert_eq!(Range(Some(0), Some(0)).refine_nonzero(), Bot);
        assert_eq!(Odd.refine_nonzero(), Odd);

        assert_eq!(Const(7).refine_zero(Domain::Const), Bot);
        assert_eq!(Top.refine_zero(Domain::Const), Const(0));
        assert_eq!(Range(Some(1), None).refine_zero(Domain::Interval), Bot);
        assert_eq!(
            Range(Some(-3), Some(5)).refine_zero(Domain::Interval),
            Range(Some(0), Some(0))
        );
        assert_eq!(Odd.refine_zero(Domain::Parity), Bot);
        assert_eq!(Even.refine_zero(Domain::Parity), Even);
        assert_eq!(Top.refine_zero(Domain::Parity), Even);
    }

    #[test]
    fn display_is_ascii_deterministic() {
        assert_eq!(Top.to_string(), "top");
        assert_eq!(Bot.to_string(), "bot");
        assert_eq!(Const(-3).to_string(), "-3");
        assert_eq!(Range(Some(0), None).to_string(), "[0, +inf]");
        assert_eq!(Range(None, Some(-1)).to_string(), "[-inf, -1]");
        assert_eq!(Even.to_string(), "even");
        assert_eq!(Odd.to_string(), "odd");
    }

    #[test]
    fn le_is_a_partial_order_on_samples() {
        let d = Domain::Interval;
        assert!(Range(Some(1), Some(2)).le(Range(Some(0), Some(3)), d));
        assert!(!Range(Some(0), Some(3)).le(Range(Some(1), Some(2)), d));
        assert!(Bot.le(Range(Some(0), Some(0)), d));
        assert!(Range(Some(0), Some(0)).le(Top, d));
    }
}
