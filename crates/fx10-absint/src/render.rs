//! Deterministic text and JSON renderers for `fx10 absint`.
//!
//! Output is byte-stable for a given program and options -- the CI golden
//! files diff it directly -- so everything is sorted, ASCII, and free of
//! timing or host detail.

use crate::interp::Absint;
use fx10_core::PruneReport;
use fx10_syntax::{Label, Program};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn label_heading(p: &Program, l: Label) -> String {
    let line = p.labels().line(l);
    if line > 0 {
        format!("{} (line {line})", p.labels().display(l))
    } else {
        p.labels().display(l)
    }
}

fn env_string(a: &Absint, l: Label) -> String {
    let cells: Vec<String> = a
        .env(l)
        .expect("reachable label")
        .iter()
        .map(|v| v.to_string())
        .collect();
    format!("[{}]", cells.join(", "))
}

/// The human-readable report.
pub fn render_text(
    file: &str,
    p: &Program,
    a: &Absint,
    prune: Option<&PruneReport>,
    input_desc: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{file}: abstract interpretation ({} domain, input {input_desc})\n",
        a.domain()
    ));
    out.push_str(&format!(
        "  fixpoint: {} round(s){}\n",
        a.rounds(),
        if a.capped() {
            " -- round cap hit, all-top fallback"
        } else {
            ""
        }
    ));
    out.push_str(&format!(
        "  labels: {} of {} reachable\n",
        a.reachable_count(),
        p.label_count()
    ));
    for i in 0..p.label_count() {
        let l = Label(i as u32);
        let heading = label_heading(p, l);
        if a.reachable(l) {
            out.push_str(&format!("  {heading}: a = {}\n", env_string(a, l)));
        } else {
            out.push_str(&format!(
                "  {heading}: unreachable -- {}\n",
                a.reason(l).expect("unreachable label has a reason")
            ));
        }
    }
    if !a.divergent_loops().is_empty() {
        out.push_str("  divergent loops:\n");
        for &(l, idx, v) in a.divergent_loops() {
            out.push_str(&format!(
                "    {}: guard a[{idx}] is {v} and never 0 -- reaching this loop never exits\n",
                label_heading(p, l)
            ));
        }
    }
    if let Some(report) = prune {
        let before = report.kept.len() + report.pruned.len();
        out.push_str(&format!(
            "  mhp pruning: {} of {before} pair(s) infeasible\n",
            report.pruned.len()
        ));
        for &(x, y) in &report.pruned {
            out.push_str(&format!(
                "    pruned ({}, {})\n",
                p.labels().display(x),
                p.labels().display(y)
            ));
        }
    }
    out
}

/// The machine-readable report (one JSON object, 2-space indent).
pub fn render_json(
    file: &str,
    p: &Program,
    a: &Absint,
    prune: Option<&PruneReport>,
    input_desc: &str,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", esc(file)));
    out.push_str(&format!("  \"domain\": \"{}\",\n", a.domain()));
    out.push_str(&format!("  \"input\": \"{}\",\n", esc(input_desc)));
    out.push_str(&format!("  \"rounds\": {},\n", a.rounds()));
    out.push_str(&format!("  \"capped\": {},\n", a.capped()));
    out.push_str(&format!("  \"reachable\": {},\n", a.reachable_count()));
    out.push_str(&format!("  \"labels\": {},\n", p.label_count()));
    out.push_str("  \"environments\": [\n");
    for i in 0..p.label_count() {
        let l = Label(i as u32);
        let comma = if i + 1 < p.label_count() { "," } else { "" };
        let name = esc(&p.labels().display(l));
        let line = p.labels().line(l);
        if a.reachable(l) {
            let env: Vec<String> = a
                .env(l)
                .expect("reachable")
                .iter()
                .map(|v| format!("\"{}\"", esc(&v.to_string())))
                .collect();
            out.push_str(&format!(
                "    {{\"label\": \"{name}\", \"line\": {line}, \"reachable\": true, \"env\": [{}]}}{comma}\n",
                env.join(", ")
            ));
        } else {
            out.push_str(&format!(
                "    {{\"label\": \"{name}\", \"line\": {line}, \"reachable\": false, \"reason\": \"{}\"}}{comma}\n",
                esc(&a.reason(l).expect("unreachable label has a reason"))
            ));
        }
    }
    out.push_str("  ],\n");
    out.push_str("  \"divergentLoops\": [");
    let divs: Vec<String> = a
        .divergent_loops()
        .iter()
        .map(|&(l, idx, v)| {
            format!(
                "{{\"label\": \"{}\", \"guardCell\": {idx}, \"guard\": \"{}\"}}",
                esc(&p.labels().display(l)),
                esc(&v.to_string())
            )
        })
        .collect();
    out.push_str(&divs.join(", "));
    out.push_str("],\n");
    match prune {
        Some(report) => {
            let before = report.kept.len() + report.pruned.len();
            let pairs: Vec<String> = report
                .pruned
                .iter()
                .map(|&(x, y)| {
                    format!(
                        "[\"{}\", \"{}\"]",
                        esc(&p.labels().display(x)),
                        esc(&p.labels().display(y))
                    )
                })
                .collect();
            out.push_str(&format!(
                "  \"pruning\": {{\"before\": {before}, \"after\": {}, \"pruned\": [{}]}}\n",
                report.kept.len(),
                pairs.join(", ")
            ));
        }
        None => out.push_str("  \"pruning\": null\n"),
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::oracle::FeasibilityOracle;
    use fx10_core::analyze;

    fn fixture() -> (Program, Absint, PruneReport) {
        let src = "def main() { a[0] = 0; L: while (a[0] != 0) { W1: a[1] = 1; } W2: a[1] = 2; }";
        let p = Program::parse(src).unwrap();
        let an = analyze(&p);
        let o = FeasibilityOracle::build(&p, &an, Domain::Const, Some(&[0, 0]));
        let report = o.prune(&an);
        (p.clone(), o.facts, report)
    }

    #[test]
    fn text_is_deterministic_and_complete() {
        let (p, a, report) = fixture();
        let t1 = render_text("x.fx10", &p, &a, Some(&report), "[0, 0]");
        let t2 = render_text("x.fx10", &p, &a, Some(&report), "[0, 0]");
        assert_eq!(t1, t2);
        assert!(t1.contains("const domain"));
        assert!(t1.contains("unreachable"), "{t1}");
        assert!(t1.contains("mhp pruning"));
        assert!(t1.is_ascii(), "goldens stay ASCII");
    }

    #[test]
    fn json_shape_is_stable() {
        let (p, a, report) = fixture();
        let j = render_json("x.fx10", &p, &a, Some(&report), "[0, 0]");
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"domain\": \"const\""));
        assert!(j.contains("\"environments\": ["));
        assert!(j.contains("\"pruning\": {"));
        // Every label appears exactly once.
        assert_eq!(
            j.matches("\"label\": ").count(),
            p.label_count() + a.divergent_loops().len()
        );
    }
}
