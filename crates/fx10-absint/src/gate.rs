//! The differential soundness gate.
//!
//! Runs the exact explorer and the abstract interpreter on the same
//! program and input, and checks the Galois connection empirically:
//!
//! 1. **containment** — for every visited concrete state `(A, T)` and
//!    every front label `l ∈ FTlabels(T)`, the abstract environment at
//!    `l` admits `A` (`A(d) ∈ γ(Env[l](d))` for every cell `d`);
//! 2. **pruning** — no pair the feasibility oracle prunes appears in the
//!    exact dynamic MHP relation.
//!
//! Both checks remain valid on a truncated exploration (visited ⊆
//! reachable), so the gate can cap the state budget and still mean
//! something; [`GateReport::truncated`] records when that happened.

use crate::domain::Domain;
use crate::oracle::FeasibilityOracle;
use fx10_core::analyze;
use fx10_robust::{Budget, CancelToken, Fx10Error};
use fx10_semantics::{explore_sampled, ExploreConfig};
use fx10_syntax::Program;

/// The outcome of one gate run (one program, one input, one domain).
#[derive(Debug, Clone)]
pub struct GateReport {
    /// The domain checked.
    pub domain: Domain,
    /// Distinct concrete states visited.
    pub states: usize,
    /// Containment checks performed (state × front-label pairs).
    pub checks: usize,
    /// True when the state budget cut the exploration short.
    pub truncated: bool,
    /// Containment or pruning violations, human-readable. Soundness holds
    /// iff this is empty. Capped at [`MAX_VIOLATIONS`].
    pub violations: Vec<String>,
    /// Static MHP pairs before pruning.
    pub pairs_before: usize,
    /// Pairs surviving the feasibility oracle.
    pub pairs_after: usize,
}

/// Violation messages kept per report; the count in excess is summarized.
pub const MAX_VIOLATIONS: usize = 20;

impl GateReport {
    /// Did the run witness soundness?
    pub fn sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the gate for one domain. `max_states` caps the exploration (the
/// gate stays valid on the explored prefix).
pub fn soundness_gate(
    p: &Program,
    input: &[i64],
    domain: Domain,
    max_states: usize,
) -> Result<GateReport, Fx10Error> {
    let analysis = analyze(p);
    let oracle = FeasibilityOracle::build(p, &analysis, domain, Some(input));

    let mut violations: Vec<String> = Vec::new();
    let mut suppressed = 0usize;
    let mut checks = 0usize;
    let facts = &oracle.facts;
    let labels = p.labels().clone();
    let mut sink = |sample: fx10_semantics::FrontSample| {
        for &l in &sample.fronts {
            checks += 1;
            if facts.admits(l, &sample.cells) {
                continue;
            }
            if violations.len() >= MAX_VIOLATIONS {
                suppressed += 1;
                continue;
            }
            let why = if !facts.reachable(l) {
                "label marked unreachable".to_string()
            } else {
                format!(
                    "env [{}] rejects the state",
                    facts
                        .env(l)
                        .unwrap_or(&[])
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            violations.push(format!(
                "{domain}: front {} with a = {:?}: {why}",
                labels.display(l),
                sample.cells
            ));
        }
    };
    let exploration = explore_sampled(
        p,
        input,
        ExploreConfig {
            max_states,
            ..ExploreConfig::default()
        },
        Budget::unlimited(),
        &CancelToken::new(),
        &mut sink,
    )?;

    let report = oracle.prune(&analysis);
    for &(a, b) in &report.pruned {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if exploration.mhp.contains(&(a, b)) {
            if violations.len() >= MAX_VIOLATIONS {
                suppressed += 1;
                continue;
            }
            violations.push(format!(
                "{domain}: pruned pair ({}, {}) occurs in dynamic MHP",
                labels.display(a),
                labels.display(b)
            ));
        }
    }
    if suppressed > 0 {
        violations.push(format!("... and {suppressed} more violation(s)"));
    }

    Ok(GateReport {
        domain,
        states: exploration.visited,
        checks,
        truncated: exploration.truncated,
        violations,
        pairs_before: analysis.mhp().len(),
        pairs_after: report.kept.len(),
    })
}

/// Runs [`soundness_gate`] at every domain, collecting the reports.
pub fn soundness_gate_all(
    p: &Program,
    input: &[i64],
    max_states: usize,
) -> Result<Vec<GateReport>, Fx10Error> {
    Domain::ALL
        .iter()
        .map(|&d| soundness_gate(p, input, d, max_states))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate_all(src: &str, input: &[i64]) -> Vec<GateReport> {
        let p = Program::parse(src).unwrap();
        soundness_gate_all(&p, input, 50_000).unwrap()
    }

    #[test]
    fn gate_passes_on_racing_counters() {
        let src = "def main() { finish { async { a[0] = a[0] + 1; } a[0] = a[1] + 1; } a[1] = a[0] + 1; }";
        for r in gate_all(src, &[0, 0]) {
            assert!(r.sound(), "{:?}", r.violations);
            assert!(!r.truncated);
            assert!(r.checks > 0);
        }
    }

    #[test]
    fn gate_passes_with_dead_loop_pruning() {
        let src = "def main() { a[0] = 0; while (a[0] != 0) { async { a[1] = 1; } a[1] = 2; } async { a[2] = 3; } skip; }";
        for r in gate_all(src, &[0, 0, 0]) {
            assert!(r.sound(), "{:?}", r.violations);
            // Parity cannot refute a zero guard (0 is even); the exact
            // domains prune the dead loop body's pairs.
            if r.domain != Domain::Parity {
                assert!(
                    r.pairs_after < r.pairs_before,
                    "{}: expected pruning ({} -> {})",
                    r.domain,
                    r.pairs_before,
                    r.pairs_after
                );
            }
        }
    }

    #[test]
    fn gate_valid_on_truncated_runs() {
        // Unbounded interleaving space; tiny budget truncates it.
        let src = "def main() { a[0] = 1; async { while (a[0] != 0) { a[1] = a[1] + 1; } } while (a[0] != 0) { a[2] = a[2] + 1; } }";
        let p = Program::parse(src).unwrap();
        let r = soundness_gate(&p, &[0, 0, 0], Domain::Interval, 500).unwrap();
        assert!(r.truncated);
        assert!(r.sound(), "{:?}", r.violations);
    }
}
