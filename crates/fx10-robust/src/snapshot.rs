//! The durable-snapshot container format.
//!
//! Long explorations must survive a killed process: the explorer
//! periodically serializes its whole state (interner tables, visited
//! set, pending frontier) into a *snapshot file* and can later resume
//! from it. This module owns the **container** — a hand-rolled,
//! versioned, checksummed binary layout — while the domain crates own
//! what goes *inside* the sections. The format is deliberately
//! dependency-free (std only) and self-validating: every way a file can
//! be damaged (truncation, wrong file, stale version, bit rot) decodes
//! to a typed [`SnapshotError`], never a panic and never a silently
//! wrong resume.
//!
//! ## Layout (version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//! 0       8     magic  b"FX10SNAP"
//! 8       4     format version, u32 LE (currently 1)
//! 12      4     section count, u32 LE
//! 16      ...   sections: { tag u32 LE, len u64 LE, payload }*
//! end-8   8     FNV-1a-64 checksum of every preceding byte, LE
//! ```
//!
//! All integers are little-endian. Sections are length-prefixed so
//! unknown tags can be skipped by future readers; the trailing checksum
//! covers the header and every section, so corruption anywhere in the
//! file is detected.

use crate::Fx10Error;
use std::fmt;

/// The 8-byte magic that opens every snapshot file.
pub const MAGIC: [u8; 8] = *b"FX10SNAP";

/// The current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the container checksum (and the fingerprint
/// hash used by snapshot producers). Dependency-free, stable across
/// platforms and runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every way a snapshot file can fail to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file ends before the declared structure does.
    Truncated,
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The container version is one this build cannot read.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch,
    /// A section the reader requires is absent.
    MissingSection(u32),
    /// A section payload is structurally invalid (bad counts, dangling
    /// ids, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::BadMagic => write!(f, "bad magic — not an FX10 snapshot"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "checksum mismatch — snapshot is corrupt"),
            SnapshotError::MissingSection(tag) => write!(f, "required section {tag} is missing"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for Fx10Error {
    fn from(e: SnapshotError) -> Self {
        Fx10Error::Snapshot {
            message: e.to_string(),
        }
    }
}

/// A growable little-endian byte buffer for one section payload.
#[derive(Debug, Default)]
pub struct SectionBuf {
    bytes: Vec<u8>,
}

impl SectionBuf {
    /// An empty payload buffer.
    pub fn new() -> Self {
        SectionBuf::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of
    /// the host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes verbatim (no length prefix — callers that need
    /// one write it themselves).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.bytes.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Serializes a snapshot: add tagged sections, then [`finish`]
/// (SnapshotWriter::finish) to get the framed, checksummed file bytes.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// A writer with no sections yet.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends one section. Tags should be unique; readers look sections
    /// up by tag.
    pub fn add_section(&mut self, tag: u32, payload: SectionBuf) {
        self.sections.push((tag, payload.bytes));
    }

    /// Frames every section and appends the trailing checksum.
    pub fn finish(self) -> Vec<u8> {
        let body: usize = self.sections.iter().map(|(_, p)| 12 + p.len()).sum();
        let mut out = Vec::with_capacity(16 + body + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// A parsed snapshot container: validated framing, sections addressable
/// by tag. Payload *contents* are validated by the caller via [`Cursor`].
#[derive(Debug)]
pub struct Snapshot {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// Parses and fully validates the container framing: magic, version,
    /// section walk, trailing checksum.
    pub fn parse(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        // Smallest possible file: magic + version + count + checksum.
        if bytes.len() < 8 + 4 + 4 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let body_end = bytes.len() - 8;
        let mut pos = 16usize;
        let mut sections = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            if pos + 12 > body_end {
                return Err(SnapshotError::Truncated);
            }
            let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            pos += 12;
            let len: usize = len
                .try_into()
                .map_err(|_| SnapshotError::Malformed("section length overflows".into()))?;
            if body_end - pos < len {
                return Err(SnapshotError::Truncated);
            }
            sections.push((tag, bytes[pos..pos + len].to_vec()));
            pos += len;
        }
        if pos != body_end {
            return Err(SnapshotError::Malformed(
                "trailing bytes after the last section".into(),
            ));
        }
        let declared = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
        if fnv1a64(&bytes[..body_end]) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }
        Ok(Snapshot { sections })
    }

    /// A cursor over the payload of the section tagged `tag`.
    pub fn section(&self, tag: u32) -> Result<Cursor<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| Cursor {
                bytes: payload,
                pos: 0,
            })
            .ok_or(SnapshotError::MissingSection(tag))
    }

    /// The section tags present, in file order.
    pub fn tags(&self) -> Vec<u32> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

/// A bounds-checked reader over one section payload. Every read past
/// the end is [`SnapshotError::Truncated`]; [`done`](Cursor::done)
/// rejects trailing bytes so payload lengths are validated exactly.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that
    /// do not fit the host.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        self.get_u64()?
            .try_into()
            .map_err(|_| SnapshotError::Malformed("count overflows usize".into()))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn done(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "{} trailing byte(s) in section",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        let mut a = SectionBuf::new();
        a.put_u32(7);
        a.put_u64(1 << 40);
        a.put_i64(-3);
        a.put_u8(0xAB);
        w.add_section(1, a);
        let mut b = SectionBuf::new();
        b.put_usize(99);
        w.add_section(2, b);
        w.finish()
    }

    #[test]
    fn roundtrip_reads_back_every_value() {
        let bytes = sample();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.tags(), vec![1, 2]);
        let mut c = snap.section(1).unwrap();
        assert_eq!(c.get_u32().unwrap(), 7);
        assert_eq!(c.get_u64().unwrap(), 1 << 40);
        assert_eq!(c.get_i64().unwrap(), -3);
        assert_eq!(c.get_u8().unwrap(), 0xAB);
        c.done().unwrap();
        let mut c = snap.section(2).unwrap();
        assert_eq!(c.get_usize().unwrap(), 99);
        c.done().unwrap();
        assert_eq!(
            snap.section(3).unwrap_err(),
            SnapshotError::MissingSection(3)
        );
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = SnapshotWriter::new().finish();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert!(snap.tags().is_empty());
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample();
        for cut in [0, 5, 12, 17, bytes.len() - 9, bytes.len() - 1] {
            let err = Snapshot::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample();
        bytes[0] = b'N';
        assert_eq!(
            Snapshot::parse(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn unsupported_version_is_detected_before_the_checksum() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // The checksum is now stale too, but the version verdict must win
        // so the user sees the actionable cause.
        assert_eq!(
            Snapshot::parse(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn bit_rot_is_detected_by_the_checksum() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Snapshot::parse(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::ChecksumMismatch | SnapshotError::Truncated
            ),
            "{err:?}"
        );
        let mut bytes = sample();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            Snapshot::parse(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn overread_and_trailing_bytes_are_malformed() {
        let mut w = SnapshotWriter::new();
        let mut s = SectionBuf::new();
        s.put_u8(1);
        w.add_section(9, s);
        let bytes = w.finish();
        let snap = Snapshot::parse(&bytes).unwrap();
        let mut c = snap.section(9).unwrap();
        assert_eq!(c.remaining(), 1);
        assert!(c.done().is_err(), "unconsumed byte must be rejected");
        c.get_u8().unwrap();
        c.done().unwrap();
        assert_eq!(c.get_u32().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn snapshot_error_maps_to_exit_code_2() {
        let e: Fx10Error = SnapshotError::BadMagic.into();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("magic"), "{e}");
    }
}
