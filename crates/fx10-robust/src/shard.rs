//! Process-level shard supervision: heartbeats, restarts, migration.
//!
//! The [`ShardSupervisor`] owns a fleet of worker *processes* connected
//! by pipes speaking the [`crate::ipc`] frame protocol. It is entirely
//! domain-agnostic: it routes dest-tagged `BATCH` frames between
//! workers, tracks liveness, restarts crashed or wedged workers with
//! decorrelated backoff, migrates a dead worker's shards (checkpoint +
//! unacked frames) to a survivor, and detects global quiescence with an
//! explicit probe round. What the frames *mean* — programs, frontier
//! batches, results — is owned by the domain layer, which supplies the
//! `INIT` bodies and interprets the `RESULT` bodies.
//!
//! ## Delivery and durability contract
//!
//! Every work-bearing frame (`BATCH`, `ADOPT`) the supervisor delivers
//! is retained until the receiving worker `ACK`s its sequence number.
//! Workers ack a frame only once a durable checkpoint covering its
//! effects exists, so on restart the supervisor can redeliver every
//! unacked frame and the worker's checkpoint-resume replays the rest —
//! no state is lost to a crash between delivery and durability.
//! Redelivered frames keep their original sequence numbers; worker-side
//! dedup (the visited set restored from the checkpoint) makes
//! redelivery idempotent.
//!
//! ## Quiescence
//!
//! Termination cannot be read off local idleness alone: a frame may be
//! in flight. The supervisor counts work-bearing frames delivered per
//! worker (`sent`) and each worker reports how many it has processed
//! this incarnation. When every live worker claims to be idle and the
//! counters match, the supervisor runs a probe round: `PROBE(token)` to
//! every worker, and the round succeeds only if every `PROBE_REPLY`
//! still reports idle with matching counters and *no* `BATCH`, death or
//! restart arrives during the round. Pipes are FIFO, so any batch a
//! worker emitted before its reply is received before the reply — a
//! successful round proves no work is in flight anywhere.

use crate::backoff::{RestartPolicy, XorShift64};
use crate::conn::{self, Attach, ChaosLink, ConnSupervisor, FaultyReceiver, FaultySender, NetChaos};
use crate::ipc::{self, kind, Transport, WireMsg};
use crate::{CancelToken, Exhaustion, Fx10Error};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A stuck quiescence round (a `PROBE` or its reply lost to the
/// network) is abandoned and re-run after this long.
const ROUND_TIMEOUT: Duration = Duration::from_secs(2);

/// A result-less worker is re-`FINISH`ed at this cadence (not the
/// fast unacked-work cadence): a collected `RESULT` can be tens of
/// megabytes and take seconds to build and transmit, and every
/// duplicate `FINISH` elicits a full re-send. Re-finishing on the
/// work-retransmission cadence floods a worker that is busy answering
/// with more copies than it can drain.
const FINISH_RETRANSMIT: Duration = Duration::from_secs(2);

/// Configuration of a shard fleet.
#[derive(Debug, Clone)]
pub struct ShardSupervisor {
    /// Number of shards (= worker processes at launch; migration can
    /// concentrate several shards on one survivor).
    pub shards: usize,
    /// Restart budget and backoff for crashed/wedged workers.
    pub policy: RestartPolicy,
    /// A worker silent for this long is declared wedged and killed.
    pub stall_after: Duration,
    /// Event-loop poll interval (also bounds shutdown latency).
    pub poll: Duration,
    /// Wall-clock budget for the whole supervised run.
    pub deadline: Option<Duration>,
    /// Stop (truncated) once the fleet's visited states reach this cap.
    pub progress_cap: Option<u64>,
    /// Frame-length cap passed to the pipe readers.
    pub max_frame: usize,
}

impl Default for ShardSupervisor {
    fn default() -> Self {
        ShardSupervisor {
            shards: 2,
            policy: RestartPolicy::default(),
            stall_after: Duration::from_secs(10),
            poll: Duration::from_millis(20),
            deadline: None,
            progress_cap: None,
            max_frame: ipc::MAX_FRAME_LEN,
        }
    }
}

/// What a supervised run produced, with full provenance.
#[derive(Debug, Default)]
pub struct SupervisionReport {
    /// Per-slot `RESULT` bodies (`None` for slots that died and whose
    /// shards were migrated away).
    pub results: Vec<Option<Vec<u8>>>,
    /// Human-readable supervision events, in order: restarts,
    /// migrations, quiescence, truncation.
    pub events: Vec<String>,
    /// Worker restarts performed.
    pub restarts: u32,
    /// Shard migrations performed.
    pub migrations: u32,
    /// Did the run stop at the progress cap rather than quiescence?
    pub truncated: bool,
}

/// Connection parameters of the socket transport.
#[derive(Debug, Clone)]
pub struct TcpLinkConfig {
    /// Shared handshake secret (empty = structural checks only).
    pub secret: Vec<u8>,
    /// The run's program fingerprint, agreed during the handshake.
    pub fingerprint: u64,
    /// A connected worker silent past this window has its connection
    /// dropped (it reconnects, or the stall detector escalates).
    pub heartbeat_timeout: Duration,
    /// Unacked work frames idle past this window are retransmitted.
    pub retransmit_after: Duration,
    /// Connection drops tolerated per worker incarnation before the
    /// fleet escalates to restart/migration.
    pub max_reconnects: u32,
    /// Deterministic network-fault plan (inactive by default).
    pub chaos: NetChaos,
}

impl Default for TcpLinkConfig {
    fn default() -> Self {
        TcpLinkConfig {
            secret: Vec::new(),
            fingerprint: 0,
            heartbeat_timeout: Duration::from_millis(1500),
            retransmit_after: Duration::from_millis(250),
            max_reconnects: 5,
            chaos: NetChaos::default(),
        }
    }
}

/// How the fleet talks to its workers.
pub enum FleetLink {
    /// The original transport: each worker's stdin/stdout.
    Pipes,
    /// A bound TCP listener workers dial back into ([`crate::conn`]
    /// handshake, heartbeats, reconnect-with-resume).
    Tcp {
        /// The already-bound listener (bind to port 0 to let the OS
        /// pick; read the address back before spawning workers).
        listener: TcpListener,
        /// Connection supervision parameters.
        cfg: TcpLinkConfig,
    },
}

enum PumpEvent {
    Frame {
        slot: usize,
        gen: u64,
        msg: WireMsg,
    },
    Closed {
        slot: usize,
        gen: u64,
        error: Option<Fx10Error>,
    },
    /// A handshaked socket for `slot` (socket transport only).
    Attach {
        slot: usize,
        boot_id: u64,
        stream: TcpStream,
        peer: String,
    },
    /// A connection that failed the handshake (already closed).
    Rejected { peer: String, why: String },
}

struct Slot {
    child: Option<Child>,
    writer: Option<Sender<Vec<u8>>>,
    incarnation: u64,
    attempt: u32,
    prev_backoff: Duration,
    alive: bool,
    last_heard: Instant,
    idle: bool,
    visited: u64,
    processed: u64,
    /// Work-bearing frames delivered this incarnation.
    sent: u64,
    /// Monotonic across incarnations, so redelivered seqs stay unique.
    next_seq: u64,
    unacked: Vec<(u64, WireMsg)>,
    owned: Vec<u32>,
    result: Option<Vec<u8>>,
    /// When the last `FINISH` was sent down this slot's transport —
    /// the [`FINISH_RETRANSMIT`] cadence gate.
    finish_tx: Option<Instant>,
    /// Reassembly buffer for a streamed result (`RESULT_PART` frames,
    /// in order; part 0 restarts the stream).
    part_buf: Vec<u8>,
    /// `(total, next expected index)` of an in-progress reassembly.
    part_state: Option<(u32, u32)>,
    ckpt: Option<PathBuf>,
    /// Connection state machine (socket transport; also provides the
    /// batch-dedup window on pipes).
    conn: ConnSupervisor,
    /// Control handle to the live socket: shutting it down unblocks the
    /// pump thread and tells the worker to reconnect.
    ctl: Option<TcpStream>,
}

struct Round {
    token: u64,
    awaiting: Vec<bool>,
    ok: bool,
    started: Instant,
}

/// Picks the migration target: the live slot owning the fewest shards
/// (ties to the lowest index). `None` when no slot is alive.
fn pick_survivor(slots: &[(bool, usize)]) -> Option<usize> {
    slots
        .iter()
        .enumerate()
        .filter(|(_, (alive, _))| *alive)
        .min_by_key(|(i, (_, owned))| (*owned, *i))
        .map(|(i, _)| i)
}

struct Fleet<'a, S, I, C>
where
    S: FnMut(usize) -> Command,
    I: FnMut(usize, u32, &[u32]) -> Vec<u8>,
    C: Fn(usize) -> Option<PathBuf>,
{
    cfg: &'a ShardSupervisor,
    spawn: S,
    init_body: I,
    ckpt_path: C,
    slots: Vec<Slot>,
    /// shard id → owning slot.
    owner: Vec<usize>,
    tx: Sender<PumpEvent>,
    rng: XorShift64,
    events: Vec<String>,
    restarts: u32,
    migrations: u32,
    round: Option<Round>,
    probe_token: u64,
    finishing: bool,
    truncated: bool,
    /// Socket-transport runtime (`None` on pipes).
    net: Option<NetFleet>,
}

struct NetFleet {
    chaos: NetChaos,
    stop_accept: Arc<AtomicBool>,
}

impl<S, I, C> Fleet<'_, S, I, C>
where
    S: FnMut(usize) -> Command,
    I: FnMut(usize, u32, &[u32]) -> Vec<u8>,
    C: Fn(usize) -> Option<PathBuf>,
{
    fn note(&mut self, ev: String) {
        self.events.push(ev);
    }

    /// The generation that stamps pump events for `slot`: the process
    /// incarnation on pipes, the connection generation on sockets.
    fn current_gen(&self, slot: usize) -> u64 {
        if self.net.is_some() {
            self.slots[slot].conn.gen()
        } else {
            self.slots[slot].incarnation
        }
    }

    /// Spawns (or respawns) the worker process for `slot` and replays
    /// its protocol preamble: `INIT`, then every unacked frame in
    /// sequence order. On the socket transport the preamble is deferred
    /// until the worker dials back in ([`Fleet::attach_slot`]).
    fn spawn_slot(&mut self, slot: usize) -> Result<(), Fx10Error> {
        let net = self.net.is_some();
        let mut cmd = (self.spawn)(slot);
        if net {
            cmd.stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
        } else {
            cmd.stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
        }
        let mut child = cmd.spawn().map_err(|e| Fx10Error::Io {
            path: "<shard spawn>".into(),
            message: e.to_string(),
        })?;
        let pipes = if net {
            None
        } else {
            Some((
                child.stdin.take().expect("stdin was piped"),
                child.stdout.take().expect("stdout was piped"),
            ))
        };

        let s = &mut self.slots[slot];
        s.incarnation += 1;
        let inc = s.incarnation;
        s.child = Some(child);
        s.alive = true;
        s.last_heard = Instant::now();
        s.idle = false;
        s.processed = 0;
        s.sent = s.unacked.len() as u64;
        s.result = None;
        s.finish_tx = None;
        s.part_buf = Vec::new();
        s.part_state = None;
        s.writer = None;
        s.ctl = None;
        s.conn.on_spawn();

        let Some((stdin, stdout)) = pipes else {
            // Socket transport: the worker dials back in and the
            // handshake produces an `Attach` event; INIT and the
            // unacked replay happen there.
            return Ok(());
        };

        let transport = Box::new(ipc::PipeTransport::new(stdout, stdin, self.cfg.max_frame));
        self.pump_transport(slot, inc, transport);
        self.replay_preamble(slot);
        Ok(())
    }

    /// Spawns the writer and pump threads for one transport, stamping
    /// every event with `gen`.
    fn pump_transport(&mut self, slot: usize, gen: u64, transport: Box<dyn Transport>) {
        let (mut tx_half, mut rx_half) = transport.split();
        if let Some(net) = &self.net {
            if net.chaos.is_active() {
                tx_half = Box::new(FaultySender::wrap(
                    tx_half,
                    ChaosLink::for_conn(&net.chaos, slot as u32, gen, false),
                ));
                rx_half = Box::new(FaultyReceiver::wrap(
                    rx_half,
                    ChaosLink::for_conn(&net.chaos, slot as u32, gen, true),
                ));
            }
        }

        // Writer thread: owns the write half, drains a frame queue.
        // Exits on channel close (supervisor dropped it) or a dead peer.
        let (wtx, wrx) = channel::<Vec<u8>>();
        self.slots[slot].writer = Some(wtx);
        thread::spawn(move || {
            for frame in wrx {
                if tx_half.send_frame(&frame).is_err() {
                    break;
                }
            }
        });

        // Pump thread: owns the read half, forwards decoded frames.
        let tx = self.tx.clone();
        thread::spawn(move || loop {
            match rx_half.recv_frame() {
                Ok(Some(msg)) => {
                    if tx.send(PumpEvent::Frame { slot, gen, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(PumpEvent::Closed {
                        slot,
                        gen,
                        error: None,
                    });
                    return;
                }
                Err(e) => {
                    let _ = tx.send(PumpEvent::Closed {
                        slot,
                        gen,
                        error: Some(e),
                    });
                    return;
                }
            }
        });
    }

    /// (Re)sends the protocol preamble down a fresh transport: `INIT`,
    /// then every unacked work frame with its original sequence number.
    fn replay_preamble(&mut self, slot: usize) {
        let attempt = self.slots[slot].attempt;
        let owned = self.slots[slot].owned.clone();
        let body = (self.init_body)(slot, attempt, &owned);
        self.enqueue(slot, &WireMsg::new(kind::INIT, 0, body));
        let replay: Vec<WireMsg> = self.slots[slot]
            .unacked
            .iter()
            .map(|(_, m)| m.clone())
            .collect();
        for m in &replay {
            self.enqueue(slot, m);
        }
        self.slots[slot].conn.mark_tx();
    }

    /// A handshaked socket arrived for `slot`: wire it up, replay the
    /// preamble, and resume.
    fn attach_slot(&mut self, slot: usize, boot_id: u64, stream: TcpStream, peer: String) {
        if slot >= self.slots.len() || !self.slots[slot].alive {
            let _ = stream.shutdown(Shutdown::Both);
            self.note(format!(
                "dropping connection from {peer}: slot {slot} is not live"
            ));
            return;
        }
        if let Some(old) = self.slots[slot].ctl.take() {
            let _ = old.shutdown(Shutdown::Both);
        }
        let attach = self.slots[slot].conn.on_attach(boot_id);
        let gen = self.slots[slot].conn.gen();
        let ctl = stream.try_clone().ok();
        let max_frame = self.cfg.max_frame;
        self.slots[slot].ctl = ctl;
        self.slots[slot].last_heard = Instant::now();
        let unacked = self.slots[slot].unacked.len();
        self.note(match attach {
            Attach::Fresh => format!("worker {slot} connected from {peer}"),
            Attach::Resumed => format!(
                "worker {slot} reconnected from {peer} (conn {gen}, replaying {unacked} unacked frame(s))"
            ),
        });
        self.pump_transport(slot, gen, Box::new(ipc::TcpTransport::new(stream, max_frame)));
        self.replay_preamble(slot);
        // A FINISH (or its RESULT) in flight when the old connection
        // died is gone: re-issue it on the fresh transport rather than
        // waiting out the retransmission cadence.
        if self.finishing && self.slots[slot].result.is_none() {
            self.slots[slot].finish_tx = Some(Instant::now());
            self.enqueue(slot, &WireMsg::new(kind::FINISH, 0, Vec::new()));
        }
    }

    /// The socket to `slot` died (EOF, error, or heartbeat expiry) but
    /// the process may well be alive: drop the connection and wait for
    /// the worker to dial back in, escalating to restart/migration when
    /// the reconnect budget is spent.
    fn conn_lost(&mut self, slot: usize, why: &str) -> Result<(), Fx10Error> {
        // The worker may have died with the connection.
        let exited = self.slots[slot]
            .child
            .as_mut()
            .is_some_and(|c| matches!(c.try_wait(), Ok(Some(_))));
        if exited {
            return self.fail_slot(slot, &format!("exited ({why})"));
        }
        self.round = None;
        let s = &mut self.slots[slot];
        if let Some(ctl) = s.ctl.take() {
            let _ = ctl.shutdown(Shutdown::Both);
        }
        s.writer = None;
        let within_budget = s.conn.on_drop_conn();
        let drops = s.conn.drops();
        let max = s.conn.max_reconnects;
        self.note(format!(
            "worker {slot}: connection lost ({why}); drop {drops}/{max}"
        ));
        if within_budget {
            Ok(())
        } else {
            self.fail_slot(slot, "reconnect budget exhausted")
        }
    }

    /// Queues a frame for the slot's writer thread. A closed queue means
    /// the worker died; the pump's `Closed` event handles that.
    fn enqueue(&mut self, slot: usize, msg: &WireMsg) {
        if let Some(w) = &self.slots[slot].writer {
            let _ = w.send(msg.frame());
        }
    }

    /// Delivers a work-bearing frame: assigns a sequence number,
    /// retains it for redelivery, counts it toward quiescence.
    fn deliver_work(&mut self, slot: usize, kind: u32, body: Vec<u8>) {
        let s = &mut self.slots[slot];
        let seq = s.next_seq;
        s.next_seq += 1;
        let msg = WireMsg::new(kind, seq, body);
        s.unacked.push((seq, msg.clone()));
        s.sent += 1;
        s.conn.mark_tx();
        self.enqueue(slot, &msg);
    }

    fn reap(&mut self, slot: usize) {
        self.slots[slot].writer = None;
        if let Some(ctl) = self.slots[slot].ctl.take() {
            let _ = ctl.shutdown(Shutdown::Both);
        }
        if let Some(mut child) = self.slots[slot].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// A worker failed (exited, wedged, or protocol violation): restart
    /// it while the budget lasts, then migrate its shards.
    fn fail_slot(&mut self, slot: usize, why: &str) -> Result<(), Fx10Error> {
        self.round = None;
        self.finishing = false;
        self.reap(slot);
        self.slots[slot].alive = false;
        let attempt = self.slots[slot].attempt;
        if attempt < self.cfg.policy.max_restarts {
            self.slots[slot].attempt += 1;
            self.restarts += 1;
            let prev = self.slots[slot].prev_backoff;
            let pause = self.rng.backoff(
                self.cfg.policy.base_backoff,
                if prev.is_zero() {
                    self.cfg.policy.base_backoff
                } else {
                    prev
                },
                self.cfg.policy.max_backoff,
            );
            self.slots[slot].prev_backoff = pause;
            self.note(format!(
                "shard worker {slot}: {why}; restart {}/{} after {}ms backoff",
                attempt + 1,
                self.cfg.policy.max_restarts,
                pause.as_millis()
            ));
            thread::sleep(pause);
            match self.spawn_slot(slot) {
                Ok(()) => Ok(()),
                Err(e) => self.fail_slot(slot, &format!("respawn failed ({e})")),
            }
        } else {
            self.note(format!(
                "shard worker {slot}: {why}; restart budget exhausted"
            ));
            self.migrate(slot)
        }
    }

    /// Moves a dead slot's shards — checkpoint plus unacked frames — to
    /// the live slot owning the fewest shards.
    fn migrate(&mut self, dead: usize) -> Result<(), Fx10Error> {
        let occupancy: Vec<(bool, usize)> = self
            .slots
            .iter()
            .map(|s| (s.alive, s.owned.len()))
            .collect();
        let Some(survivor) = pick_survivor(&occupancy) else {
            return Err(Fx10Error::WorkerPanicked {
                worker: dead,
                message: "no live shard worker left to migrate to".into(),
            });
        };
        let moved = std::mem::take(&mut self.slots[dead].owned);
        for &sh in &moved {
            self.owner[sh as usize] = survivor;
        }
        self.slots[survivor].owned.extend(moved.iter().copied());
        let ckpt = self.slots[dead]
            .ckpt
            .as_ref()
            .and_then(|p| std::fs::read(p).ok());
        let orphaned = std::mem::take(&mut self.slots[dead].unacked);
        self.note(format!(
            "migrating shards {moved:?} from worker {dead} to worker {survivor} \
             ({} checkpoint, {} unacked frame(s))",
            if ckpt.is_some() { "with" } else { "no" },
            orphaned.len()
        ));
        self.migrations += 1;
        // ADOPT first, then the orphaned frames: FIFO delivery means the
        // survivor installs the checkpoint before replaying them, so
        // nothing is double-counted.
        self.deliver_work(
            survivor,
            kind::ADOPT,
            ipc::adopt_body(&moved, ckpt.as_deref()),
        );
        for (_, m) in orphaned {
            self.deliver_work(survivor, m.kind, m.body);
        }
        Ok(())
    }

    fn handle_frame(&mut self, slot: usize, msg: WireMsg) -> Result<(), Fx10Error> {
        self.slots[slot].last_heard = Instant::now();
        match msg.kind {
            kind::HELLO => {}
            kind::BATCH => {
                // Ack receipt immediately (and re-ack redeliveries —
                // the worker retransmits until acked on lossy links).
                self.enqueue(
                    slot,
                    &WireMsg::new(kind::ACK, 0, ipc::ack_body(&[msg.seq])),
                );
                if !self.slots[slot].conn.admit(msg.seq) {
                    // A redelivery of a batch already routed: dropping
                    // it here is what keeps terminals single-counted.
                    return Ok(());
                }
                // Any in-flight work invalidates a quiescence round.
                self.round = None;
                match ipc::batch_dest(&msg.body) {
                    Ok(dest) if (dest as usize) < self.owner.len() => {
                        let target = self.owner[dest as usize];
                        self.deliver_work(target, kind::BATCH, msg.body);
                    }
                    _ => {
                        return self.fail_slot(slot, "sent a batch for an unknown shard");
                    }
                }
            }
            kind::ACK => match ipc::parse_ack_body(&msg.body) {
                Ok(seqs) => {
                    self.slots[slot].unacked.retain(|(s, _)| !seqs.contains(s));
                }
                Err(_) => return self.fail_slot(slot, "sent a malformed ack"),
            },
            kind::PROGRESS => match ipc::parse_progress_body(&msg.body) {
                Ok(p) => {
                    let s = &mut self.slots[slot];
                    s.visited = p.visited;
                    s.processed = p.processed;
                    s.idle = p.idle;
                }
                Err(_) => return self.fail_slot(slot, "sent a malformed progress report"),
            },
            kind::PROBE_REPLY => {
                if let Ok((token, processed, idle)) = ipc::parse_probe_reply_body(&msg.body) {
                    let sent = self.slots[slot].sent;
                    if let Some(r) = &mut self.round {
                        if r.token == token && r.awaiting[slot] {
                            r.awaiting[slot] = false;
                            r.ok &= idle && processed == sent;
                            if r.awaiting.iter().all(|w| !w) {
                                let ok = r.ok;
                                self.round = None;
                                if ok {
                                    self.begin_finish(false);
                                }
                            }
                        }
                    }
                } else {
                    return self.fail_slot(slot, "sent a malformed probe reply");
                }
            }
            kind::RESULT => {
                self.slots[slot].result = Some(msg.body);
            }
            kind::RESULT_PART => match ipc::parse_result_part_body(&msg.body) {
                Ok((index, total, chunk)) => {
                    let s = &mut self.slots[slot];
                    if index == 0 {
                        // Part 0 (re)starts the stream — a re-FINISHed
                        // worker re-sends its result from the top.
                        s.part_buf = chunk.to_vec();
                        s.part_state = Some((total, 1));
                    } else if let Some((t, next)) = s.part_state {
                        if t == total && index == next {
                            s.part_buf.extend_from_slice(chunk);
                            s.part_state = Some((t, next + 1));
                        }
                        // Anything else is a duplicate or a tail whose
                        // head was lost: ignore it — the FINISH
                        // retransmission restarts the stream.
                    }
                    let s = &mut self.slots[slot];
                    if s.part_state.is_some_and(|(t, next)| next == t) {
                        s.result = Some(std::mem::take(&mut s.part_buf));
                        s.part_state = None;
                    }
                }
                Err(_) => return self.fail_slot(slot, "sent a malformed result part"),
            },
            _ => return self.fail_slot(slot, "sent an unexpected message kind"),
        }
        Ok(())
    }

    fn begin_probe(&mut self) {
        self.probe_token += 1;
        let token = self.probe_token;
        let awaiting: Vec<bool> = self.slots.iter().map(|s| s.alive).collect();
        for slot in (0..self.slots.len()).filter(|&s| awaiting[s]) {
            self.enqueue(slot, &WireMsg::new(kind::PROBE, 0, ipc::probe_body(token)));
        }
        self.round = Some(Round {
            token,
            awaiting,
            ok: true,
            started: Instant::now(),
        });
    }

    fn begin_finish(&mut self, truncated: bool) {
        if self.finishing {
            return;
        }
        self.finishing = true;
        self.truncated = truncated;
        self.round = None;
        self.note(if truncated {
            "progress cap reached; collecting truncated results".into()
        } else {
            "fleet quiesced; collecting results".into()
        });
        for slot in 0..self.slots.len() {
            if self.slots[slot].alive {
                self.slots[slot].finish_tx = Some(Instant::now());
                self.enqueue(slot, &WireMsg::new(kind::FINISH, 0, Vec::new()));
            }
        }
    }

    /// Graceful shutdown: stop accepting, close every transport
    /// (workers exit on EOF), give them a moment, then kill stragglers.
    fn shutdown(&mut self) {
        if let Some(net) = &self.net {
            net.stop_accept.store(true, Ordering::Relaxed);
        }
        for s in &mut self.slots {
            s.writer = None;
            if let Some(ctl) = s.ctl.take() {
                let _ = ctl.shutdown(Shutdown::Both);
            }
        }
        let grace = Instant::now();
        for i in 0..self.slots.len() {
            if let Some(child) = &mut self.slots[i].child {
                while grace.elapsed() < Duration::from_millis(500) {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) => thread::sleep(Duration::from_millis(10)),
                        Err(_) => break,
                    }
                }
            }
            self.reap(i);
        }
    }
}

impl ShardSupervisor {
    /// Runs a shard fleet to completion.
    ///
    /// - `spawn(slot)` builds the worker command line (stdio is wired by
    ///   the supervisor),
    /// - `init_body(slot, attempt, owned_shards)` encodes the
    ///   domain-level `INIT` payload for a (re)spawn,
    /// - `ckpt_path(slot)` names the worker's durable checkpoint file,
    ///   read at migration time.
    ///
    /// Returns per-slot `RESULT` bodies plus full supervision
    /// provenance, or the error that ended the run (cancellation,
    /// deadline, or fleet exhaustion) — callers degrade to the next
    /// ladder rung on anything except `Cancelled`.
    pub fn run(
        &self,
        cancel: &CancelToken,
        spawn: impl FnMut(usize) -> Command,
        init_body: impl FnMut(usize, u32, &[u32]) -> Vec<u8>,
        ckpt_path: impl Fn(usize) -> Option<PathBuf>,
    ) -> Result<SupervisionReport, Fx10Error> {
        self.run_linked(cancel, FleetLink::Pipes, spawn, init_body, ckpt_path)
    }

    /// [`ShardSupervisor::run`] over an explicit transport. With
    /// [`FleetLink::Tcp`] the workers dial back into the listener
    /// (spawned with null stdio), every connection passes the
    /// [`crate::conn`] handshake, and the fleet additionally supervises
    /// *connections*: heartbeat expiry drops a silent socket, a
    /// reconnecting worker resumes with its redelivery window intact,
    /// and exhausted reconnect budgets escalate to the same
    /// restart/migration machinery pipe failures use.
    pub fn run_linked(
        &self,
        cancel: &CancelToken,
        link: FleetLink,
        spawn: impl FnMut(usize) -> Command,
        init_body: impl FnMut(usize, u32, &[u32]) -> Vec<u8>,
        ckpt_path: impl Fn(usize) -> Option<PathBuf>,
    ) -> Result<SupervisionReport, Fx10Error> {
        assert!(self.shards > 0, "a fleet needs at least one shard");
        let (tx, rx) = channel::<PumpEvent>();
        let now = Instant::now();
        let deadline = self.deadline.map(|d| now + d);
        let (net, link_cfg) = match link {
            FleetLink::Pipes => (None, TcpLinkConfig::default()),
            FleetLink::Tcp { listener, cfg } => {
                let stop = Arc::new(AtomicBool::new(false));
                accept_loop(
                    listener,
                    conn::HandshakeConfig {
                        secret: cfg.secret.clone(),
                        fingerprint: cfg.fingerprint,
                        shards: self.shards as u32,
                        max_frame: self.max_frame,
                    },
                    tx.clone(),
                    Arc::clone(&stop),
                );
                (
                    Some(NetFleet {
                        chaos: cfg.chaos,
                        stop_accept: stop,
                    }),
                    cfg,
                )
            }
        };
        let mut fleet = Fleet {
            cfg: self,
            spawn,
            init_body,
            ckpt_path,
            slots: (0..self.shards)
                .map(|i| Slot {
                    child: None,
                    writer: None,
                    incarnation: 0,
                    attempt: 0,
                    prev_backoff: Duration::ZERO,
                    alive: false,
                    last_heard: now,
                    idle: false,
                    visited: 0,
                    processed: 0,
                    sent: 0,
                    next_seq: 0,
                    unacked: Vec::new(),
                    owned: vec![i as u32],
                    result: None,
                    finish_tx: None,
                    part_buf: Vec::new(),
                    part_state: None,
                    ckpt: None,
                    conn: ConnSupervisor::new(
                        link_cfg.heartbeat_timeout,
                        link_cfg.retransmit_after,
                        link_cfg.max_reconnects,
                    ),
                    ctl: None,
                })
                .collect(),
            owner: (0..self.shards).collect(),
            tx,
            rng: XorShift64::new(self.policy.seed),
            events: Vec::new(),
            restarts: 0,
            migrations: 0,
            round: None,
            probe_token: 0,
            finishing: false,
            truncated: false,
            net,
        };
        for i in 0..self.shards {
            fleet.slots[i].ckpt = (fleet.ckpt_path)(i);
        }

        let finish = |mut fleet: Fleet<'_, _, _, _>, r: Result<(), Fx10Error>| {
            fleet.shutdown();
            match r {
                Ok(()) => Ok(SupervisionReport {
                    results: fleet.slots.iter_mut().map(|s| s.result.take()).collect(),
                    events: std::mem::take(&mut fleet.events),
                    restarts: fleet.restarts,
                    migrations: fleet.migrations,
                    truncated: fleet.truncated,
                }),
                Err(e) => Err(e),
            }
        };

        for i in 0..self.shards {
            if let Err(e) = fleet.spawn_slot(i) {
                if let Err(e2) = fleet.fail_slot(i, &format!("initial spawn failed ({e})")) {
                    return finish(fleet, Err(e2));
                }
            }
        }

        loop {
            match rx.recv_timeout(self.poll) {
                Ok(PumpEvent::Frame { slot, gen, msg }) => {
                    if fleet.slots[slot].alive && fleet.current_gen(slot) == gen {
                        if let Err(e) = fleet.handle_frame(slot, msg) {
                            return finish(fleet, Err(e));
                        }
                    }
                }
                Ok(PumpEvent::Closed { slot, gen, error }) => {
                    if fleet.slots[slot].alive && fleet.current_gen(slot) == gen {
                        let r = if fleet.net.is_some() {
                            let why = match error {
                                Some(e) => format!("socket failed ({e})"),
                                None => "peer closed".into(),
                            };
                            fleet.conn_lost(slot, &why)
                        } else {
                            let why = match error {
                                Some(e) => format!("pipe failed ({e})"),
                                None => "exited".into(),
                            };
                            fleet.fail_slot(slot, &why)
                        };
                        if let Err(e) = r {
                            return finish(fleet, Err(e));
                        }
                    }
                }
                Ok(PumpEvent::Attach {
                    slot,
                    boot_id,
                    stream,
                    peer,
                }) => {
                    fleet.attach_slot(slot, boot_id, stream, peer);
                }
                Ok(PumpEvent::Rejected { peer, why }) => {
                    fleet.note(format!("rejected connection from {peer}: {why}"));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("fleet holds a sender"),
            }

            if cancel.is_cancelled() {
                return finish(fleet, Err(Fx10Error::Cancelled));
            }
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return finish(fleet, Err(Fx10Error::BudgetExhausted(Exhaustion::Deadline)));
                }
            }

            // Connection supervision (socket transport): drop silent
            // connections, retransmit unacked work, re-send FINISH to
            // result-less workers — all idempotent on the worker side.
            if fleet.net.is_some() {
                for slot in 0..fleet.slots.len() {
                    let s = &fleet.slots[slot];
                    if !s.alive {
                        continue;
                    }
                    if s.conn.heartbeat_expired(s.last_heard) {
                        let silent_ms = s.last_heard.elapsed().as_millis();
                        if let Err(e) = fleet
                            .conn_lost(slot, &format!("heartbeat silent for {silent_ms}ms"))
                        {
                            return finish(fleet, Err(e));
                        }
                        continue;
                    }
                    if s.conn.retransmit_due() {
                        if fleet.finishing && s.result.is_none() {
                            // Gentler cadence than work retransmission:
                            // every duplicate FINISH elicits a full
                            // (possibly huge) RESULT re-send.
                            let due = s
                                .finish_tx
                                .map_or(true, |t| t.elapsed() >= FINISH_RETRANSMIT);
                            if due {
                                fleet.slots[slot].conn.mark_tx();
                                fleet.slots[slot].finish_tx = Some(Instant::now());
                                fleet.enqueue(slot, &WireMsg::new(kind::FINISH, 0, Vec::new()));
                            }
                        } else if !fleet.finishing && s.idle && !s.unacked.is_empty() {
                            // Replay unacked work only to a worker that
                            // reports *idle*: a busy worker acks at its
                            // own checkpoint cadence, and replaying the
                            // whole window into it every retransmit
                            // period would bury it in duplicates faster
                            // than it can drain them. An idle worker
                            // with unacked frames, by contrast, is
                            // evidence of loss — it has nothing left to
                            // do, so the frames (or their acks) died on
                            // the wire.
                            fleet.slots[slot].conn.mark_tx();
                            let replay: Vec<WireMsg> = fleet.slots[slot]
                                .unacked
                                .iter()
                                .map(|(_, m)| m.clone())
                                .collect();
                            for m in &replay {
                                fleet.enqueue(slot, m);
                            }
                        }
                    }
                }
                // A quiescence round whose PROBE or reply was lost must
                // not wedge the run: abandon it and re-probe.
                if fleet
                    .round
                    .as_ref()
                    .is_some_and(|r| r.started.elapsed() > ROUND_TIMEOUT)
                {
                    fleet.round = None;
                }
            }

            // Wedge detection: a live worker silent past the stall
            // window is killed and handled like a crash.
            for slot in 0..fleet.slots.len() {
                if fleet.slots[slot].alive
                    && fleet.slots[slot].last_heard.elapsed() > self.stall_after
                {
                    let stalled_ms = fleet.slots[slot].last_heard.elapsed().as_millis();
                    if let Err(e) =
                        fleet.fail_slot(slot, &format!("wedged (silent for {stalled_ms}ms)"))
                    {
                        return finish(fleet, Err(e));
                    }
                }
            }

            if let Some(cap) = self.progress_cap {
                let total: u64 = fleet
                    .slots
                    .iter()
                    .filter(|s| s.alive)
                    .map(|s| s.visited)
                    .sum();
                if total >= cap && !fleet.finishing {
                    fleet.begin_finish(true);
                }
            }

            if fleet.finishing {
                let done = fleet.slots.iter().all(|s| !s.alive || s.result.is_some());
                if done {
                    return finish(fleet, Ok(()));
                }
            } else if fleet.round.is_none() {
                let connected = |s: &Slot| fleet.net.is_none() || s.conn.connected();
                let quiet = fleet
                    .slots
                    .iter()
                    .all(|s| !s.alive || (connected(s) && s.idle && s.processed == s.sent));
                let any_alive = fleet.slots.iter().any(|s| s.alive);
                if quiet && any_alive {
                    fleet.begin_probe();
                }
            }
        }
    }
}

/// Spawns the accept thread: handshake every incoming connection and
/// forward the verdict as an `Attach` or `Rejected` event. Handshakes
/// run serially under a read deadline — a half-open dialer cannot wedge
/// the fleet for longer than the deadline.
fn accept_loop(
    listener: TcpListener,
    cfg: conn::HandshakeConfig,
    tx: Sender<PumpEvent>,
    stop: Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking mode");
    thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            let (stream, peer) = match listener.accept() {
                Ok(ok) => ok,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                    continue;
                }
                Err(_) => {
                    thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            let peer = peer.to_string();
            let _ = stream.set_nodelay(true);
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(3)));
            let mut io = match stream.try_clone() {
                Ok(io) => io,
                Err(_) => continue,
            };
            match conn::server_handshake(&mut io, &cfg, conn::fresh_nonce()) {
                Ok(info) => {
                    let _ = stream.set_read_timeout(None);
                    if tx
                        .send(PumpEvent::Attach {
                            slot: info.slot as usize,
                            boot_id: info.boot_id,
                            stream,
                            peer,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(e) => {
                    let _ = stream.shutdown(Shutdown::Both);
                    if tx
                        .send(PumpEvent::Rejected {
                            peer,
                            why: e.to_string(),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survivor_is_the_least_loaded_live_slot() {
        assert_eq!(pick_survivor(&[(true, 3), (true, 1), (false, 0)]), Some(1));
        assert_eq!(pick_survivor(&[(false, 1), (false, 2)]), None);
        // Ties break to the lowest index.
        assert_eq!(pick_survivor(&[(true, 2), (true, 2)]), Some(0));
    }

    #[test]
    fn defaults_are_sane() {
        let s = ShardSupervisor::default();
        assert!(s.shards >= 1);
        assert!(s.stall_after > s.poll);
        assert_eq!(s.max_frame, ipc::MAX_FRAME_LEN);
    }
}
