//! Process-level shard supervision: heartbeats, restarts, migration.
//!
//! The [`ShardSupervisor`] owns a fleet of worker *processes* connected
//! by pipes speaking the [`crate::ipc`] frame protocol. It is entirely
//! domain-agnostic: it routes dest-tagged `BATCH` frames between
//! workers, tracks liveness, restarts crashed or wedged workers with
//! decorrelated backoff, migrates a dead worker's shards (checkpoint +
//! unacked frames) to a survivor, and detects global quiescence with an
//! explicit probe round. What the frames *mean* — programs, frontier
//! batches, results — is owned by the domain layer, which supplies the
//! `INIT` bodies and interprets the `RESULT` bodies.
//!
//! ## Delivery and durability contract
//!
//! Every work-bearing frame (`BATCH`, `ADOPT`) the supervisor delivers
//! is retained until the receiving worker `ACK`s its sequence number.
//! Workers ack a frame only once a durable checkpoint covering its
//! effects exists, so on restart the supervisor can redeliver every
//! unacked frame and the worker's checkpoint-resume replays the rest —
//! no state is lost to a crash between delivery and durability.
//! Redelivered frames keep their original sequence numbers; worker-side
//! dedup (the visited set restored from the checkpoint) makes
//! redelivery idempotent.
//!
//! ## Quiescence
//!
//! Termination cannot be read off local idleness alone: a frame may be
//! in flight. The supervisor counts work-bearing frames delivered per
//! worker (`sent`) and each worker reports how many it has processed
//! this incarnation. When every live worker claims to be idle and the
//! counters match, the supervisor runs a probe round: `PROBE(token)` to
//! every worker, and the round succeeds only if every `PROBE_REPLY`
//! still reports idle with matching counters and *no* `BATCH`, death or
//! restart arrives during the round. Pipes are FIFO, so any batch a
//! worker emitted before its reply is received before the reply — a
//! successful round proves no work is in flight anywhere.

use crate::backoff::{RestartPolicy, XorShift64};
use crate::ipc::{self, kind, WireMsg};
use crate::{CancelToken, Exhaustion, Fx10Error};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a shard fleet.
#[derive(Debug, Clone)]
pub struct ShardSupervisor {
    /// Number of shards (= worker processes at launch; migration can
    /// concentrate several shards on one survivor).
    pub shards: usize,
    /// Restart budget and backoff for crashed/wedged workers.
    pub policy: RestartPolicy,
    /// A worker silent for this long is declared wedged and killed.
    pub stall_after: Duration,
    /// Event-loop poll interval (also bounds shutdown latency).
    pub poll: Duration,
    /// Wall-clock budget for the whole supervised run.
    pub deadline: Option<Duration>,
    /// Stop (truncated) once the fleet's visited states reach this cap.
    pub progress_cap: Option<u64>,
    /// Frame-length cap passed to the pipe readers.
    pub max_frame: usize,
}

impl Default for ShardSupervisor {
    fn default() -> Self {
        ShardSupervisor {
            shards: 2,
            policy: RestartPolicy::default(),
            stall_after: Duration::from_secs(10),
            poll: Duration::from_millis(20),
            deadline: None,
            progress_cap: None,
            max_frame: ipc::MAX_FRAME_LEN,
        }
    }
}

/// What a supervised run produced, with full provenance.
#[derive(Debug, Default)]
pub struct SupervisionReport {
    /// Per-slot `RESULT` bodies (`None` for slots that died and whose
    /// shards were migrated away).
    pub results: Vec<Option<Vec<u8>>>,
    /// Human-readable supervision events, in order: restarts,
    /// migrations, quiescence, truncation.
    pub events: Vec<String>,
    /// Worker restarts performed.
    pub restarts: u32,
    /// Shard migrations performed.
    pub migrations: u32,
    /// Did the run stop at the progress cap rather than quiescence?
    pub truncated: bool,
}

enum PumpEvent {
    Frame {
        slot: usize,
        incarnation: u64,
        msg: WireMsg,
    },
    Closed {
        slot: usize,
        incarnation: u64,
        error: Option<Fx10Error>,
    },
}

struct Slot {
    child: Option<Child>,
    writer: Option<Sender<Vec<u8>>>,
    incarnation: u64,
    attempt: u32,
    prev_backoff: Duration,
    alive: bool,
    last_heard: Instant,
    idle: bool,
    visited: u64,
    processed: u64,
    /// Work-bearing frames delivered this incarnation.
    sent: u64,
    /// Monotonic across incarnations, so redelivered seqs stay unique.
    next_seq: u64,
    unacked: Vec<(u64, WireMsg)>,
    owned: Vec<u32>,
    result: Option<Vec<u8>>,
    ckpt: Option<PathBuf>,
}

struct Round {
    token: u64,
    awaiting: Vec<bool>,
    ok: bool,
}

/// Picks the migration target: the live slot owning the fewest shards
/// (ties to the lowest index). `None` when no slot is alive.
fn pick_survivor(slots: &[(bool, usize)]) -> Option<usize> {
    slots
        .iter()
        .enumerate()
        .filter(|(_, (alive, _))| *alive)
        .min_by_key(|(i, (_, owned))| (*owned, *i))
        .map(|(i, _)| i)
}

struct Fleet<'a, S, I, C>
where
    S: FnMut(usize) -> Command,
    I: FnMut(usize, u32, &[u32]) -> Vec<u8>,
    C: Fn(usize) -> Option<PathBuf>,
{
    cfg: &'a ShardSupervisor,
    spawn: S,
    init_body: I,
    ckpt_path: C,
    slots: Vec<Slot>,
    /// shard id → owning slot.
    owner: Vec<usize>,
    tx: Sender<PumpEvent>,
    rng: XorShift64,
    events: Vec<String>,
    restarts: u32,
    migrations: u32,
    round: Option<Round>,
    probe_token: u64,
    finishing: bool,
    truncated: bool,
}

impl<S, I, C> Fleet<'_, S, I, C>
where
    S: FnMut(usize) -> Command,
    I: FnMut(usize, u32, &[u32]) -> Vec<u8>,
    C: Fn(usize) -> Option<PathBuf>,
{
    fn note(&mut self, ev: String) {
        self.events.push(ev);
    }

    /// Spawns (or respawns) the worker process for `slot` and replays
    /// its protocol preamble: `INIT`, then every unacked frame in
    /// sequence order.
    fn spawn_slot(&mut self, slot: usize) -> Result<(), Fx10Error> {
        let mut cmd = (self.spawn)(slot);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().map_err(|e| Fx10Error::Io {
            path: "<shard spawn>".into(),
            message: e.to_string(),
        })?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");

        let s = &mut self.slots[slot];
        s.incarnation += 1;
        let inc = s.incarnation;
        s.child = Some(child);
        s.alive = true;
        s.last_heard = Instant::now();
        s.idle = false;
        s.processed = 0;
        s.sent = s.unacked.len() as u64;
        s.result = None;

        // Writer thread: owns stdin, drains a frame queue. Exits on
        // channel close (supervisor dropped it) or broken pipe.
        let (wtx, wrx) = channel::<Vec<u8>>();
        s.writer = Some(wtx);
        thread::spawn(move || {
            let mut stdin = stdin;
            for frame in wrx {
                if ipc::write_frame_bytes(&mut stdin, &frame).is_err() {
                    break;
                }
            }
        });

        // Pump thread: owns stdout, forwards decoded frames as events.
        let tx = self.tx.clone();
        let max_frame = self.cfg.max_frame;
        thread::spawn(move || {
            let mut stdout = stdout;
            loop {
                match ipc::read_frame(&mut stdout, max_frame) {
                    Ok(Some(msg)) => {
                        if tx
                            .send(PumpEvent::Frame {
                                slot,
                                incarnation: inc,
                                msg,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send(PumpEvent::Closed {
                            slot,
                            incarnation: inc,
                            error: None,
                        });
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send(PumpEvent::Closed {
                            slot,
                            incarnation: inc,
                            error: Some(e),
                        });
                        return;
                    }
                }
            }
        });

        let attempt = self.slots[slot].attempt;
        let owned = self.slots[slot].owned.clone();
        let body = (self.init_body)(slot, attempt, &owned);
        self.enqueue(slot, &WireMsg::new(kind::INIT, 0, body));
        let replay: Vec<WireMsg> = self.slots[slot]
            .unacked
            .iter()
            .map(|(_, m)| m.clone())
            .collect();
        for m in &replay {
            self.enqueue(slot, m);
        }
        Ok(())
    }

    /// Queues a frame for the slot's writer thread. A closed queue means
    /// the worker died; the pump's `Closed` event handles that.
    fn enqueue(&mut self, slot: usize, msg: &WireMsg) {
        if let Some(w) = &self.slots[slot].writer {
            let _ = w.send(msg.frame());
        }
    }

    /// Delivers a work-bearing frame: assigns a sequence number,
    /// retains it for redelivery, counts it toward quiescence.
    fn deliver_work(&mut self, slot: usize, kind: u32, body: Vec<u8>) {
        let s = &mut self.slots[slot];
        let seq = s.next_seq;
        s.next_seq += 1;
        let msg = WireMsg::new(kind, seq, body);
        s.unacked.push((seq, msg.clone()));
        s.sent += 1;
        self.enqueue(slot, &msg);
    }

    fn reap(&mut self, slot: usize) {
        self.slots[slot].writer = None;
        if let Some(mut child) = self.slots[slot].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// A worker failed (exited, wedged, or protocol violation): restart
    /// it while the budget lasts, then migrate its shards.
    fn fail_slot(&mut self, slot: usize, why: &str) -> Result<(), Fx10Error> {
        self.round = None;
        self.finishing = false;
        self.reap(slot);
        self.slots[slot].alive = false;
        let attempt = self.slots[slot].attempt;
        if attempt < self.cfg.policy.max_restarts {
            self.slots[slot].attempt += 1;
            self.restarts += 1;
            let prev = self.slots[slot].prev_backoff;
            let pause = self.rng.backoff(
                self.cfg.policy.base_backoff,
                if prev.is_zero() {
                    self.cfg.policy.base_backoff
                } else {
                    prev
                },
                self.cfg.policy.max_backoff,
            );
            self.slots[slot].prev_backoff = pause;
            self.note(format!(
                "shard worker {slot}: {why}; restart {}/{} after {}ms backoff",
                attempt + 1,
                self.cfg.policy.max_restarts,
                pause.as_millis()
            ));
            thread::sleep(pause);
            match self.spawn_slot(slot) {
                Ok(()) => Ok(()),
                Err(e) => self.fail_slot(slot, &format!("respawn failed ({e})")),
            }
        } else {
            self.note(format!(
                "shard worker {slot}: {why}; restart budget exhausted"
            ));
            self.migrate(slot)
        }
    }

    /// Moves a dead slot's shards — checkpoint plus unacked frames — to
    /// the live slot owning the fewest shards.
    fn migrate(&mut self, dead: usize) -> Result<(), Fx10Error> {
        let occupancy: Vec<(bool, usize)> = self
            .slots
            .iter()
            .map(|s| (s.alive, s.owned.len()))
            .collect();
        let Some(survivor) = pick_survivor(&occupancy) else {
            return Err(Fx10Error::WorkerPanicked {
                worker: dead,
                message: "no live shard worker left to migrate to".into(),
            });
        };
        let moved = std::mem::take(&mut self.slots[dead].owned);
        for &sh in &moved {
            self.owner[sh as usize] = survivor;
        }
        self.slots[survivor].owned.extend(moved.iter().copied());
        let ckpt = self.slots[dead]
            .ckpt
            .as_ref()
            .and_then(|p| std::fs::read(p).ok());
        let orphaned = std::mem::take(&mut self.slots[dead].unacked);
        self.note(format!(
            "migrating shards {moved:?} from worker {dead} to worker {survivor} \
             ({} checkpoint, {} unacked frame(s))",
            if ckpt.is_some() { "with" } else { "no" },
            orphaned.len()
        ));
        self.migrations += 1;
        // ADOPT first, then the orphaned frames: FIFO delivery means the
        // survivor installs the checkpoint before replaying them, so
        // nothing is double-counted.
        self.deliver_work(
            survivor,
            kind::ADOPT,
            ipc::adopt_body(&moved, ckpt.as_deref()),
        );
        for (_, m) in orphaned {
            self.deliver_work(survivor, m.kind, m.body);
        }
        Ok(())
    }

    fn handle_frame(&mut self, slot: usize, msg: WireMsg) -> Result<(), Fx10Error> {
        self.slots[slot].last_heard = Instant::now();
        match msg.kind {
            kind::HELLO => {}
            kind::BATCH => {
                // Any in-flight work invalidates a quiescence round.
                self.round = None;
                match ipc::batch_dest(&msg.body) {
                    Ok(dest) if (dest as usize) < self.owner.len() => {
                        let target = self.owner[dest as usize];
                        self.deliver_work(target, kind::BATCH, msg.body);
                    }
                    _ => {
                        return self.fail_slot(slot, "sent a batch for an unknown shard");
                    }
                }
            }
            kind::ACK => match ipc::parse_ack_body(&msg.body) {
                Ok(seqs) => {
                    self.slots[slot].unacked.retain(|(s, _)| !seqs.contains(s));
                }
                Err(_) => return self.fail_slot(slot, "sent a malformed ack"),
            },
            kind::PROGRESS => match ipc::parse_progress_body(&msg.body) {
                Ok(p) => {
                    let s = &mut self.slots[slot];
                    s.visited = p.visited;
                    s.processed = p.processed;
                    s.idle = p.idle;
                }
                Err(_) => return self.fail_slot(slot, "sent a malformed progress report"),
            },
            kind::PROBE_REPLY => {
                if let Ok((token, processed, idle)) = ipc::parse_probe_reply_body(&msg.body) {
                    let sent = self.slots[slot].sent;
                    if let Some(r) = &mut self.round {
                        if r.token == token && r.awaiting[slot] {
                            r.awaiting[slot] = false;
                            r.ok &= idle && processed == sent;
                            if r.awaiting.iter().all(|w| !w) {
                                let ok = r.ok;
                                self.round = None;
                                if ok {
                                    self.begin_finish(false);
                                }
                            }
                        }
                    }
                } else {
                    return self.fail_slot(slot, "sent a malformed probe reply");
                }
            }
            kind::RESULT => {
                self.slots[slot].result = Some(msg.body);
            }
            _ => return self.fail_slot(slot, "sent an unexpected message kind"),
        }
        Ok(())
    }

    fn begin_probe(&mut self) {
        self.probe_token += 1;
        let token = self.probe_token;
        let awaiting: Vec<bool> = self.slots.iter().map(|s| s.alive).collect();
        for slot in (0..self.slots.len()).filter(|&s| awaiting[s]) {
            self.enqueue(slot, &WireMsg::new(kind::PROBE, 0, ipc::probe_body(token)));
        }
        self.round = Some(Round {
            token,
            awaiting,
            ok: true,
        });
    }

    fn begin_finish(&mut self, truncated: bool) {
        if self.finishing {
            return;
        }
        self.finishing = true;
        self.truncated = truncated;
        self.round = None;
        self.note(if truncated {
            "progress cap reached; collecting truncated results".into()
        } else {
            "fleet quiesced; collecting results".into()
        });
        for slot in 0..self.slots.len() {
            if self.slots[slot].alive {
                self.enqueue(slot, &WireMsg::new(kind::FINISH, 0, Vec::new()));
            }
        }
    }

    /// Graceful shutdown: close every stdin (workers exit on EOF), give
    /// them a moment, then kill stragglers.
    fn shutdown(&mut self) {
        for s in &mut self.slots {
            s.writer = None;
        }
        let grace = Instant::now();
        for i in 0..self.slots.len() {
            if let Some(child) = &mut self.slots[i].child {
                while grace.elapsed() < Duration::from_millis(500) {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) => thread::sleep(Duration::from_millis(10)),
                        Err(_) => break,
                    }
                }
            }
            self.reap(i);
        }
    }
}

impl ShardSupervisor {
    /// Runs a shard fleet to completion.
    ///
    /// - `spawn(slot)` builds the worker command line (stdio is wired by
    ///   the supervisor),
    /// - `init_body(slot, attempt, owned_shards)` encodes the
    ///   domain-level `INIT` payload for a (re)spawn,
    /// - `ckpt_path(slot)` names the worker's durable checkpoint file,
    ///   read at migration time.
    ///
    /// Returns per-slot `RESULT` bodies plus full supervision
    /// provenance, or the error that ended the run (cancellation,
    /// deadline, or fleet exhaustion) — callers degrade to the next
    /// ladder rung on anything except `Cancelled`.
    pub fn run(
        &self,
        cancel: &CancelToken,
        spawn: impl FnMut(usize) -> Command,
        init_body: impl FnMut(usize, u32, &[u32]) -> Vec<u8>,
        ckpt_path: impl Fn(usize) -> Option<PathBuf>,
    ) -> Result<SupervisionReport, Fx10Error> {
        assert!(self.shards > 0, "a fleet needs at least one shard");
        let (tx, rx) = channel::<PumpEvent>();
        let now = Instant::now();
        let deadline = self.deadline.map(|d| now + d);
        let mut fleet = Fleet {
            cfg: self,
            spawn,
            init_body,
            ckpt_path,
            slots: (0..self.shards)
                .map(|i| Slot {
                    child: None,
                    writer: None,
                    incarnation: 0,
                    attempt: 0,
                    prev_backoff: Duration::ZERO,
                    alive: false,
                    last_heard: now,
                    idle: false,
                    visited: 0,
                    processed: 0,
                    sent: 0,
                    next_seq: 0,
                    unacked: Vec::new(),
                    owned: vec![i as u32],
                    result: None,
                    ckpt: None,
                })
                .collect(),
            owner: (0..self.shards).collect(),
            tx,
            rng: XorShift64::new(self.policy.seed),
            events: Vec::new(),
            restarts: 0,
            migrations: 0,
            round: None,
            probe_token: 0,
            finishing: false,
            truncated: false,
        };
        for i in 0..self.shards {
            fleet.slots[i].ckpt = (fleet.ckpt_path)(i);
        }

        let finish = |mut fleet: Fleet<'_, _, _, _>, r: Result<(), Fx10Error>| {
            fleet.shutdown();
            match r {
                Ok(()) => Ok(SupervisionReport {
                    results: fleet.slots.iter_mut().map(|s| s.result.take()).collect(),
                    events: std::mem::take(&mut fleet.events),
                    restarts: fleet.restarts,
                    migrations: fleet.migrations,
                    truncated: fleet.truncated,
                }),
                Err(e) => Err(e),
            }
        };

        for i in 0..self.shards {
            if let Err(e) = fleet.spawn_slot(i) {
                if let Err(e2) = fleet.fail_slot(i, &format!("initial spawn failed ({e})")) {
                    return finish(fleet, Err(e2));
                }
            }
        }

        loop {
            match rx.recv_timeout(self.poll) {
                Ok(PumpEvent::Frame {
                    slot,
                    incarnation,
                    msg,
                }) => {
                    if fleet.slots[slot].alive && fleet.slots[slot].incarnation == incarnation {
                        if let Err(e) = fleet.handle_frame(slot, msg) {
                            return finish(fleet, Err(e));
                        }
                    }
                }
                Ok(PumpEvent::Closed {
                    slot,
                    incarnation,
                    error,
                }) => {
                    if fleet.slots[slot].alive && fleet.slots[slot].incarnation == incarnation {
                        let why = match error {
                            Some(e) => format!("pipe failed ({e})"),
                            None => "exited".into(),
                        };
                        if let Err(e) = fleet.fail_slot(slot, &why) {
                            return finish(fleet, Err(e));
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("fleet holds a sender"),
            }

            if cancel.is_cancelled() {
                return finish(fleet, Err(Fx10Error::Cancelled));
            }
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return finish(fleet, Err(Fx10Error::BudgetExhausted(Exhaustion::Deadline)));
                }
            }

            // Wedge detection: a live worker silent past the stall
            // window is killed and handled like a crash.
            for slot in 0..fleet.slots.len() {
                if fleet.slots[slot].alive
                    && fleet.slots[slot].last_heard.elapsed() > self.stall_after
                {
                    let stalled_ms = fleet.slots[slot].last_heard.elapsed().as_millis();
                    if let Err(e) =
                        fleet.fail_slot(slot, &format!("wedged (silent for {stalled_ms}ms)"))
                    {
                        return finish(fleet, Err(e));
                    }
                }
            }

            if let Some(cap) = self.progress_cap {
                let total: u64 = fleet
                    .slots
                    .iter()
                    .filter(|s| s.alive)
                    .map(|s| s.visited)
                    .sum();
                if total >= cap && !fleet.finishing {
                    fleet.begin_finish(true);
                }
            }

            if fleet.finishing {
                let done = fleet.slots.iter().all(|s| !s.alive || s.result.is_some());
                if done {
                    return finish(fleet, Ok(()));
                }
            } else if fleet.round.is_none() {
                let quiet = fleet
                    .slots
                    .iter()
                    .all(|s| !s.alive || (s.idle && s.processed == s.sent));
                let any_alive = fleet.slots.iter().any(|s| s.alive);
                if quiet && any_alive {
                    fleet.begin_probe();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survivor_is_the_least_loaded_live_slot() {
        assert_eq!(pick_survivor(&[(true, 3), (true, 1), (false, 0)]), Some(1));
        assert_eq!(pick_survivor(&[(false, 1), (false, 2)]), None);
        // Ties break to the lowest index.
        assert_eq!(pick_survivor(&[(true, 2), (true, 2)]), Some(0));
    }

    #[test]
    fn defaults_are_sane() {
        let s = ShardSupervisor::default();
        assert!(s.shards >= 1);
        assert!(s.stall_after > s.poll);
        assert_eq!(s.max_frame, ipc::MAX_FRAME_LEN);
    }
}
