//! Decorrelated-jitter retry backoff.
//!
//! Shared by the degradation ladder (`fx10_core::analysis::Supervisor`)
//! and the shard supervisor ([`crate::shard`]): both restart failed
//! engines, and both must avoid the retry-herd synchronization plain
//! exponential backoff suffers from. The generator is a tiny xorshift64
//! PRNG — deterministic from its seed, dependency-free, and explicitly
//! *not* for anything security- or statistics-sensitive.

use std::time::Duration;

/// xorshift64 — a tiny, dependency-free PRNG for backoff jitter.
#[derive(Debug, Clone)]
pub struct XorShift64(u64);

impl XorShift64 {
    /// A generator seeded with `seed` (zero is remapped — xorshift has a
    /// single absorbing state at zero).
    pub fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Decorrelated-jitter backoff: uniform in `[base, 3 · prev]`,
    /// clamped to `cap`. Successive sleeps are decorrelated (each draws
    /// from a window anchored at the *previous* sleep), which avoids the
    /// retry-herd synchronization plain exponential backoff suffers from.
    pub fn backoff(&mut self, base: Duration, prev: Duration, cap: Duration) -> Duration {
        let lo = base.as_micros() as u64;
        let hi = (prev.as_micros() as u64).saturating_mul(3).max(lo);
        let pick = if hi > lo {
            lo + self.next_u64() % (hi - lo + 1)
        } else {
            lo
        };
        Duration::from_micros(pick).min(cap)
    }
}

/// How a supervisor restarts a dead or wedged engine.
#[derive(Debug, Clone, Copy)]
pub struct RestartPolicy {
    /// Restarts allowed per shard/engine before its work migrates (or
    /// the supervisor gives up).
    pub max_restarts: u32,
    /// Lower bound of every backoff sleep.
    pub base_backoff: Duration,
    /// Upper clamp of every backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the backoff jitter (any value; zero is remapped).
    pub seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 2,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(250),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped_and_stream_advances() {
        let mut r = XorShift64::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn backoff_is_decorrelated_within_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut rng = XorShift64::new(42);
        let mut prev = base;
        for _ in 0..1000 {
            let next = rng.backoff(base, prev, cap);
            assert!(next >= base.min(cap), "sleep below base: {next:?}");
            assert!(next <= cap, "sleep above cap: {next:?}");
            assert!(
                next <= (prev * 3).max(base).min(cap),
                "sleep {next:?} outside the decorrelated window of prev {prev:?}"
            );
            prev = next;
        }
    }

    #[test]
    fn backoff_with_degenerate_window_returns_base() {
        let mut rng = XorShift64::new(7);
        let base = Duration::from_millis(30);
        // prev so small that 3·prev < base: the window collapses to base.
        let got = rng.backoff(base, Duration::from_micros(1), Duration::from_secs(1));
        assert_eq!(got, base);
    }

    #[test]
    fn backoff_is_deterministic_under_a_fixed_seed() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_millis(250);
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = XorShift64::new(seed);
            let mut prev = base;
            (0..64)
                .map(|_| {
                    prev = rng.backoff(base, prev, cap);
                    prev
                })
                .collect()
        };
        assert_eq!(schedule(0xC0FFEE), schedule(0xC0FFEE));
        assert_ne!(
            schedule(0xC0FFEE),
            schedule(0xBAD_C0DE),
            "different seeds must decorrelate the schedules"
        );
    }

    #[test]
    fn backoff_never_exceeds_a_cap_below_base() {
        // A cap below base is degenerate but must still be honored:
        // the clamp wins over the lower bound.
        let mut rng = XorShift64::new(3);
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(40);
        for _ in 0..100 {
            let got = rng.backoff(base, Duration::from_millis(500), cap);
            assert!(got <= cap, "{got:?} above cap {cap:?}");
        }
    }

    #[test]
    fn backoff_reaches_both_ends_of_the_window() {
        // The jitter must actually spread over [base, 3·prev]: over many
        // draws from a fixed window we expect samples near both ends.
        let base = Duration::from_millis(10);
        let prev = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        let mut rng = XorShift64::new(99);
        let draws: Vec<Duration> = (0..2000).map(|_| rng.backoff(base, prev, cap)).collect();
        let lo = draws.iter().min().unwrap();
        let hi = draws.iter().max().unwrap();
        assert!(*lo < Duration::from_millis(25), "never drew low: {lo:?}");
        assert!(*hi > Duration::from_millis(285), "never drew high: {hi:?}");
        assert!(*lo >= base && *hi <= Duration::from_millis(300));
    }
}
