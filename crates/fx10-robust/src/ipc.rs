//! Length-prefixed FX10SNAP wire framing for shard transports.
//!
//! The shard supervisor and its worker processes exchange messages over
//! a [`Transport`] — plain pipes (the worker's stdin/stdout) or a TCP
//! stream (loopback by default, machines apart by design). Every
//! message is one *frame*:
//!
//! ```text
//! [ u32 LE frame length ][ FX10SNAP container, exactly that long ]
//! ```
//!
//! The container reuses the durable-snapshot layout from
//! [`crate::snapshot`] — magic, version, tagged sections, trailing
//! FNV-1a-64 checksum — so a torn or corrupted pipe write decodes to a
//! typed [`SnapshotError`], never a panic. Two sections are used:
//!
//! - [`SEC_HEAD`]: `{ kind u32, seq u64 }` — the message kind (one of
//!   the [`kind`] constants) and a per-connection sequence number,
//! - [`SEC_BODY`]: opaque payload bytes owned by the protocol layer
//!   (absent for body-less messages such as `FINISH`).
//!
//! The length prefix is validated against a caller-supplied cap
//! *before* any allocation, so a corrupted length field can never
//! trigger an OOM-sized read.

use crate::snapshot::{fnv1a64, SectionBuf, Snapshot, SnapshotError, SnapshotWriter};
use crate::Fx10Error;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Section tag of the `{kind, seq}` header.
pub const SEC_HEAD: u32 = 1;
/// Section tag of the opaque body payload.
pub const SEC_BODY: u32 = 2;

/// Version of the shard wire protocol. Carried in every `HELLO` and
/// `CHALLENGE` so a supervisor and worker built from different trees
/// refuse each other with a typed error instead of mis-decoding frames.
/// Bump it whenever a frame layout or body codec changes — the
/// byte-golden tests in `tests/wire_golden.rs` make such a change a
/// deliberate diff.
pub const PROTOCOL_VERSION: u32 = 3;

/// Default frame-length cap (64 MiB): far above any real batch, far
/// below an allocation that could hurt.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Message kinds of the shard protocol.
pub mod kind {
    /// Worker → supervisor: first message after spawn; proves the pipe.
    pub const HELLO: u32 = 1;
    /// Supervisor → worker: configuration (program, shard ownership,
    /// checkpoint path, chaos plan). Body is domain-encoded.
    pub const INIT: u32 = 2;
    /// Either direction: a frontier batch. Body is
    /// `[u32 LE dest shard][domain payload]` — see [`super::batch_body`].
    pub const BATCH: u32 = 3;
    /// Worker → supervisor: the listed batch seqs are now covered by a
    /// durable checkpoint and need no redelivery.
    pub const ACK: u32 = 4;
    /// Worker → supervisor: heartbeat with progress counters.
    pub const PROGRESS: u32 = 5;
    /// Supervisor → worker: quiescence probe (body carries the token).
    pub const PROBE: u32 = 6;
    /// Worker → supervisor: probe reply (token, processed, idle).
    pub const PROBE_REPLY: u32 = 7;
    /// Supervisor → worker: stop exploring, send `RESULT`, exit 0.
    pub const FINISH: u32 = 8;
    /// Worker → supervisor: final domain-encoded result.
    pub const RESULT: u32 = 9;
    /// Supervisor → worker: adopt a dead sibling's shards (body carries
    /// the shard ids and its last checkpoint, if any).
    pub const ADOPT: u32 = 10;
    /// Supervisor → worker (socket transport): handshake step 2 — the
    /// supervisor's protocol version, a fresh nonce, and the run's
    /// program fingerprint.
    pub const CHALLENGE: u32 = 11;
    /// Worker → supervisor (socket transport): handshake step 3 — the
    /// keyed MAC over the challenge nonce and the worker's identity.
    pub const AUTH: u32 = 12;
    /// Supervisor → worker (socket transport): the handshake failed;
    /// body carries a reject code and a human-readable reason. The
    /// connection is closed right after.
    pub const REJECT: u32 = 13;
    /// Supervisor → worker (socket transport): handshake step 4 — the
    /// connection is authenticated and attached; protocol frames may
    /// now flow.
    pub const WELCOME: u32 = 14;
    /// Worker → supervisor: one bounded slice of the final result —
    /// body is `[u32 index][u32 total][bytes]`, reassembled in order
    /// by the supervisor. A collected result can be far larger than
    /// any sane frame cap, and a single monster frame reads as peer
    /// silence for its whole transfer; parts keep every frame small
    /// and the heartbeat accounting live.
    pub const RESULT_PART: u32 = 15;
}

fn kind_name(k: u32) -> &'static str {
    match k {
        kind::HELLO => "HELLO",
        kind::INIT => "INIT",
        kind::BATCH => "BATCH",
        kind::ACK => "ACK",
        kind::PROGRESS => "PROGRESS",
        kind::PROBE => "PROBE",
        kind::PROBE_REPLY => "PROBE_REPLY",
        kind::FINISH => "FINISH",
        kind::RESULT => "RESULT",
        kind::ADOPT => "ADOPT",
        kind::CHALLENGE => "CHALLENGE",
        kind::AUTH => "AUTH",
        kind::REJECT => "REJECT",
        kind::WELCOME => "WELCOME",
        kind::RESULT_PART => "RESULT_PART",
        _ => "?",
    }
}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMsg {
    /// One of the [`kind`] constants.
    pub kind: u32,
    /// Per-connection sequence number (assigned by the sender).
    pub seq: u64,
    /// Opaque body bytes (empty for body-less kinds).
    pub body: Vec<u8>,
}

impl WireMsg {
    /// A message with the given kind, sequence number and body.
    pub fn new(kind: u32, seq: u64, body: Vec<u8>) -> Self {
        WireMsg { kind, seq, body }
    }

    /// Encodes the FX10SNAP container (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        let mut head = SectionBuf::new();
        head.put_u32(self.kind);
        head.put_u64(self.seq);
        w.add_section(SEC_HEAD, head);
        if !self.body.is_empty() {
            let mut body = SectionBuf::new();
            body.put_bytes(&self.body);
            w.add_section(SEC_BODY, body);
        }
        w.finish()
    }

    /// Encodes the full frame: `[u32 LE length][container]`.
    pub fn frame(&self) -> Vec<u8> {
        let container = self.encode();
        let mut out = Vec::with_capacity(4 + container.len());
        out.extend_from_slice(&(container.len() as u32).to_le_bytes());
        out.extend_from_slice(&container);
        out
    }

    /// Decodes a container produced by [`WireMsg::encode`].
    pub fn decode(bytes: &[u8]) -> Result<WireMsg, SnapshotError> {
        let snap = Snapshot::parse(bytes)?;
        let mut head = snap.section(SEC_HEAD)?;
        let kind = head.get_u32()?;
        let seq = head.get_u64()?;
        head.done()?;
        let body = match snap.section(SEC_BODY) {
            Ok(mut c) => {
                let n = c.remaining();
                c.get_bytes(n)?.to_vec()
            }
            Err(SnapshotError::MissingSection(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(WireMsg { kind, seq, body })
    }

    /// Human-readable kind, for supervision-event traces.
    pub fn kind_name(&self) -> &'static str {
        kind_name(self.kind)
    }
}

fn io_err(e: io::Error) -> Fx10Error {
    Fx10Error::Io {
        path: "<shard pipe>".into(),
        message: e.to_string(),
    }
}

/// Writes one frame and flushes the stream.
pub fn write_frame(w: &mut impl Write, msg: &WireMsg) -> Result<(), Fx10Error> {
    w.write_all(&msg.frame()).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Writes pre-encoded frame bytes (as returned by [`WireMsg::frame`])
/// and flushes — used when redelivering retained frames verbatim.
pub fn write_frame_bytes(w: &mut impl Write, frame: &[u8]) -> Result<(), Fx10Error> {
    w.write_all(frame).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; mid-frame EOF, an oversized length prefix and container
/// corruption are all errors. `max_len` caps the allocation a corrupted
/// length field can cause.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<WireMsg>, Fx10Error> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(SnapshotError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(SnapshotError::Malformed(format!(
            "frame length {len} exceeds the {max_len}-byte cap"
        ))
        .into());
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Fx10Error::from(SnapshotError::Truncated)
        } else {
            io_err(e)
        }
    })?;
    Ok(Some(WireMsg::decode(&buf)?))
}

// -- body codecs -------------------------------------------------------------
//
// Bodies are flat little-endian records (they live inside an already
// checksummed container, so they carry no framing of their own).

fn body_cursor(body: &[u8]) -> BodyReader<'_> {
    BodyReader {
        bytes: body,
        pos: 0,
    }
}

struct BodyReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n: usize = self
            .get_u64()?
            .try_into()
            .map_err(|_| SnapshotError::Malformed("count overflows usize".into()))?;
        let need = n
            .checked_mul(elem_size)
            .ok_or_else(|| SnapshotError::Malformed("count overflows usize".into()))?;
        if need > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(
                "trailing bytes in message body".into(),
            ))
        }
    }
}

/// Encodes an `ACK` body: the checkpoint-covered batch seqs.
pub fn ack_body(seqs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + seqs.len() * 8);
    out.extend_from_slice(&(seqs.len() as u64).to_le_bytes());
    for s in seqs {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Decodes an `ACK` body.
pub fn parse_ack_body(body: &[u8]) -> Result<Vec<u64>, SnapshotError> {
    let mut c = body_cursor(body);
    let n = c.get_count(8)?;
    let mut seqs = Vec::with_capacity(n);
    for _ in 0..n {
        seqs.push(c.get_u64()?);
    }
    c.done()?;
    Ok(seqs)
}

/// A `PROGRESS` heartbeat: the worker's counters since its last spawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// States in the worker's visited set.
    pub visited: u64,
    /// Work-bearing frames (`BATCH`/`ADOPT`) processed this incarnation.
    pub processed: u64,
    /// Is the worker's local frontier empty?
    pub idle: bool,
}

/// Encodes a `PROGRESS` body.
pub fn progress_body(p: &Progress) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.extend_from_slice(&p.visited.to_le_bytes());
    out.extend_from_slice(&p.processed.to_le_bytes());
    out.push(p.idle as u8);
    out
}

/// Decodes a `PROGRESS` body.
pub fn parse_progress_body(body: &[u8]) -> Result<Progress, SnapshotError> {
    let mut c = body_cursor(body);
    let visited = c.get_u64()?;
    let processed = c.get_u64()?;
    let idle = c.get_u8()? != 0;
    c.done()?;
    Ok(Progress {
        visited,
        processed,
        idle,
    })
}

/// Encodes a `PROBE` body (just the round token).
pub fn probe_body(token: u64) -> Vec<u8> {
    token.to_le_bytes().to_vec()
}

/// Decodes a `PROBE` body.
pub fn parse_probe_body(body: &[u8]) -> Result<u64, SnapshotError> {
    let mut c = body_cursor(body);
    let token = c.get_u64()?;
    c.done()?;
    Ok(token)
}

/// Encodes a `PROBE_REPLY` body.
pub fn probe_reply_body(token: u64, processed: u64, idle: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.extend_from_slice(&token.to_le_bytes());
    out.extend_from_slice(&processed.to_le_bytes());
    out.push(idle as u8);
    out
}

/// Decodes a `PROBE_REPLY` body into `(token, processed, idle)`.
pub fn parse_probe_reply_body(body: &[u8]) -> Result<(u64, u64, bool), SnapshotError> {
    let mut c = body_cursor(body);
    let token = c.get_u64()?;
    let processed = c.get_u64()?;
    let idle = c.get_u8()? != 0;
    c.done()?;
    Ok((token, processed, idle))
}

/// Encodes an `ADOPT` body: the shard ids being transferred plus the
/// dead owner's last durable checkpoint (`None` if it never wrote one).
pub fn adopt_body(shards: &[u32], ckpt: Option<&[u8]>) -> Vec<u8> {
    let ck = ckpt.unwrap_or(&[]);
    let mut out = Vec::with_capacity(16 + shards.len() * 4 + ck.len());
    out.extend_from_slice(&(shards.len() as u64).to_le_bytes());
    for s in shards {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.extend_from_slice(&(ck.len() as u64).to_le_bytes());
    out.extend_from_slice(ck);
    out
}

/// Decodes an `ADOPT` body into `(shard ids, checkpoint bytes)`.
pub fn parse_adopt_body(body: &[u8]) -> Result<(Vec<u32>, Option<Vec<u8>>), SnapshotError> {
    let mut c = body_cursor(body);
    let n = c.get_count(4)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(c.get_u32()?);
    }
    let len = c.get_count(1)?;
    let ckpt = if len == 0 {
        None
    } else {
        Some(c.take(len)?.to_vec())
    };
    c.done()?;
    Ok((shards, ckpt))
}

/// Encodes a `BATCH` body: the destination shard, then the domain
/// payload (a pruned frontier snapshot).
pub fn batch_body(dest: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&dest.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Peeks the destination shard of a `BATCH` body without copying the
/// payload — all the supervisor needs to route it.
pub fn batch_dest(body: &[u8]) -> Result<u32, SnapshotError> {
    if body.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    Ok(u32::from_le_bytes(body[..4].try_into().unwrap()))
}

/// The domain payload of a `BATCH` body (everything after the dest tag).
pub fn batch_payload(body: &[u8]) -> Result<&[u8], SnapshotError> {
    if body.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    Ok(&body[4..])
}

/// Maximum payload bytes per `RESULT_PART` frame. Small enough that a
/// part transfers well inside any heartbeat window; large enough that
/// a typical collected result fits in a handful of parts.
pub const RESULT_PART_LEN: usize = 4 << 20;

/// Cap on the `total` field of a `RESULT_PART` — bounds the memory an
/// authenticated-but-buggy worker can make the supervisor reserve.
pub const MAX_RESULT_PARTS: u32 = 4096;

/// Encodes a `RESULT_PART` body: this part's index, the part count of
/// the whole result, then the payload slice.
pub fn result_part_body(index: u32, total: u32, chunk: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + chunk.len());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(chunk);
    out
}

/// Decodes a `RESULT_PART` body into `(index, total, payload)`.
pub fn parse_result_part_body(body: &[u8]) -> Result<(u32, u32, &[u8]), SnapshotError> {
    if body.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let index = u32::from_le_bytes(body[..4].try_into().unwrap());
    let total = u32::from_le_bytes(body[4..8].try_into().unwrap());
    if total == 0 || index >= total || total > MAX_RESULT_PARTS {
        return Err(SnapshotError::Malformed(format!(
            "result part {index}/{total} out of range"
        )));
    }
    Ok((index, total, &body[8..]))
}

/// A worker's opening handshake message on the socket transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The worker binary's [`PROTOCOL_VERSION`].
    pub proto: u32,
    /// The shard slot this worker was spawned for.
    pub slot: u32,
    /// A random per-process id: lets the supervisor distinguish the
    /// same process reconnecting (keep the dedup window) from a
    /// respawned process (reset it).
    pub boot_id: u64,
    /// The program fingerprint the worker is exploring, or 0 on the
    /// first connection (before it has received `INIT`).
    pub fingerprint: u64,
}

/// Encodes a `HELLO` body for the socket handshake. (The pipe
/// transport's `HELLO` has an empty body — pipes need no handshake.)
pub fn hello_body(h: &Hello) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&h.proto.to_le_bytes());
    out.extend_from_slice(&h.slot.to_le_bytes());
    out.extend_from_slice(&h.boot_id.to_le_bytes());
    out.extend_from_slice(&h.fingerprint.to_le_bytes());
    out
}

/// Decodes a socket-handshake `HELLO` body.
pub fn parse_hello_body(body: &[u8]) -> Result<Hello, SnapshotError> {
    let mut c = body_cursor(body);
    let proto = c.get_u32()?;
    let slot = c.get_u32()?;
    let boot_id = c.get_u64()?;
    let fingerprint = c.get_u64()?;
    c.done()?;
    Ok(Hello {
        proto,
        slot,
        boot_id,
        fingerprint,
    })
}

/// Encodes a `CHALLENGE` body: the supervisor's protocol version, a
/// fresh nonce, and the run's program fingerprint.
pub fn challenge_body(proto: u32, nonce: u64, fingerprint: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    out.extend_from_slice(&proto.to_le_bytes());
    out.extend_from_slice(&nonce.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out
}

/// Decodes a `CHALLENGE` body into `(proto, nonce, fingerprint)`.
pub fn parse_challenge_body(body: &[u8]) -> Result<(u32, u64, u64), SnapshotError> {
    let mut c = body_cursor(body);
    let proto = c.get_u32()?;
    let nonce = c.get_u64()?;
    let fingerprint = c.get_u64()?;
    c.done()?;
    Ok((proto, nonce, fingerprint))
}

/// Encodes an `AUTH` body (the keyed MAC answering a challenge).
pub fn auth_body(mac: u64) -> Vec<u8> {
    mac.to_le_bytes().to_vec()
}

/// Decodes an `AUTH` body.
pub fn parse_auth_body(body: &[u8]) -> Result<u64, SnapshotError> {
    let mut c = body_cursor(body);
    let mac = c.get_u64()?;
    c.done()?;
    Ok(mac)
}

/// Why a handshake was rejected (the code inside a `REJECT` body).
pub mod reject {
    /// Protocol-version skew between supervisor and worker.
    pub const VERSION: u32 = 1;
    /// The keyed MAC did not verify (wrong or missing shared secret).
    pub const AUTH: u32 = 2;
    /// The worker's program fingerprint belongs to a different run.
    pub const FINGERPRINT: u32 = 3;
    /// The claimed slot does not exist in this fleet.
    pub const SLOT: u32 = 4;
    /// The handshake itself was malformed (wrong kind, bad body).
    pub const PROTOCOL: u32 = 5;
}

/// Encodes a `REJECT` body: a [`reject`] code plus a human-readable
/// reason.
pub fn reject_body(code: u32, message: &str) -> Vec<u8> {
    let msg = message.as_bytes();
    let mut out = Vec::with_capacity(12 + msg.len());
    out.extend_from_slice(&code.to_le_bytes());
    out.extend_from_slice(&(msg.len() as u64).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

/// Decodes a `REJECT` body into `(code, message)`.
pub fn parse_reject_body(body: &[u8]) -> Result<(u32, String), SnapshotError> {
    let mut c = body_cursor(body);
    let code = c.get_u32()?;
    let len = c.get_count(1)?;
    let msg = String::from_utf8_lossy(c.take(len)?).into_owned();
    c.done()?;
    Ok((code, msg))
}

// -- transports --------------------------------------------------------------

/// The write half of a transport: accepts pre-encoded frames (as
/// returned by [`WireMsg::frame`]) and flushes them to the peer.
pub trait FrameSender: Send {
    /// Writes one pre-encoded frame and flushes.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Fx10Error>;

    /// Encodes and sends one message.
    fn send(&mut self, msg: &WireMsg) -> Result<(), Fx10Error> {
        self.send_frame(&msg.frame())
    }
}

/// The read half of a transport: yields decoded frames until the peer
/// hangs up. `Ok(None)` is a clean EOF at a frame boundary; mid-frame
/// EOF and corruption are typed errors.
pub trait FrameReceiver: Send {
    /// Blocks for the next frame.
    fn recv_frame(&mut self) -> Result<Option<WireMsg>, Fx10Error>;
}

/// A bidirectional frame stream to one peer. Splitting moves ownership
/// into independent `Send` halves so a writer thread and a reader
/// thread can pump the same connection concurrently.
pub trait Transport: Send {
    /// Splits the transport into its write and read halves.
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>);

    /// Human-readable peer address, for supervision-event traces.
    fn peer(&self) -> String;
}

/// The original transport: a pair of anonymous pipes (the worker's
/// stdin/stdout). Ordered, reliable, no handshake needed — the process
/// spawn itself authenticates the peer.
pub struct PipeTransport<R, W> {
    reader: R,
    writer: W,
    max_frame: usize,
}

impl<R, W> PipeTransport<R, W>
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    /// Wraps a read/write pair (e.g. a child's stdout/stdin).
    pub fn new(reader: R, writer: W, max_frame: usize) -> Self {
        PipeTransport {
            reader,
            writer,
            max_frame,
        }
    }
}

struct PipeSender<W>(W);

impl<W: Write + Send> FrameSender for PipeSender<W> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Fx10Error> {
        write_frame_bytes(&mut self.0, frame)
    }
}

struct PipeReceiver<R> {
    reader: R,
    max_frame: usize,
}

impl<R: Read + Send> FrameReceiver for PipeReceiver<R> {
    fn recv_frame(&mut self) -> Result<Option<WireMsg>, Fx10Error> {
        read_frame(&mut self.reader, self.max_frame)
    }
}

impl<R, W> Transport for PipeTransport<R, W>
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        (
            Box::new(PipeSender(self.writer)),
            Box::new(PipeReceiver {
                reader: self.reader,
                max_frame: self.max_frame,
            }),
        )
    }

    fn peer(&self) -> String {
        "<pipe>".into()
    }
}

/// The socket transport: the same length-prefixed frames over a TCP
/// stream. Loopback by default; the stream must already be past the
/// [`crate::conn`] handshake before frames flow.
pub struct TcpTransport {
    stream: TcpStream,
    max_frame: usize,
}

impl TcpTransport {
    /// Wraps an authenticated TCP stream.
    pub fn new(stream: TcpStream, max_frame: usize) -> Self {
        TcpTransport { stream, max_frame }
    }
}

/// A [`Read`] over a `TcpStream` that retries reads interrupted by a
/// socket read-timeout, so [`read_frame`] blocks until a whole frame,
/// a clean EOF, or a real error. A peer (or the supervisor's control
/// handle) shutting the socket down unblocks it with EOF.
struct BlockingTcpReader(TcpStream);

impl Read for BlockingTcpReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.0.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        let reader = self
            .stream
            .try_clone()
            .expect("cloning a TCP stream handle");
        (
            Box::new(PipeSender(self.stream)),
            Box::new(PipeReceiver {
                reader: BlockingTcpReader(reader),
                max_frame: self.max_frame,
            }),
        )
    }

    fn peer(&self) -> String {
        self.stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }
}

/// A short fingerprint of raw bytes, for event traces.
pub fn digest8(bytes: &[u8]) -> u64 {
    fnv1a64(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    #[test]
    fn frame_roundtrips_through_a_pipe_buffer() {
        let msgs = [
            WireMsg::new(kind::HELLO, 0, Vec::new()),
            WireMsg::new(kind::BATCH, 7, batch_body(3, b"payload")),
            WireMsg::new(kind::FINISH, 99, Vec::new()),
        ];
        let mut pipe = Vec::new();
        for m in &msgs {
            write_frame(&mut pipe, m).unwrap();
        }
        let mut r = IoCursor::new(pipe);
        for m in &msgs {
            let got = read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap();
            assert_eq!(&got, m);
        }
        assert!(
            read_frame(&mut r, MAX_FRAME_LEN).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn mid_frame_eof_is_truncated_not_none() {
        let frame = WireMsg::new(kind::PROGRESS, 1, vec![1, 2, 3]).frame();
        for cut in [1, 3, frame.len() - 1] {
            let mut r = IoCursor::new(frame[..cut].to_vec());
            let err = read_frame(&mut r, MAX_FRAME_LEN).unwrap_err();
            assert_eq!(err.exit_code(), 2, "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let mut r = IoCursor::new(bytes);
        let err = read_frame(&mut r, 1 << 20).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn corrupted_container_is_a_typed_error() {
        let mut frame = WireMsg::new(kind::ACK, 5, ack_body(&[1, 2, 3])).frame();
        let mid = frame.len() / 2;
        frame[mid] ^= 0x10;
        let mut r = IoCursor::new(frame);
        let err = read_frame(&mut r, MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn ack_body_roundtrips_and_rejects_lying_counts() {
        let seqs = vec![0, 1, u64::MAX];
        assert_eq!(parse_ack_body(&ack_body(&seqs)).unwrap(), seqs);
        // A count claiming more seqs than the body holds must fail
        // before allocating.
        let mut lie = Vec::new();
        lie.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_ack_body(&lie).is_err());
    }

    #[test]
    fn progress_and_probe_bodies_roundtrip() {
        let p = Progress {
            visited: 42,
            processed: 7,
            idle: true,
        };
        assert_eq!(parse_progress_body(&progress_body(&p)).unwrap(), p);
        assert_eq!(parse_probe_body(&probe_body(12)).unwrap(), 12);
        assert_eq!(
            parse_probe_reply_body(&probe_reply_body(12, 3, false)).unwrap(),
            (12, 3, false)
        );
    }

    #[test]
    fn adopt_body_roundtrips_with_and_without_checkpoint() {
        let (shards, ckpt) = parse_adopt_body(&adopt_body(&[2, 5], Some(b"SNAP"))).unwrap();
        assert_eq!(shards, vec![2, 5]);
        assert_eq!(ckpt.as_deref(), Some(&b"SNAP"[..]));
        let (shards, ckpt) = parse_adopt_body(&adopt_body(&[9], None)).unwrap();
        assert_eq!(shards, vec![9]);
        assert!(ckpt.is_none());
    }

    #[test]
    fn batch_dest_peeks_without_parsing_the_payload() {
        let body = batch_body(11, &[0xFF; 64]);
        assert_eq!(batch_dest(&body).unwrap(), 11);
        assert_eq!(batch_payload(&body).unwrap().len(), 64);
        assert!(batch_dest(&[1, 2]).is_err());
    }
}
