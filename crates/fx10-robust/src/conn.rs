//! Connection robustness for the socket transport: authenticated
//! handshake, per-connection supervision, and deterministic network
//! chaos.
//!
//! ## Handshake
//!
//! A worker connecting to the supervisor runs a four-step exchange
//! before any protocol frame flows:
//!
//! ```text
//! worker                              supervisor
//!   HELLO {proto, slot, boot_id, fp} →
//!                                    ← CHALLENGE {proto, nonce, run_fp}
//!   AUTH {mac(secret; nonce‖identity)} →
//!                                    ← WELCOME            (or REJECT)
//! ```
//!
//! The supervisor refuses — with a typed [`Fx10Error::Handshake`] and a
//! coded `REJECT` frame — protocol-version skew, unknown slots, a
//! worker carrying a different program fingerprint (a stale worker from
//! an earlier run), and a MAC that does not verify (a foreign client
//! without the shared secret). The nonce is fresh per connection, so a
//! captured `AUTH` replayed against a new connection fails.
//!
//! The MAC is an HMAC-style construction over FNV-1a-64
//! ([`keyed_mac`]). FNV is *not* a cryptographic PRF — this gate keeps
//! honest processes from crossing runs and keeps casual port-scanners
//! out of the frontier; it is not a defense against an adversary on the
//! network. Runs are loopback by default.
//!
//! ## Connection supervision
//!
//! [`ConnSupervisor`] is the per-worker connection state machine the
//! fleet consults: connection generations (stale pump events are
//! dropped by generation), heartbeat expiry, a reconnect budget that
//! escalates to the process-level restart/migration machinery when
//! exhausted, and the idempotent-redelivery window — a set of already
//! admitted sequence numbers so a reconnecting worker can replay its
//! unacked `BATCH` frames without any terminal being counted twice.
//! The window survives a reconnect of the *same* process (matched by
//! `boot_id`) and resets when a *new* process attaches, whose sequence
//! numbers restart from zero.
//!
//! ## Chaos
//!
//! [`NetChaos`] + [`FaultyTransport`] inject loss, duplication, latency
//! and one-way partitions *above* TCP, deterministically from a seed —
//! the socket stays healthy while the frame stream misbehaves, which is
//! exactly the failure model the retransmission and redelivery
//! machinery must absorb.

use crate::backoff::XorShift64;
use crate::ipc::{
    self, kind, FrameReceiver, FrameSender, Hello, Transport, WireMsg, PROTOCOL_VERSION,
};
use crate::snapshot::fnv1a64;
use crate::Fx10Error;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Keyed MAC over FNV-1a-64, HMAC-shaped: `H((k ⊕ opad) ‖ H((k ⊕ ipad)
/// ‖ msg))` with a 64-byte block. Deterministic and std-only. See the
/// module docs for what this construction is — and is not — good for.
pub fn keyed_mac(key: &[u8], msg: &[u8]) -> u64 {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..8].copy_from_slice(&fnv1a64(key).to_le_bytes());
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + msg.len());
    inner.extend(k.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(msg);
    let ih = fnv1a64(&inner);
    let mut outer = Vec::with_capacity(72);
    outer.extend(k.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&ih.to_le_bytes());
    fnv1a64(&outer)
}

/// The bytes both sides MAC: the challenge nonce bound to the worker's
/// claimed identity, so an `AUTH` cannot be replayed for a different
/// slot, process, or run.
fn mac_message(nonce: u64, hello: &Hello) -> Vec<u8> {
    let mut m = Vec::with_capacity(32);
    m.extend_from_slice(&nonce.to_le_bytes());
    m.extend_from_slice(&hello.proto.to_le_bytes());
    m.extend_from_slice(&hello.slot.to_le_bytes());
    m.extend_from_slice(&hello.boot_id.to_le_bytes());
    m.extend_from_slice(&hello.fingerprint.to_le_bytes());
    m
}

/// A fresh unpredictable 64-bit value (per-process random state mixed
/// with a counter), used for challenge nonces and worker boot ids.
pub fn fresh_nonce() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static CTR: AtomicU64 = AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(CTR.fetch_add(1, Ordering::Relaxed));
    h.write_u32(std::process::id());
    h.finish()
}

fn handshake_err(message: impl Into<String>) -> Fx10Error {
    Fx10Error::Handshake {
        message: message.into(),
    }
}

/// Reads the next frame during a handshake; EOF and io errors are
/// handshake failures (the socket's read deadline turns a silent peer
/// into a timeout error here).
fn expect_frame(io: &mut impl Read, max_frame: usize, want: &str) -> Result<WireMsg, Fx10Error> {
    match ipc::read_frame(io, max_frame) {
        Ok(Some(m)) => Ok(m),
        Ok(None) => Err(handshake_err(format!(
            "peer hung up before sending {want}"
        ))),
        Err(e) => Err(handshake_err(format!("while awaiting {want}: {e}"))),
    }
}

/// What the supervisor must know to vet an incoming connection.
#[derive(Debug, Clone)]
pub struct HandshakeConfig {
    /// Shared secret (empty = authentication by structure only: version
    /// and fingerprint checks still apply).
    pub secret: Vec<u8>,
    /// The run's program fingerprint.
    pub fingerprint: u64,
    /// Number of shard slots in the fleet.
    pub shards: u32,
    /// Frame-length cap for handshake frames.
    pub max_frame: usize,
}

/// An authenticated peer, as established by [`server_handshake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    /// The worker's shard slot.
    pub slot: u32,
    /// The worker's per-process boot id.
    pub boot_id: u64,
    /// Did the worker already carry this run's fingerprint (a
    /// reconnect) rather than 0 (a first connection)?
    pub resumed: bool,
}

/// Runs the supervisor side of the handshake on a fresh connection.
/// On any vetting failure the peer gets a coded `REJECT` frame and the
/// caller gets a typed [`Fx10Error::Handshake`].
pub fn server_handshake(
    io: &mut (impl Read + Write),
    cfg: &HandshakeConfig,
    nonce: u64,
) -> Result<PeerInfo, Fx10Error> {
    let reject = |io: &mut dyn Write, code: u32, msg: &str| -> Fx10Error {
        let _ = ipc::write_frame(
            &mut { io },
            &WireMsg::new(kind::REJECT, 0, ipc::reject_body(code, msg)),
        );
        handshake_err(msg.to_string())
    };
    let first = expect_frame(io, cfg.max_frame, "HELLO")?;
    if first.kind != kind::HELLO {
        return Err(reject(
            io,
            ipc::reject::PROTOCOL,
            &format!("expected HELLO, got {}", first.kind_name()),
        ));
    }
    let hello = match ipc::parse_hello_body(&first.body) {
        Ok(h) => h,
        Err(e) => {
            return Err(reject(
                io,
                ipc::reject::PROTOCOL,
                &format!("malformed HELLO body: {e}"),
            ))
        }
    };
    if hello.proto != PROTOCOL_VERSION {
        return Err(reject(
            io,
            ipc::reject::VERSION,
            &format!(
                "protocol version skew: worker speaks v{}, supervisor speaks v{PROTOCOL_VERSION}",
                hello.proto
            ),
        ));
    }
    if hello.slot >= cfg.shards {
        return Err(reject(
            io,
            ipc::reject::SLOT,
            &format!("slot {} does not exist in a {}-shard fleet", hello.slot, cfg.shards),
        ));
    }
    if hello.fingerprint != 0 && hello.fingerprint != cfg.fingerprint {
        return Err(reject(
            io,
            ipc::reject::FINGERPRINT,
            "stale worker: program fingerprint belongs to a different run",
        ));
    }
    ipc::write_frame(
        io,
        &WireMsg::new(
            kind::CHALLENGE,
            0,
            ipc::challenge_body(PROTOCOL_VERSION, nonce, cfg.fingerprint),
        ),
    )?;
    let auth = expect_frame(io, cfg.max_frame, "AUTH")?;
    let mac = match (auth.kind, ipc::parse_auth_body(&auth.body)) {
        (kind::AUTH, Ok(mac)) => mac,
        _ => {
            return Err(reject(
                io,
                ipc::reject::PROTOCOL,
                "expected a well-formed AUTH",
            ))
        }
    };
    if mac != keyed_mac(&cfg.secret, &mac_message(nonce, &hello)) {
        return Err(reject(
            io,
            ipc::reject::AUTH,
            "authentication failed: keyed MAC does not verify",
        ));
    }
    ipc::write_frame(io, &WireMsg::new(kind::WELCOME, 0, Vec::new()))?;
    Ok(PeerInfo {
        slot: hello.slot,
        boot_id: hello.boot_id,
        resumed: hello.fingerprint != 0,
    })
}

/// Runs the worker side of the handshake. Returns the supervisor's
/// program fingerprint on success; a `REJECT` becomes a typed
/// [`Fx10Error::Handshake`] carrying the supervisor's reason.
pub fn client_handshake(
    io: &mut (impl Read + Write),
    secret: &[u8],
    hello: &Hello,
    max_frame: usize,
) -> Result<u64, Fx10Error> {
    ipc::write_frame(io, &WireMsg::new(kind::HELLO, 0, ipc::hello_body(hello)))?;
    let reply = expect_frame(io, max_frame, "CHALLENGE")?;
    let (proto, nonce, run_fp) = match reply.kind {
        kind::CHALLENGE => ipc::parse_challenge_body(&reply.body)
            .map_err(|e| handshake_err(format!("malformed CHALLENGE body: {e}")))?,
        kind::REJECT => {
            let (code, msg) = ipc::parse_reject_body(&reply.body)
                .unwrap_or((ipc::reject::PROTOCOL, "unreadable reject reason".into()));
            return Err(handshake_err(format!("rejected (code {code}): {msg}")));
        }
        _ => {
            return Err(handshake_err(format!(
                "expected CHALLENGE, got {}",
                reply.kind_name()
            )))
        }
    };
    if proto != PROTOCOL_VERSION {
        return Err(handshake_err(format!(
            "protocol version skew: supervisor speaks v{proto}, worker speaks v{PROTOCOL_VERSION}"
        )));
    }
    if hello.fingerprint != 0 && run_fp != hello.fingerprint {
        return Err(handshake_err(
            "supervisor is running a different program than this worker",
        ));
    }
    ipc::write_frame(
        io,
        &WireMsg::new(
            kind::AUTH,
            0,
            ipc::auth_body(keyed_mac(secret, &mac_message(nonce, hello))),
        ),
    )?;
    let fin = expect_frame(io, max_frame, "WELCOME")?;
    match fin.kind {
        kind::WELCOME => Ok(run_fp),
        kind::REJECT => {
            let (code, msg) = ipc::parse_reject_body(&fin.body)
                .unwrap_or((ipc::reject::PROTOCOL, "unreadable reject reason".into()));
            Err(handshake_err(format!("rejected (code {code}): {msg}")))
        }
        _ => Err(handshake_err(format!(
            "expected WELCOME, got {}",
            fin.kind_name()
        ))),
    }
}

/// Dials the supervisor and completes the handshake, retrying
/// connect-level failures with decorrelated backoff. A `REJECT` is
/// *not* retried — the supervisor's verdict is deterministic, so the
/// worker fails fast with the typed error. `attempts` counts dials
/// (so `0` means "try once, never retry").
pub fn connect_with_retry(
    addr: &SocketAddr,
    secret: &[u8],
    hello: &Hello,
    max_frame: usize,
    attempts: u32,
    rng: &mut XorShift64,
    prev_backoff: &mut Duration,
) -> Result<TcpStream, Fx10Error> {
    let mut last: Option<Fx10Error> = None;
    for attempt in 0..=attempts {
        if attempt > 0 {
            let prev = if prev_backoff.is_zero() {
                Duration::from_millis(50)
            } else {
                *prev_backoff
            };
            let pause = rng.backoff(Duration::from_millis(50), prev, Duration::from_secs(1));
            *prev_backoff = pause;
            std::thread::sleep(pause);
        }
        let stream = match TcpStream::connect_timeout(addr, Duration::from_secs(2)) {
            Ok(s) => s,
            Err(e) => {
                last = Some(Fx10Error::Io {
                    path: addr.to_string(),
                    message: e.to_string(),
                });
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut io = stream.try_clone().map_err(|e| Fx10Error::Io {
            path: addr.to_string(),
            message: e.to_string(),
        })?;
        match client_handshake(&mut io, secret, hello, max_frame) {
            Ok(_) => {
                let _ = stream.set_read_timeout(None);
                return Ok(stream);
            }
            Err(e @ Fx10Error::Handshake { .. }) => return Err(e),
            Err(e) => {
                last = Some(e);
                continue;
            }
        }
    }
    Err(last.unwrap_or_else(|| handshake_err("no connection attempt was made")))
}

/// What kind of attach [`ConnSupervisor::on_attach`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attach {
    /// A new worker process: its sequence numbers restart, so the
    /// redelivery window was reset.
    Fresh,
    /// The same process reconnecting: the window is preserved, replayed
    /// frames will be deduplicated.
    Resumed,
}

/// Per-worker connection state machine for the socket transport:
/// generations, heartbeat expiry, reconnect budget, and the
/// idempotent-redelivery window (see the module docs).
#[derive(Debug, Clone)]
pub struct ConnSupervisor {
    /// A connected worker silent past this window has its connection
    /// dropped (the worker will reconnect, or the process-level stall
    /// detector escalates).
    pub heartbeat_timeout: Duration,
    /// Unacked work frames older than this are retransmitted.
    pub retransmit_after: Duration,
    /// Connection drops tolerated per process incarnation before the
    /// fleet escalates to restart/migration.
    pub max_reconnects: u32,
    gen: u64,
    connected: bool,
    boot_id: Option<u64>,
    seen: HashSet<u64>,
    drops: u32,
    last_tx: Instant,
}

impl ConnSupervisor {
    /// A supervisor with no connection yet.
    pub fn new(heartbeat_timeout: Duration, retransmit_after: Duration, max_reconnects: u32) -> Self {
        ConnSupervisor {
            heartbeat_timeout,
            retransmit_after,
            max_reconnects,
            gen: 0,
            connected: false,
            boot_id: None,
            seen: HashSet::new(),
            drops: 0,
            last_tx: Instant::now(),
        }
    }

    /// The current connection generation; pump events tagged with an
    /// older generation are stale and must be dropped.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Is a connection currently attached?
    pub fn connected(&self) -> bool {
        self.connected
    }

    /// Connection drops since the last process (re)spawn.
    pub fn drops(&self) -> u32 {
        self.drops
    }

    /// The owning process was (re)spawned: invalidate any old
    /// connection, reset the redelivery window (a new process numbers
    /// its frames from zero) and the reconnect budget.
    pub fn on_spawn(&mut self) {
        self.gen += 1;
        self.connected = false;
        self.boot_id = None;
        self.seen.clear();
        self.drops = 0;
    }

    /// A handshaked connection attached. Returns whether it resumes the
    /// previous process (window kept) or belongs to a fresh one
    /// (window reset).
    pub fn on_attach(&mut self, boot_id: u64) -> Attach {
        self.gen += 1;
        self.connected = true;
        self.last_tx = Instant::now();
        let kind = if self.boot_id == Some(boot_id) {
            Attach::Resumed
        } else {
            self.seen.clear();
            Attach::Fresh
        };
        self.boot_id = Some(boot_id);
        kind
    }

    /// The connection dropped (EOF, error, or heartbeat expiry).
    /// Returns `true` while the reconnect budget lasts; `false` means
    /// the fleet should escalate to restart/migration.
    pub fn on_drop_conn(&mut self) -> bool {
        self.gen += 1;
        self.connected = false;
        self.drops += 1;
        self.drops <= self.max_reconnects
    }

    /// Admits a work-frame sequence number into the redelivery window.
    /// `false` means the frame is a redelivery the worker has already
    /// had routed — drop it (but still ack it, the original ack may
    /// have been lost).
    pub fn admit(&mut self, seq: u64) -> bool {
        self.seen.insert(seq)
    }

    /// Has the heartbeat window expired for a worker last heard at
    /// `last_heard`?
    pub fn heartbeat_expired(&self, last_heard: Instant) -> bool {
        self.connected && last_heard.elapsed() > self.heartbeat_timeout
    }

    /// Is a retransmission of unacked frames due?
    pub fn retransmit_due(&self) -> bool {
        self.connected && self.last_tx.elapsed() > self.retransmit_after
    }

    /// Records a transmission (fresh delivery or retransmission).
    pub fn mark_tx(&mut self) {
        self.last_tx = Instant::now();
    }
}

// -- deterministic network chaos ---------------------------------------------

/// Seeded fault plan for the socket transport, read from the
/// `FX10_NET_*` environment hooks. All-zero means "no chaos".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetChaos {
    /// Percent of data frames to drop (0–100).
    pub drop_pct: u8,
    /// Percent of data frames to duplicate (0–100).
    pub dup_pct: u8,
    /// Latency injected before each data frame, in milliseconds.
    pub delay_ms: u64,
    /// One-way partition: drop the first `count` worker→supervisor data
    /// frames of `slot`'s first connection (the supervisor still
    /// reaches the worker — exactly the half-open failure TCP cannot
    /// see). Heals by retransmission or by heartbeat-driven reconnect.
    pub partition: Option<(u32, u64)>,
    /// Seed for the per-connection fault streams.
    pub seed: u64,
}

impl NetChaos {
    /// Does this plan inject any fault at all?
    pub fn is_active(&self) -> bool {
        self.drop_pct > 0 || self.dup_pct > 0 || self.delay_ms > 0 || self.partition.is_some()
    }
}

/// What the chaos layer decided to do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Pass it through.
    Deliver,
    /// Swallow it.
    Drop,
    /// Deliver it twice.
    Duplicate,
}

/// Handshake and `INIT`/`REJECT` frames are exempt from chaos: the
/// handshake runs before the chaos layer attaches, and losing `INIT`
/// would model a fault the *application* protocol never retransmits
/// (the fleet replays `INIT` on every attach instead).
pub fn chaos_exempt(kind_: u32) -> bool {
    matches!(
        kind_,
        kind::HELLO | kind::CHALLENGE | kind::AUTH | kind::REJECT | kind::WELCOME | kind::INIT
    )
}

/// One direction of one connection's fault stream, deterministic in
/// `(seed, slot, gen, direction)`.
#[derive(Debug)]
pub struct ChaosLink {
    rng: XorShift64,
    drop_pct: u8,
    dup_pct: u8,
    delay_ms: u64,
    partition_left: u64,
}

impl ChaosLink {
    /// The fault stream for one connection direction; `inbound` is the
    /// worker→supervisor direction (the only one a partition affects).
    pub fn for_conn(chaos: &NetChaos, slot: u32, gen: u64, inbound: bool) -> Self {
        let mix = chaos
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((slot as u64) << 32)
            .wrapping_add(gen << 1)
            .wrapping_add(inbound as u64);
        // The fleet numbers generations monotonically: the spawn bumps
        // once and the first attach bumps again, so the first live
        // connection of the first incarnation runs at gen <= 2. Later
        // reconnects (gen 3+) are the *healed* network and stay
        // partition-free.
        let partition_left = match chaos.partition {
            Some((pslot, count)) if inbound && pslot == slot && gen <= 2 => count,
            _ => 0,
        };
        ChaosLink {
            rng: XorShift64::new(mix),
            drop_pct: chaos.drop_pct,
            dup_pct: chaos.dup_pct,
            delay_ms: chaos.delay_ms,
            partition_left,
        }
    }

    /// Decides (and, for latency, performs) this frame's fate.
    pub fn on_frame(&mut self, kind_: u32) -> FrameFate {
        if chaos_exempt(kind_) {
            return FrameFate::Deliver;
        }
        if self.partition_left > 0 {
            self.partition_left -= 1;
            return FrameFate::Drop;
        }
        if self.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.delay_ms));
        }
        let roll = (self.rng.next_u64() % 100) as u8;
        if roll < self.drop_pct {
            FrameFate::Drop
        } else if roll < self.drop_pct.saturating_add(self.dup_pct) {
            FrameFate::Duplicate
        } else {
            FrameFate::Deliver
        }
    }
}

/// A [`Transport`] whose halves misbehave per a [`NetChaos`] plan —
/// loss, duplication, latency, one-way partition — while the underlying
/// stream stays healthy.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    chaos: NetChaos,
    slot: u32,
    gen: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`; `slot`/`gen` select the deterministic fault
    /// streams.
    pub fn new(inner: T, chaos: NetChaos, slot: u32, gen: u64) -> Self {
        FaultyTransport {
            inner,
            chaos,
            slot,
            gen,
        }
    }
}

impl<T: Transport + 'static> Transport for FaultyTransport<T> {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        let (tx, rx) = Box::new(self.inner).split();
        (
            Box::new(FaultySender {
                inner: tx,
                chaos: ChaosLink::for_conn(&self.chaos, self.slot, self.gen, false),
            }),
            Box::new(FaultyReceiver {
                inner: rx,
                chaos: ChaosLink::for_conn(&self.chaos, self.slot, self.gen, true),
                pending: None,
            }),
        )
    }

    fn peer(&self) -> String {
        format!("{} (chaos)", self.inner.peer())
    }
}

/// The write half of a [`FaultyTransport`].
pub struct FaultySender {
    inner: Box<dyn FrameSender>,
    chaos: ChaosLink,
}

impl FaultySender {
    /// Wraps an already-split sender half.
    pub fn wrap(inner: Box<dyn FrameSender>, chaos: ChaosLink) -> Self {
        FaultySender { inner, chaos }
    }
}

impl FrameSender for FaultySender {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Fx10Error> {
        // The kind lives inside the checksummed container; decoding it
        // costs one pass over bytes that were just encoded — chaos is a
        // test-only mode, determinism beats throughput here.
        let kind_ = WireMsg::decode(frame.get(4..).unwrap_or(&[]))
            .map(|m| m.kind)
            .unwrap_or(0);
        match self.chaos.on_frame(kind_) {
            FrameFate::Drop => Ok(()),
            FrameFate::Deliver => self.inner.send_frame(frame),
            FrameFate::Duplicate => {
                self.inner.send_frame(frame)?;
                self.inner.send_frame(frame)
            }
        }
    }
}

/// The read half of a [`FaultyTransport`].
pub struct FaultyReceiver {
    inner: Box<dyn FrameReceiver>,
    chaos: ChaosLink,
    pending: Option<WireMsg>,
}

impl FaultyReceiver {
    /// Wraps an already-split receiver half.
    pub fn wrap(inner: Box<dyn FrameReceiver>, chaos: ChaosLink) -> Self {
        FaultyReceiver {
            inner,
            chaos,
            pending: None,
        }
    }
}

impl FrameReceiver for FaultyReceiver {
    fn recv_frame(&mut self) -> Result<Option<WireMsg>, Fx10Error> {
        if let Some(m) = self.pending.take() {
            return Ok(Some(m));
        }
        loop {
            match self.inner.recv_frame()? {
                None => return Ok(None),
                Some(m) => match self.chaos.on_frame(m.kind) {
                    FrameFate::Drop => continue,
                    FrameFate::Deliver => return Ok(Some(m)),
                    FrameFate::Duplicate => {
                        self.pending = Some(m.clone());
                        return Ok(Some(m));
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn duplex() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let h = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = l.accept().unwrap();
        (server, h.join().unwrap())
    }

    fn cfg(secret: &[u8]) -> HandshakeConfig {
        HandshakeConfig {
            secret: secret.to_vec(),
            fingerprint: 0xF00D,
            shards: 4,
            max_frame: ipc::MAX_FRAME_LEN,
        }
    }

    fn hello(slot: u32, fp: u64) -> Hello {
        Hello {
            proto: PROTOCOL_VERSION,
            slot,
            boot_id: 7,
            fingerprint: fp,
        }
    }

    #[test]
    fn keyed_mac_is_deterministic_and_key_sensitive() {
        let a = keyed_mac(b"secret", b"message");
        assert_eq!(a, keyed_mac(b"secret", b"message"));
        assert_ne!(a, keyed_mac(b"secret!", b"message"));
        assert_ne!(a, keyed_mac(b"secret", b"messagf"));
        // Long keys are reduced, not truncated into a collision.
        assert_ne!(keyed_mac(&[7u8; 100], b"m"), keyed_mac(&[7u8; 64], b"m"));
    }

    #[test]
    fn handshake_succeeds_with_matching_secret() {
        let (mut server, mut client) = duplex();
        let c = cfg(b"hunter2");
        let t = thread::spawn(move || {
            client_handshake(&mut client, b"hunter2", &hello(2, 0), ipc::MAX_FRAME_LEN)
        });
        let peer = server_handshake(&mut server, &c, 42).unwrap();
        assert_eq!(peer.slot, 2);
        assert_eq!(peer.boot_id, 7);
        assert!(!peer.resumed);
        assert_eq!(t.join().unwrap().unwrap(), 0xF00D);
    }

    #[test]
    fn wrong_secret_is_rejected_on_both_sides() {
        let (mut server, mut client) = duplex();
        let c = cfg(b"hunter2");
        let t = thread::spawn(move || {
            client_handshake(&mut client, b"password", &hello(0, 0), ipc::MAX_FRAME_LEN)
        });
        let err = server_handshake(&mut server, &c, 42).unwrap_err();
        assert!(matches!(err, Fx10Error::Handshake { .. }), "{err}");
        assert!(err.to_string().contains("MAC"), "{err}");
        let cerr = t.join().unwrap().unwrap_err();
        assert!(cerr.to_string().contains("code 2"), "{cerr}");
    }

    #[test]
    fn version_skew_is_rejected_with_a_typed_error() {
        let (mut server, mut client) = duplex();
        let c = cfg(b"");
        let t = thread::spawn(move || {
            let mut h = hello(0, 0);
            h.proto = 999;
            client_handshake(&mut client, b"", &h, ipc::MAX_FRAME_LEN)
        });
        let err = server_handshake(&mut server, &c, 1).unwrap_err();
        assert!(err.to_string().contains("version skew"), "{err}");
        assert_eq!(err.exit_code(), 2);
        let cerr = t.join().unwrap().unwrap_err();
        assert!(cerr.to_string().contains("code 1"), "{cerr}");
    }

    #[test]
    fn stale_fingerprint_and_bad_slot_are_rejected() {
        for (h, needle) in [
            (hello(1, 0xDEAD), "different run"),
            (hello(9, 0), "does not exist"),
        ] {
            let (mut server, mut client) = duplex();
            let c = cfg(b"");
            let t = thread::spawn(move || {
                client_handshake(&mut client, b"", &h, ipc::MAX_FRAME_LEN)
            });
            let err = server_handshake(&mut server, &c, 1).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
            assert!(t.join().unwrap().is_err());
        }
    }

    #[test]
    fn replayed_auth_fails_against_a_fresh_nonce() {
        // Capture a valid AUTH mac for nonce 42, then replay it against
        // a handshake with nonce 43: the MAC binds the nonce, so the
        // replay must be rejected.
        let h = hello(0, 0);
        let replayed = keyed_mac(b"s3cr3t", &mac_message(42, &h));
        let (mut server, mut client) = duplex();
        let c = cfg(b"s3cr3t");
        let t = thread::spawn(move || {
            ipc::write_frame(
                &mut client,
                &WireMsg::new(kind::HELLO, 0, ipc::hello_body(&h)),
            )
            .unwrap();
            let ch = ipc::read_frame(&mut client, ipc::MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            assert_eq!(ch.kind, kind::CHALLENGE);
            ipc::write_frame(
                &mut client,
                &WireMsg::new(kind::AUTH, 0, ipc::auth_body(replayed)),
            )
            .unwrap();
            let fin = ipc::read_frame(&mut client, ipc::MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            fin.kind
        });
        let err = server_handshake(&mut server, &c, 43).unwrap_err();
        assert!(err.to_string().contains("MAC"), "{err}");
        assert_eq!(t.join().unwrap(), kind::REJECT);
    }

    #[test]
    fn conn_supervisor_window_survives_reconnect_but_not_respawn() {
        let mut c = ConnSupervisor::new(
            Duration::from_millis(300),
            Duration::from_millis(100),
            3,
        );
        c.on_spawn();
        assert_eq!(c.on_attach(11), Attach::Fresh);
        assert!(c.admit(5));
        assert!(!c.admit(5), "redelivery is deduplicated");
        assert!(c.on_drop_conn(), "budget of 3 tolerates the first drop");
        // Same process reconnects: the window survives.
        assert_eq!(c.on_attach(11), Attach::Resumed);
        assert!(!c.admit(5));
        // A respawned process numbers frames from zero again.
        c.on_spawn();
        assert_eq!(c.on_attach(12), Attach::Fresh);
        assert!(c.admit(5));
        // Budget exhaustion.
        for _ in 0..3 {
            c.on_drop_conn();
        }
        assert!(!c.on_drop_conn(), "4th drop exceeds a budget of 3");
    }

    #[test]
    fn chaos_streams_are_deterministic_and_exempt_control_frames() {
        let chaos = NetChaos {
            drop_pct: 30,
            dup_pct: 20,
            delay_ms: 0,
            partition: None,
            seed: 0xC0FFEE,
        };
        let fates = |gen: u64| -> Vec<FrameFate> {
            let mut link = ChaosLink::for_conn(&chaos, 1, gen, true);
            (0..64).map(|_| link.on_frame(kind::BATCH)).collect()
        };
        assert_eq!(fates(1), fates(1), "same seed, same fate stream");
        assert_ne!(fates(1), fates(2), "generations decorrelate");
        let mut link = ChaosLink::for_conn(&chaos, 1, 1, true);
        for _ in 0..256 {
            assert_eq!(link.on_frame(kind::INIT), FrameFate::Deliver);
            assert_eq!(link.on_frame(kind::HELLO), FrameFate::Deliver);
        }
    }

    #[test]
    fn partition_drops_exactly_count_inbound_data_frames_on_first_conn() {
        let chaos = NetChaos {
            partition: Some((0, 3)),
            ..NetChaos::default()
        };
        // Gen 2 is the first live connection (spawn bump + attach bump).
        let mut link = ChaosLink::for_conn(&chaos, 0, 2, true);
        for _ in 0..3 {
            assert_eq!(link.on_frame(kind::BATCH), FrameFate::Drop);
        }
        assert_eq!(link.on_frame(kind::BATCH), FrameFate::Deliver);
        // Outbound, other slots, and reconnect generations are unaffected.
        assert_eq!(
            ChaosLink::for_conn(&chaos, 0, 2, false).on_frame(kind::BATCH),
            FrameFate::Deliver
        );
        assert_eq!(
            ChaosLink::for_conn(&chaos, 1, 2, true).on_frame(kind::BATCH),
            FrameFate::Deliver
        );
        assert_eq!(
            ChaosLink::for_conn(&chaos, 0, 3, true).on_frame(kind::BATCH),
            FrameFate::Deliver
        );
    }
}
