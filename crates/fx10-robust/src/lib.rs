//! # fx10-robust
//!
//! The robustness layer shared by every long-running FX10 engine.
//!
//! The paper's headline guarantees — every program has a type (Theorem
//! 6), the semantics never deadlocks (Theorem 1) — promise that the
//! analysis is *always safe to run*. This crate carries that promise to
//! the systems level: every pipeline entry point returns a typed result
//! ([`Fx10Error`]) instead of panicking, respects an explicit resource
//! [`Budget`] instead of running forever, observes a cooperative
//! [`CancelToken`], and isolates worker-thread panics behind
//! [`Fx10Error::WorkerPanicked`] instead of aborting the process.
//! Partial results carry an [`Exhaustion`] provenance so callers can
//! distinguish "complete" from "budget-cut" answers, and a [`FaultPlan`]
//! lets the test harness inject panics, forced budget trips and
//! adversarial scheduling to prove those paths actually work.
//!
//! The crate is dependency-free and sits below every other workspace
//! crate.

#![warn(missing_docs)]

pub mod backoff;
pub mod conn;
pub mod ipc;
pub mod shard;
pub mod snapshot;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// The typed error of the FX10 pipeline.
///
/// Every reachable failure of a library entry point is one of these
/// variants; library code never panics on malformed input, budget
/// exhaustion, cancellation, or worker failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fx10Error {
    /// The source text did not parse. `line` is 1-based (0 for
    /// program-level errors such as a call to an unknown method).
    Parse {
        /// 1-based source line (0 when program-level).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The program parsed but failed validation (e.g. no `main`).
    Validate(String),
    /// A file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error rendered.
        message: String,
    },
    /// A resource budget was exhausted before the engine completed. The
    /// payload says which resource ran out.
    BudgetExhausted(Exhaustion),
    /// The operation observed its [`CancelToken`] and stopped early.
    Cancelled,
    /// A worker thread panicked; the panic was contained and converted
    /// instead of aborting the process.
    WorkerPanicked {
        /// Index of the worker that panicked.
        worker: usize,
        /// The panic payload, rendered.
        message: String,
    },
    /// A snapshot file could not be decoded (corrupt, truncated, wrong
    /// version, or not matching the program being resumed). Treated as a
    /// usage error — the *input* is bad, not the analysis.
    Snapshot {
        /// What was wrong with the snapshot, rendered.
        message: String,
    },
    /// A socket-transport handshake was refused: protocol-version skew,
    /// a stale program fingerprint, an unknown slot, or a keyed MAC
    /// that did not verify. Treated as a usage error — the *peer* is
    /// wrong, not the analysis.
    Handshake {
        /// Why the peer was refused, rendered.
        message: String,
    },
    /// The watchdog observed a worker whose heartbeat stopped advancing
    /// for longer than the stall threshold and cancelled the crew.
    WorkerStalled {
        /// Index of the stalled worker.
        worker: usize,
        /// How long its heartbeat had been frozen, in milliseconds.
        stalled_ms: u64,
    },
}

impl Fx10Error {
    /// The documented process exit code for this error.
    ///
    /// | code | meaning |
    /// |------|------------------------------------------|
    /// | 0    | success (not an error)                   |
    /// | 1    | analysis error (parse/validate/io/unsound)|
    /// | 2    | usage error / invalid snapshot / refused handshake |
    /// | 3    | budget exhausted / inconclusive          |
    /// | 4    | cancelled, worker panicked or stalled    |
    pub fn exit_code(&self) -> u8 {
        match self {
            Fx10Error::Parse { .. } | Fx10Error::Validate(_) | Fx10Error::Io { .. } => 1,
            Fx10Error::Snapshot { .. } | Fx10Error::Handshake { .. } => 2,
            Fx10Error::BudgetExhausted(_) => 3,
            Fx10Error::Cancelled
            | Fx10Error::WorkerPanicked { .. }
            | Fx10Error::WorkerStalled { .. } => 4,
        }
    }
}

impl fmt::Display for Fx10Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fx10Error::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            Fx10Error::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            Fx10Error::Validate(m) => write!(f, "validation error: {m}"),
            Fx10Error::Io { path, message } => write!(f, "{path}: {message}"),
            Fx10Error::BudgetExhausted(e) => write!(f, "budget exhausted: {e}"),
            Fx10Error::Cancelled => write!(f, "cancelled"),
            Fx10Error::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            Fx10Error::Snapshot { message } => write!(f, "snapshot error: {message}"),
            Fx10Error::Handshake { message } => write!(f, "handshake error: {message}"),
            Fx10Error::WorkerStalled { worker, stalled_ms } => {
                write!(
                    f,
                    "worker {worker} stalled: heartbeat frozen for {stalled_ms} ms"
                )
            }
        }
    }
}

impl std::error::Error for Fx10Error {}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// Which resource a budget-cut computation ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The explorer's distinct-state cap.
    States,
    /// The interpreter's step cap.
    Steps,
    /// The fixed-point solvers' constraint-evaluation cap.
    SolverIterations,
    /// The wall-clock deadline.
    Deadline,
    /// The peak-set-memory cap.
    Memory,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhaustion::States => write!(f, "state budget"),
            Exhaustion::Steps => write!(f, "step budget"),
            Exhaustion::SolverIterations => write!(f, "solver iteration budget"),
            Exhaustion::Deadline => write!(f, "wall-clock deadline"),
            Exhaustion::Memory => write!(f, "memory budget"),
        }
    }
}

/// Resource limits for one pipeline run. `None` means unlimited.
///
/// `Budget` is `Copy`; hand the same value to several phases and each
/// enforces the caps independently (the wall-clock deadline is absolute,
/// so it is naturally shared across phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum distinct states the explorer may visit.
    pub max_states: Option<usize>,
    /// Maximum constraint evaluations per solver run.
    pub max_iters: Option<u64>,
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Peak bytes the explorer's visited set may hold (approximate).
    pub max_set_bytes: Option<usize>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No limits at all.
    pub const fn unlimited() -> Self {
        Budget {
            max_states: None,
            max_iters: None,
            deadline: None,
            max_set_bytes: None,
        }
    }

    /// Caps distinct explorer states.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = Some(n);
        self
    }

    /// Caps solver constraint evaluations.
    pub fn with_max_iters(mut self, n: u64) -> Self {
        self.max_iters = Some(n);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the visited set's (approximate) heap footprint.
    pub fn with_max_set_bytes(mut self, bytes: usize) -> Self {
        self.max_set_bytes = Some(bytes);
        self
    }

    /// True if any limit is set.
    pub fn is_limited(&self) -> bool {
        self.max_states.is_some()
            || self.max_iters.is_some()
            || self.deadline.is_some()
            || self.max_set_bytes.is_some()
    }

    /// Checks the state cap against a current count.
    pub fn states_exhausted(&self, states: usize) -> bool {
        self.max_states.is_some_and(|cap| states >= cap)
    }

    /// Checks the memory cap against a current (approximate) footprint.
    pub fn memory_exhausted(&self, bytes: usize) -> bool {
        self.max_set_bytes.is_some_and(|cap| bytes >= cap)
    }

    /// Checks the wall clock against the deadline.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Why a [`BudgetMeter`] tick asked the engine to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A budget ran out: record the provenance and return the partial
    /// result.
    Exhausted(Exhaustion),
    /// The cancel token fired: unwind with [`Fx10Error::Cancelled`].
    Cancelled,
}

impl From<Stop> for Fx10Error {
    fn from(s: Stop) -> Self {
        match s {
            Stop::Exhausted(e) => Fx10Error::BudgetExhausted(e),
            Stop::Cancelled => Fx10Error::Cancelled,
        }
    }
}

/// Mutable budget accounting shared by the phases of one pipeline run.
///
/// Solvers call [`tick`](BudgetMeter::tick) once per constraint
/// evaluation; the meter aggregates the count across phases, so
/// `max_iters` bounds the *whole analysis*, not each phase separately.
/// Deadline and cancellation are polled on a stride to keep the hot loop
/// cheap.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: Budget,
    cancel: CancelToken,
    iters: u64,
    exhausted: Option<Exhaustion>,
}

/// How often (in ticks) the meter polls the clock and the cancel token.
const POLL_STRIDE: u64 = 64;

impl BudgetMeter {
    /// A meter enforcing `budget` and observing `cancel`.
    pub fn new(budget: Budget, cancel: CancelToken) -> Self {
        BudgetMeter {
            budget,
            cancel,
            iters: 0,
            exhausted: None,
        }
    }

    /// A meter with no limits and a token nobody can cancel.
    pub fn unlimited() -> Self {
        BudgetMeter::new(Budget::unlimited(), CancelToken::new())
    }

    /// The budget being enforced.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Total ticks so far.
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// First exhaustion observed by [`tick`](BudgetMeter::tick), if any.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.exhausted
    }

    /// Records that a phase hit a budget wall found outside `tick` (e.g.
    /// the explorer's state cap).
    pub fn note_exhaustion(&mut self, e: Exhaustion) {
        self.exhausted.get_or_insert(e);
    }

    /// Charges one unit of solver work. `Err(Stop)` means stop now:
    /// either a budget ran out (keep the partial result, tag it) or the
    /// token was cancelled (unwind).
    pub fn tick(&mut self) -> Result<(), Stop> {
        self.iters += 1;
        if self.budget.max_iters.is_some_and(|cap| self.iters > cap) {
            self.exhausted.get_or_insert(Exhaustion::SolverIterations);
            return Err(Stop::Exhausted(Exhaustion::SolverIterations));
        }
        if self.iters.is_multiple_of(POLL_STRIDE) {
            if self.cancel.is_cancelled() {
                return Err(Stop::Cancelled);
            }
            if self.budget.deadline_exceeded() {
                self.exhausted.get_or_insert(Exhaustion::Deadline);
                return Err(Stop::Exhausted(Exhaustion::Deadline));
            }
        }
        Ok(())
    }

    /// Charges `n` units of work at once (used by parallel engines that
    /// account ticks in a shared atomic and settle with the meter when
    /// they join). Trips exactly like [`tick`](BudgetMeter::tick), with
    /// an immediate cancellation/deadline poll.
    pub fn charge(&mut self, n: u64) -> Result<(), Stop> {
        self.iters = self.iters.saturating_add(n);
        if self.budget.max_iters.is_some_and(|cap| self.iters > cap) {
            self.exhausted.get_or_insert(Exhaustion::SolverIterations);
            return Err(Stop::Exhausted(Exhaustion::SolverIterations));
        }
        self.checkpoint()
    }

    /// How many ticks remain before the iteration cap trips (`None` when
    /// unlimited).
    pub fn iters_remaining(&self) -> Option<u64> {
        self.budget
            .max_iters
            .map(|cap| cap.saturating_sub(self.iters))
    }

    /// The cancel token this meter observes.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Polls cancellation and the deadline immediately (phase
    /// boundaries).
    pub fn checkpoint(&mut self) -> Result<(), Stop> {
        if self.cancel.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        if self.budget.deadline_exceeded() {
            self.exhausted.get_or_insert(Exhaustion::Deadline);
            return Err(Stop::Exhausted(Exhaustion::Deadline));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Shared (atomic) budget accounting
// ---------------------------------------------------------------------------

/// Lock-free budget accounting shared by the workers of one parallel
/// engine.
///
/// Where [`BudgetMeter`] is the single-threaded meter (one owner, `&mut`
/// ticks), `SharedMeter` is its crew-wide counterpart: all counters are
/// atomics, so N workers charge the *same* budget concurrently without a
/// lock on the hot path. Workers reserve state credits in batches
/// ([`SharedMeter::try_reserve_states`]) — the total number of states
/// admitted can therefore overshoot the cap by at most one batch per
/// worker, which is the documented precision of the parallel explorer's
/// budget contract.
#[derive(Debug)]
pub struct SharedMeter {
    budget: Budget,
    cancel: CancelToken,
    /// States admitted so far (reserved credits).
    states: AtomicUsize,
    /// Work units charged so far (explorer: expanded states).
    ticks: AtomicU64,
    /// Approximate bytes held by the engine's visited structures.
    bytes: AtomicUsize,
    /// First budget wall observed by any worker.
    exhausted: Mutex<Option<Exhaustion>>,
    /// Set as soon as any stop condition fires, so workers drain out.
    stopped: AtomicBool,
}

impl SharedMeter {
    /// A shared meter enforcing `budget` and observing `cancel`.
    pub fn new(budget: Budget, cancel: CancelToken) -> Self {
        SharedMeter {
            budget,
            cancel,
            states: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            exhausted: Mutex::new(None),
            stopped: AtomicBool::new(false),
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The cancel token all workers observe.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Atomically reserves `n` state credits against `cap` (the engine's
    /// effective state cap, already folded with the budget). Returns
    /// `true` when the reservation is admitted. On refusal the cap is
    /// recorded as [`Exhaustion::States`] and the stop flag is raised.
    ///
    /// The check is `fetch_add` first, compare after — concurrent
    /// reservations can overshoot the cap by at most one batch per
    /// worker, never hang and never under-admit.
    pub fn try_reserve_states(&self, n: usize, cap: usize) -> bool {
        let before = self.states.fetch_add(n, Ordering::Relaxed);
        if before >= cap {
            // Refund so `states()` stays an admitted-credit count.
            self.states.fetch_sub(n, Ordering::Relaxed);
            self.note_exhaustion(Exhaustion::States);
            false
        } else {
            true
        }
    }

    /// State credits admitted so far.
    pub fn states(&self) -> usize {
        self.states.load(Ordering::Relaxed)
    }

    /// Bulk-credits `n` states restored from a snapshot against `cap`.
    ///
    /// Unlike [`try_reserve_states`](SharedMeter::try_reserve_states)
    /// the credits are *kept* even when the cap is already met — the
    /// restored states exist and must be accounted — but `false` is
    /// returned and [`Exhaustion::States`] recorded so the resumed run
    /// immediately reports truncation instead of silently exceeding its
    /// budget. Landing exactly *at* the cap is fine: later reservations
    /// refuse naturally.
    pub fn restore_states(&self, n: usize, cap: usize) -> bool {
        let now = self.states.fetch_add(n, Ordering::Relaxed) + n;
        if now > cap {
            self.note_exhaustion(Exhaustion::States);
            false
        } else {
            true
        }
    }

    /// Charges `n` work units (no cap of its own; feeds [`Self::ticks`]).
    pub fn charge_ticks(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::Relaxed);
    }

    /// Work units charged so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Adds `n` approximate bytes; returns `false` (and records
    /// [`Exhaustion::Memory`]) when the memory budget is exceeded.
    pub fn try_grow_bytes(&self, n: usize) -> bool {
        let now = self.bytes.fetch_add(n, Ordering::Relaxed) + n;
        if self.budget.memory_exhausted(now) {
            self.note_exhaustion(Exhaustion::Memory);
            false
        } else {
            true
        }
    }

    /// Approximate bytes accounted so far.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Polls cancellation and the wall clock. `Err(Stop)` means the
    /// worker should drain out now; deadline trips are recorded.
    pub fn checkpoint(&self) -> Result<(), Stop> {
        if self.cancel.is_cancelled() {
            self.request_stop();
            return Err(Stop::Cancelled);
        }
        if self.budget.deadline_exceeded() {
            self.note_exhaustion(Exhaustion::Deadline);
            return Err(Stop::Exhausted(Exhaustion::Deadline));
        }
        Ok(())
    }

    /// Records a budget wall (first writer wins) and raises the stop
    /// flag.
    pub fn note_exhaustion(&self, e: Exhaustion) {
        self.exhausted
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_or_insert(e);
        self.request_stop();
    }

    /// The first budget wall any worker hit, if any.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        *self.exhausted.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Asks every worker to drain out (budget, cancellation or panic).
    pub fn request_stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    /// Has any stop condition fired?
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    /// Settles this shared meter's tick count into a single-threaded
    /// [`BudgetMeter`] (after the crew has joined).
    pub fn settle_into(&self, meter: &mut BudgetMeter) {
        let _ = meter.charge(self.ticks());
        if let Some(e) = self.exhaustion() {
            meter.note_exhaustion(e);
        }
    }
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// A cooperative cancellation flag, cheaply clonable across threads.
///
/// Engines poll [`is_cancelled`](CancelToken::is_cancelled) at loop
/// granularity and return [`Fx10Error::Cancelled`]; nothing is killed
/// preemptively, so data structures are never torn.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// `Err(Fx10Error::Cancelled)` if cancellation has been requested.
    pub fn check(&self) -> Result<(), Fx10Error> {
        if self.is_cancelled() {
            Err(Fx10Error::Cancelled)
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A scripted fault for the parallel engines, used by the fault-injection
/// harness to prove that panic isolation, budget trips and scheduling
/// perturbations all produce typed results rather than hangs or aborts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic worker `worker` after it has processed `after_states` work
    /// items (the panic is injected *inside* the worker's catch_unwind
    /// region, exactly like an organic bug would be).
    pub panic_worker: Option<PanicFault>,
    /// Force the state budget to read as exhausted once this many states
    /// have been visited, regardless of the real budget.
    pub trip_states_after: Option<usize>,
    /// Make the parallel explorer drain its queue LIFO instead of FIFO —
    /// an adversarial schedule that changes discovery order but must not
    /// change any computed set.
    pub adversarial_schedule: bool,
    /// Wedge worker `worker` after `after_states` processed items: the
    /// worker stops making progress *and stops heartbeating* (as if stuck
    /// in a runaway loop or a hung syscall). Only the watchdog, a budget
    /// trip or cancellation can release it — a crew with a wedged worker
    /// and no watchdog hangs, which is exactly what the watchdog tests
    /// prove does not happen.
    pub wedge_worker: Option<PanicFault>,
    /// Simulate a process kill immediately after the Nth successful
    /// durable checkpoint (1-based): the engine stops as if SIGKILLed,
    /// leaving that checkpoint on disk for a resume test.
    pub kill_at_checkpoint: Option<u64>,
}

/// See [`FaultPlan::panic_worker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicFault {
    /// Which worker panics (index into the crew).
    pub worker: usize,
    /// After how many locally processed items.
    pub after_states: u64,
}

impl FaultPlan {
    /// No injected faults (the production value).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Should `worker`, having processed `processed` items, panic now?
    pub fn should_panic(&self, worker: usize, processed: u64) -> bool {
        self.panic_worker
            .is_some_and(|pf| pf.worker == worker && processed >= pf.after_states)
    }

    /// Should `worker`, having processed `processed` items, wedge now?
    pub fn should_wedge(&self, worker: usize, processed: u64) -> bool {
        self.wedge_worker
            .is_some_and(|wf| wf.worker == worker && processed >= wf.after_states)
    }

    /// The effective state cap after applying a forced trip.
    pub fn effective_max_states(&self, cap: Option<usize>) -> Option<usize> {
        match (self.trip_states_after, cap) {
            (Some(t), Some(c)) => Some(t.min(c)),
            (Some(t), None) => Some(t),
            (None, c) => c,
        }
    }
}

/// Renders a `catch_unwind` payload into a readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_the_documented_table() {
        assert_eq!(
            Fx10Error::Parse {
                line: 3,
                message: "x".into()
            }
            .exit_code(),
            1
        );
        assert_eq!(Fx10Error::Validate("v".into()).exit_code(), 1);
        assert_eq!(
            Fx10Error::BudgetExhausted(Exhaustion::States).exit_code(),
            3
        );
        assert_eq!(Fx10Error::Cancelled.exit_code(), 4);
        assert_eq!(
            Fx10Error::WorkerPanicked {
                worker: 0,
                message: "m".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            Fx10Error::Snapshot {
                message: "m".into()
            }
            .exit_code(),
            2
        );
        assert_eq!(
            Fx10Error::Handshake {
                message: "m".into()
            }
            .exit_code(),
            2
        );
        assert_eq!(
            Fx10Error::WorkerStalled {
                worker: 1,
                stalled_ms: 250
            }
            .exit_code(),
            4
        );
    }

    #[test]
    fn meter_trips_on_iteration_cap() {
        let mut m = BudgetMeter::new(Budget::unlimited().with_max_iters(10), CancelToken::new());
        for _ in 0..10 {
            assert!(m.tick().is_ok());
        }
        assert_eq!(m.tick(), Err(Stop::Exhausted(Exhaustion::SolverIterations)));
        assert_eq!(m.exhaustion(), Some(Exhaustion::SolverIterations));
    }

    #[test]
    fn meter_observes_cancellation() {
        let cancel = CancelToken::new();
        let mut m = BudgetMeter::new(Budget::unlimited(), cancel.clone());
        assert!(m.checkpoint().is_ok());
        cancel.cancel();
        assert_eq!(m.checkpoint(), Err(Stop::Cancelled));
        // tick polls on a stride but must observe it within one stride.
        let mut seen = false;
        for _ in 0..super::POLL_STRIDE + 1 {
            if m.tick() == Err(Stop::Cancelled) {
                seen = true;
                break;
            }
        }
        assert!(seen);
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(b.deadline_exceeded());
        let mut m = BudgetMeter::new(b, CancelToken::new());
        assert_eq!(m.checkpoint(), Err(Stop::Exhausted(Exhaustion::Deadline)));
    }

    #[test]
    fn fault_plan_predicates() {
        let plan = FaultPlan {
            panic_worker: Some(PanicFault {
                worker: 2,
                after_states: 5,
            }),
            trip_states_after: Some(100),
            adversarial_schedule: true,
            ..FaultPlan::none()
        };
        assert!(!plan.should_panic(1, 100));
        assert!(!plan.should_panic(2, 4));
        assert!(plan.should_panic(2, 5));
        assert_eq!(plan.effective_max_states(None), Some(100));
        assert_eq!(plan.effective_max_states(Some(50)), Some(50));
        assert_eq!(plan.effective_max_states(Some(500)), Some(100));
        assert_eq!(FaultPlan::none().effective_max_states(None), None);

        let wedge = FaultPlan {
            wedge_worker: Some(PanicFault {
                worker: 0,
                after_states: 2,
            }),
            ..FaultPlan::none()
        };
        assert!(!wedge.should_wedge(1, 100));
        assert!(!wedge.should_wedge(0, 1));
        assert!(wedge.should_wedge(0, 2));
        assert!(!FaultPlan::none().should_wedge(0, 0));
    }

    #[test]
    fn restore_states_keeps_credits_but_reports_overflow() {
        let m = SharedMeter::new(Budget::unlimited(), CancelToken::new());
        assert!(m.restore_states(10, 10), "landing at the cap is fine");
        assert_eq!(m.states(), 10);
        assert_eq!(m.exhaustion(), None);
        // The cap is now met: a fresh reservation refuses...
        assert!(!m.try_reserve_states(1, 10));
        // ...and a restore past the cap keeps the credits yet reports.
        let m = SharedMeter::new(Budget::unlimited(), CancelToken::new());
        assert!(!m.restore_states(11, 10));
        assert_eq!(m.states(), 11, "restored states stay accounted");
        assert_eq!(m.exhaustion(), Some(Exhaustion::States));
        assert!(m.is_stopped());
    }

    #[test]
    fn shared_meter_reserves_within_one_batch_per_worker() {
        let m = SharedMeter::new(Budget::unlimited(), CancelToken::new());
        let cap = 100usize;
        let batch = 8usize;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| while m.try_reserve_states(batch, cap) {});
            }
        });
        assert!(m.states() >= cap.saturating_sub(4 * batch));
        assert!(m.states() <= cap + 4 * batch, "states = {}", m.states());
        assert_eq!(m.exhaustion(), Some(Exhaustion::States));
        assert!(m.is_stopped());
    }

    #[test]
    fn shared_meter_checkpoint_observes_cancel_and_deadline() {
        let cancel = CancelToken::new();
        let m = SharedMeter::new(Budget::unlimited(), cancel.clone());
        assert!(m.checkpoint().is_ok());
        cancel.cancel();
        assert_eq!(m.checkpoint(), Err(Stop::Cancelled));
        assert!(m.is_stopped());

        let past = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let m = SharedMeter::new(past, CancelToken::new());
        assert_eq!(m.checkpoint(), Err(Stop::Exhausted(Exhaustion::Deadline)));
        assert_eq!(m.exhaustion(), Some(Exhaustion::Deadline));
    }

    #[test]
    fn shared_meter_settles_ticks_and_exhaustion_into_budget_meter() {
        let shared = SharedMeter::new(Budget::unlimited(), CancelToken::new());
        shared.charge_ticks(42);
        shared.note_exhaustion(Exhaustion::Memory);
        let mut meter = BudgetMeter::unlimited();
        shared.settle_into(&mut meter);
        assert_eq!(meter.iters(), 42);
        assert_eq!(meter.exhaustion(), Some(Exhaustion::Memory));
    }

    #[test]
    fn shared_meter_memory_accounting_trips() {
        let m = SharedMeter::new(
            Budget::unlimited().with_max_set_bytes(100),
            CancelToken::new(),
        );
        assert!(m.try_grow_bytes(60));
        assert!(!m.try_grow_bytes(60));
        assert_eq!(m.exhaustion(), Some(Exhaustion::Memory));
        assert_eq!(m.bytes(), 120);
    }

    // -----------------------------------------------------------------
    // Brute-force interleavings of cancel() vs deadline expiry vs
    // checkpoint(): the documented contract is that cancellation beats
    // exhaustion — once a checkpoint has observed the cancel token, no
    // later checkpoint may report Deadline, and a cancel seen together
    // with an expired deadline resolves to Cancelled.
    // -----------------------------------------------------------------

    #[test]
    fn cancel_beats_deadline_when_both_fired() {
        // Deterministic interleaving: both conditions are already true
        // when checkpoint runs. Cancel must win and no exhaustion may be
        // recorded by that call.
        let cancel = CancelToken::new();
        let past = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let m = SharedMeter::new(past, cancel.clone());
        cancel.cancel();
        assert_eq!(m.checkpoint(), Err(Stop::Cancelled));
        assert_eq!(
            m.exhaustion(),
            None,
            "a cancelled checkpoint must not record a deadline trip"
        );
        // Repeated polls stay Cancelled forever.
        for _ in 0..100 {
            assert_eq!(m.checkpoint(), Err(Stop::Cancelled));
        }
        assert_eq!(m.exhaustion(), None);
        // The single-threaded meter agrees.
        let mut bm = BudgetMeter::new(past, cancel.clone());
        assert_eq!(bm.checkpoint(), Err(Stop::Cancelled));
        assert_eq!(bm.exhaustion(), None);
    }

    #[test]
    fn threaded_checkpoints_racing_a_canceller_never_report_deadline_after_cancel() {
        // Many pollers hammer checkpoint() while one thread cancels at an
        // arbitrary point; the deadline expires mid-run too. After the
        // cancel is observed once, every poller must keep seeing
        // Cancelled (never flip back to Deadline), and the union of
        // verdicts may contain Deadline only from polls that ran before
        // the cancel landed.
        for trial in 0..20u32 {
            let cancel = CancelToken::new();
            let deadline = Instant::now() + Duration::from_micros(50 * trial as u64);
            let m = SharedMeter::new(Budget::unlimited().with_deadline(deadline), cancel.clone());
            std::thread::scope(|s| {
                let pollers: Vec<_> = (0..4)
                    .map(|_| {
                        s.spawn(|| {
                            let mut after_cancel_deadline = false;
                            let mut seen_cancel = false;
                            for _ in 0..500 {
                                match m.checkpoint() {
                                    Err(Stop::Cancelled) => seen_cancel = true,
                                    Err(Stop::Exhausted(Exhaustion::Deadline)) => {
                                        if seen_cancel {
                                            after_cancel_deadline = true;
                                        }
                                    }
                                    Err(other) => panic!("unexpected stop {other:?}"),
                                    Ok(()) => {}
                                }
                                std::hint::spin_loop();
                            }
                            after_cancel_deadline
                        })
                    })
                    .collect();
                s.spawn(|| {
                    std::thread::yield_now();
                    cancel.cancel();
                });
                for p in pollers {
                    assert!(
                        !p.join().unwrap(),
                        "trial {trial}: a poll reported Deadline after observing Cancelled"
                    );
                }
            });
            // Terminal state: always Cancelled.
            assert_eq!(m.checkpoint(), Err(Stop::Cancelled));
        }
    }

    #[test]
    fn concurrent_exhaustion_notes_are_first_writer_wins_and_stable() {
        let m = SharedMeter::new(Budget::unlimited(), CancelToken::new());
        std::thread::scope(|s| {
            for i in 0..8 {
                let m = &m;
                s.spawn(move || {
                    let e = if i % 2 == 0 {
                        Exhaustion::States
                    } else {
                        Exhaustion::Memory
                    };
                    for _ in 0..100 {
                        m.note_exhaustion(e);
                    }
                });
            }
        });
        let first = m.exhaustion().expect("someone must have won");
        assert!(matches!(first, Exhaustion::States | Exhaustion::Memory));
        // Later notes never overwrite the first.
        m.note_exhaustion(Exhaustion::Deadline);
        assert_eq!(m.exhaustion(), Some(first));
        assert!(m.is_stopped());
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.check().is_ok());
        b.cancel();
        assert!(a.is_cancelled());
        assert_eq!(a.check(), Err(Fx10Error::Cancelled));
    }
}
