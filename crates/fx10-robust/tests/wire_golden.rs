//! Byte-golden tests for every shard wire-frame kind.
//!
//! Each golden below is the exact on-the-wire encoding (length prefix +
//! FX10SNAP container) of one representative message per [`kind`]. If
//! any of these assertions breaks, the wire format changed: that is a
//! cross-version compatibility break between supervisors and workers,
//! so bump [`ipc::PROTOCOL_VERSION`] and regenerate the goldens as a
//! deliberate part of the same change.

use fx10_robust::ipc::{self, kind, reject, Hello, Progress, WireMsg};
use std::io::Cursor;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

/// One representative message per wire kind, paired with its golden
/// frame bytes. Regenerate a golden by printing `hex(&msg.frame())`.
fn goldens() -> Vec<(&'static str, WireMsg, &'static str)> {
    vec![
        (
            "HELLO",
            WireMsg::new(
                kind::HELLO,
                0,
                ipc::hello_body(&Hello {
                    proto: ipc::PROTOCOL_VERSION,
                    slot: 1,
                    boot_id: 0x0102_0304_0506_0708,
                    fingerprint: 0x1122_3344_5566_7788,
                }),
            ),
            "5400000046583130534e41500100000002000000010000000c000000000000000100000000000000\
             00000000020000001800000000000000030000000100000008070605040302018877665544332211\
             7192d4fb242596af",
        ),
        (
            "INIT",
            WireMsg::new(kind::INIT, 1, b"domain-init".to_vec()),
            "4700000046583130534e41500100000002000000010000000c000000000000000200000001000000\
             00000000020000000b00000000000000646f6d61696e2d696e69748fccbaab1194aaee",
        ),
        (
            "BATCH",
            WireMsg::new(kind::BATCH, 2, ipc::batch_body(3, b"frontier")),
            "4800000046583130534e41500100000002000000010000000c000000000000000300000002000000\
             00000000020000000c000000000000000300000066726f6e7469657259d9c44bc1472eed",
        ),
        (
            "ACK",
            WireMsg::new(kind::ACK, 3, ipc::ack_body(&[2, 5, 9])),
            "5c00000046583130534e41500100000002000000010000000c000000000000000400000003000000\
             000000000200000020000000000000000300000000000000020000000000000005000000000000000900000000000000\
             20793308a7684f30",
        ),
        (
            "PROGRESS",
            WireMsg::new(
                kind::PROGRESS,
                4,
                ipc::progress_body(&Progress {
                    visited: 1000,
                    processed: 42,
                    idle: true,
                }),
            ),
            "4d00000046583130534e41500100000002000000010000000c000000000000000500000004000000\
             0000000002000000110000000000000 0e8030000000000002a0000000000000001041045f9e8951181",
        ),
        (
            "PROBE",
            WireMsg::new(kind::PROBE, 5, ipc::probe_body(7)),
            "4400000046583130534e41500100000002000000010000000c000000000000000600000005000000\
             000000000200000008000000000000000700000000000000 4622f0657b697311",
        ),
        (
            "PROBE_REPLY",
            WireMsg::new(kind::PROBE_REPLY, 6, ipc::probe_reply_body(7, 42, false)),
            "4d00000046583130534e41500100000002000000010000000c000000000000000700000006000000\
             00000000020000001100000000000000 07000000000000002a00000000000000000564cb75b8d65dbf",
        ),
        (
            "FINISH",
            WireMsg::new(kind::FINISH, 7, Vec::new()),
            "3000000046583130534e41500100000001000000010000000c000000000000000800000007000000\
             00000000e481a49503e9abfa",
        ),
        (
            "RESULT",
            WireMsg::new(kind::RESULT, 8, b"domain-result".to_vec()),
            "4900000046583130534e41500100000002000000010000000c000000000000000900000008000000\
             00000000020000000d00000000000000646f6d61696e2d726573756c74b4374577e2770379",
        ),
        (
            "ADOPT",
            WireMsg::new(kind::ADOPT, 9, ipc::adopt_body(&[2, 5], Some(b"SNAP"))),
            "5800000046583130534e41500100000002000000010000000c000000000000000a00000009000000\
             00000000020000001c00000000000000020000000000000002000000050000000400000000000000\
             534e4150103c1fe56cd82f78",
        ),
        (
            "CHALLENGE",
            WireMsg::new(
                kind::CHALLENGE,
                0,
                ipc::challenge_body(
                    ipc::PROTOCOL_VERSION,
                    0xA5A5_5A5A_A5A5_5A5A,
                    0x1122_3344_5566_7788,
                ),
            ),
            "5000000046583130534e41500100000002000000010000000c000000000000000b00000000000000\
             00000000020000001400000000000000030000005a5aa5a55a5aa5a58877665544332211\
             52e53b4a600885c1",
        ),
        (
            "AUTH",
            WireMsg::new(kind::AUTH, 0, ipc::auth_body(0xDEAD_BEEF_CAFE_F00D)),
            "4400000046583130534e41500100000002000000010000000c000000000000000c00000000000000\
             000000000200000008000000000000000df0fecaefbeadde b1780684b8e06ee5",
        ),
        (
            "REJECT",
            WireMsg::new(
                kind::REJECT,
                0,
                ipc::reject_body(reject::VERSION, "protocol version skew"),
            ),
            "5d00000046583130534e41500100000002000000010000000c000000000000000d00000000000000\
             000000000200000021000000000000000100000015000000000000007072 6f746f636f6c2076657273696f6e20736b6577\
             0cf896927b3b62ab",
        ),
        (
            "WELCOME",
            WireMsg::new(kind::WELCOME, 0, Vec::new()),
            "3000000046583130534e41500100000001000000010000000c000000000000000e00000000000000\
             0000000025a951403b2938c6",
        ),
        (
            "RESULT_PART",
            WireMsg::new(
                kind::RESULT_PART,
                10,
                ipc::result_part_body(0, 2, b"result-bytes"),
            ),
            "5000000046583130534e41500100000002000000010000000c000000000000000f0000000a000000\
             00000000020000001400000000000000000000000200000 0726573756c742d6279746573\
             4ace7dc32fcbd7fc",
        ),
    ]
}

fn clean(golden: &str) -> String {
    golden.chars().filter(|c| !c.is_whitespace()).collect()
}

#[test]
fn every_frame_kind_encodes_to_its_golden_bytes() {
    for (name, msg, golden) in goldens() {
        assert_eq!(
            hex(&msg.frame()),
            clean(golden),
            "{name}: wire encoding changed — bump PROTOCOL_VERSION and regenerate"
        );
    }
}

#[test]
fn every_golden_decodes_back_to_its_message() {
    for (name, msg, golden) in goldens() {
        let bytes = unhex(&clean(golden));
        let mut r = Cursor::new(bytes);
        let got = ipc::read_frame(&mut r, ipc::MAX_FRAME_LEN)
            .unwrap_or_else(|e| panic!("{name}: golden failed to decode: {e}"))
            .unwrap_or_else(|| panic!("{name}: golden read as EOF"));
        assert_eq!(got, msg, "{name}: decoded message drifted");
        assert!(
            ipc::read_frame(&mut r, ipc::MAX_FRAME_LEN).unwrap().is_none(),
            "{name}: trailing bytes after the golden frame"
        );
    }
}

#[test]
fn golden_bodies_parse_through_their_codecs() {
    // Beyond frame-level identity, the typed body parsers must read the
    // golden payloads back to the exact values they were built from.
    let by_name: std::collections::BTreeMap<_, _> = goldens()
        .into_iter()
        .map(|(name, msg, _)| (name, msg))
        .collect();

    let hello = ipc::parse_hello_body(&by_name["HELLO"].body).unwrap();
    assert_eq!(
        hello,
        Hello {
            proto: ipc::PROTOCOL_VERSION,
            slot: 1,
            boot_id: 0x0102_0304_0506_0708,
            fingerprint: 0x1122_3344_5566_7788,
        }
    );
    assert_eq!(ipc::batch_dest(&by_name["BATCH"].body).unwrap(), 3);
    assert_eq!(
        ipc::batch_payload(&by_name["BATCH"].body).unwrap(),
        b"frontier"
    );
    assert_eq!(
        ipc::parse_ack_body(&by_name["ACK"].body).unwrap(),
        vec![2, 5, 9]
    );
    assert_eq!(
        ipc::parse_progress_body(&by_name["PROGRESS"].body).unwrap(),
        Progress {
            visited: 1000,
            processed: 42,
            idle: true,
        }
    );
    assert_eq!(ipc::parse_probe_body(&by_name["PROBE"].body).unwrap(), 7);
    assert_eq!(
        ipc::parse_probe_reply_body(&by_name["PROBE_REPLY"].body).unwrap(),
        (7, 42, false)
    );
    assert_eq!(
        ipc::parse_adopt_body(&by_name["ADOPT"].body).unwrap(),
        (vec![2, 5], Some(b"SNAP".to_vec()))
    );
    let (proto, nonce, fp) = ipc::parse_challenge_body(&by_name["CHALLENGE"].body).unwrap();
    assert_eq!(
        (proto, nonce, fp),
        (ipc::PROTOCOL_VERSION, 0xA5A5_5A5A_A5A5_5A5A, 0x1122_3344_5566_7788)
    );
    assert_eq!(
        ipc::parse_auth_body(&by_name["AUTH"].body).unwrap(),
        0xDEAD_BEEF_CAFE_F00D
    );
    assert_eq!(
        ipc::parse_reject_body(&by_name["REJECT"].body).unwrap(),
        (reject::VERSION, "protocol version skew".to_string())
    );
    assert_eq!(
        ipc::parse_result_part_body(&by_name["RESULT_PART"].body).unwrap(),
        (0, 2, b"result-bytes".as_slice())
    );
}
