//! Frame-corruption fuzz tests for the shard wire protocol.
//!
//! The socket transport trusts nothing about the bytes it reads: a
//! corrupted length prefix, a bit-flipped container, a truncated frame
//! or a replayed handshake message must each surface as a typed error —
//! never a panic, an OOM-sized allocation, or a silently mis-decoded
//! frame. These properties drive random corruption through
//! [`ipc::read_frame`] and [`conn::server_handshake`] to pin that down.

use fx10_robust::conn::{self, keyed_mac, HandshakeConfig};
use fx10_robust::ipc::{self, kind, reject, Hello, WireMsg, MAX_FRAME_LEN};
use proptest::prelude::*;
use std::io::{self, Cursor, Read, Write};

// -- helpers -----------------------------------------------------------------

/// An in-memory peer for driving one side of a handshake: reads come
/// from a pre-scripted byte stream, writes are captured for inspection.
struct ScriptedIo {
    input: Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl ScriptedIo {
    fn new(input: Vec<u8>) -> Self {
        ScriptedIo {
            input: Cursor::new(input),
            output: Vec::new(),
        }
    }
}

impl Read for ScriptedIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for ScriptedIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Decodes every frame the supervisor wrote during a handshake.
fn frames(bytes: &[u8]) -> Vec<WireMsg> {
    let mut r = Cursor::new(bytes.to_vec());
    let mut out = Vec::new();
    while let Some(m) = ipc::read_frame(&mut r, MAX_FRAME_LEN).expect("supervisor output decodes") {
        out.push(m);
    }
    out
}

fn test_config() -> HandshakeConfig {
    HandshakeConfig {
        secret: b"hunter2".to_vec(),
        fingerprint: 0xFEED_F00D,
        shards: 4,
        max_frame: MAX_FRAME_LEN,
    }
}

fn test_hello() -> Hello {
    Hello {
        proto: ipc::PROTOCOL_VERSION,
        slot: 1,
        boot_id: 7,
        fingerprint: 0,
    }
}

/// The bytes both handshake sides MAC (mirrors the private
/// `conn::mac_message` layout; the replay test below fails loudly if
/// the two ever drift, because the legit handshake stops verifying).
fn mac_message(nonce: u64, h: &Hello) -> Vec<u8> {
    let mut m = Vec::with_capacity(32);
    m.extend_from_slice(&nonce.to_le_bytes());
    m.extend_from_slice(&h.proto.to_le_bytes());
    m.extend_from_slice(&h.slot.to_le_bytes());
    m.extend_from_slice(&h.boot_id.to_le_bytes());
    m.extend_from_slice(&h.fingerprint.to_le_bytes());
    m
}

fn hello_frame(h: &Hello) -> Vec<u8> {
    WireMsg::new(kind::HELLO, 0, ipc::hello_body(h)).frame()
}

fn auth_frame(mac: u64) -> Vec<u8> {
    WireMsg::new(kind::AUTH, 0, ipc::auth_body(mac)).frame()
}

/// Runs `server_handshake` against a scripted worker and returns the
/// result plus the frames the supervisor wrote back.
fn drive_server(
    input: Vec<u8>,
    nonce: u64,
) -> (Result<conn::PeerInfo, fx10_robust::Fx10Error>, Vec<WireMsg>) {
    let cfg = test_config();
    let mut io = ScriptedIo::new(input);
    let res = conn::server_handshake(&mut io, &cfg, nonce);
    let written = frames(&io.output);
    (res, written)
}

fn msg_strategy() -> impl Strategy<Value = WireMsg> {
    (
        1u32..16,
        0u64..u64::MAX,
        proptest::collection::vec(0u8..255, 0..48),
    )
        .prop_map(|(kind_, seq, body)| WireMsg::new(kind_, seq, body))
}

// -- framing-layer corruption ------------------------------------------------

proptest! {
    /// Flipping any single bit of a frame — length prefix or container —
    /// must yield a typed error, never a panic or a silently different
    /// message (the container's trailing FNV-1a-64 checksum catches
    /// container flips; the length validation catches prefix flips).
    #[test]
    fn single_bit_flip_never_decodes(msg in msg_strategy(), pos in 0usize..4096) {
        let mut frame = msg.frame();
        let bit = pos % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        let mut r = Cursor::new(frame);
        let res = ipc::read_frame(&mut r, MAX_FRAME_LEN);
        prop_assert!(res.is_err(), "corrupted frame decoded as {:?}", res);
    }

    /// A frame cut anywhere after its first byte is a truncation error —
    /// a torn socket write never reads as a clean EOF or a short frame.
    #[test]
    fn truncation_is_a_typed_error(msg in msg_strategy(), cut in 1usize..4096) {
        let frame = msg.frame();
        let cut = 1 + cut % (frame.len() - 1);
        let mut r = Cursor::new(frame[..cut].to_vec());
        let res = ipc::read_frame(&mut r, MAX_FRAME_LEN);
        prop_assert!(res.is_err(), "truncated at {cut}: decoded as {:?}", res);
        prop_assert_eq!(res.unwrap_err().exit_code(), 2);
    }

    /// A length prefix claiming more bytes than the stream holds fails
    /// as truncation; one beyond the cap fails before any allocation.
    #[test]
    fn lying_length_prefix_is_rejected(msg in msg_strategy(), extra in 1u32..100_000) {
        let container = msg.encode();
        let mut lie = Vec::new();
        lie.extend_from_slice(&(container.len() as u32 + extra).to_le_bytes());
        lie.extend_from_slice(&container);
        let mut r = Cursor::new(lie);
        prop_assert!(ipc::read_frame(&mut r, MAX_FRAME_LEN).is_err());

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        oversized.extend_from_slice(&container);
        let mut r = Cursor::new(oversized);
        let err = ipc::read_frame(&mut r, 1 << 20).unwrap_err();
        prop_assert!(err.to_string().contains("cap"), "{err}");
    }

    /// Arbitrary garbage fed to the supervisor's handshake is a typed
    /// handshake error — never a panic, never an authenticated peer.
    #[test]
    fn garbage_handshake_input_is_rejected(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        let (res, _) = drive_server(bytes, 0x5EED);
        prop_assert!(res.is_err(), "garbage authenticated as {:?}", res);
    }

    /// A single bit flip anywhere in an otherwise valid HELLO must not
    /// authenticate (the flip lands in the checksum-protected container
    /// or the length prefix, so the handshake errors out).
    #[test]
    fn bit_flipped_hello_never_authenticates(pos in 0usize..4096) {
        let mut input = hello_frame(&test_hello());
        let bit = pos % (input.len() * 8);
        input[bit / 8] ^= 1 << (bit % 8);
        let (res, _) = drive_server(input, 0x5EED);
        prop_assert!(res.is_err(), "flipped HELLO authenticated as {:?}", res);
    }
}

// -- handshake replay and vetting -------------------------------------------

#[test]
fn legit_handshake_succeeds_and_replayed_auth_fails_on_a_fresh_nonce() {
    let cfg = test_config();
    let hello = test_hello();
    let nonce1 = 0x1111_2222_3333_4444;

    // A legitimate exchange: the worker answers nonce1 with the keyed
    // MAC over its identity. This is the transcript an eavesdropper on
    // the wire could capture.
    let auth1 = auth_frame(keyed_mac(&cfg.secret, &mac_message(nonce1, &hello)));
    let mut transcript = hello_frame(&hello);
    transcript.extend_from_slice(&auth1);

    let (res, written) = drive_server(transcript.clone(), nonce1);
    let peer = res.expect("legit handshake verifies");
    assert_eq!(peer.slot, 1);
    assert_eq!(peer.boot_id, 7);
    assert!(!peer.resumed);
    assert_eq!(
        written.iter().map(|m| m.kind).collect::<Vec<_>>(),
        vec![kind::CHALLENGE, kind::WELCOME]
    );

    // Replaying the captured transcript byte-for-byte against a fresh
    // nonce must fail: the MAC is bound to the challenge nonce, and the
    // supervisor never issues the same nonce twice.
    let nonce2 = 0x5555_6666_7777_8888;
    let (res, written) = drive_server(transcript, nonce2);
    let err = res.expect_err("replayed AUTH must not verify");
    assert!(err.to_string().contains("MAC"), "{err}");
    let last = written.last().expect("a REJECT was written");
    assert_eq!(last.kind, kind::REJECT);
    let (code, msg) = ipc::parse_reject_body(&last.body).unwrap();
    assert_eq!(code, reject::AUTH, "reject reason: {msg}");
}

#[test]
fn each_vetting_failure_gets_its_own_reject_code() {
    let nonce = 0x5EED;

    // Protocol-version skew.
    let skewed = Hello {
        proto: 999,
        ..test_hello()
    };
    let (res, written) = drive_server(hello_frame(&skewed), nonce);
    assert!(res.is_err());
    let (code, msg) = ipc::parse_reject_body(&written.last().unwrap().body).unwrap();
    assert_eq!(code, reject::VERSION, "{msg}");
    assert!(msg.contains("version skew"), "{msg}");

    // A slot outside the fleet.
    let foreign_slot = Hello {
        slot: 99,
        ..test_hello()
    };
    let (res, written) = drive_server(hello_frame(&foreign_slot), nonce);
    assert!(res.is_err());
    let (code, msg) = ipc::parse_reject_body(&written.last().unwrap().body).unwrap();
    assert_eq!(code, reject::SLOT, "{msg}");

    // A worker carrying a different run's program fingerprint.
    let stale = Hello {
        fingerprint: 0xDEAD_BEEF,
        ..test_hello()
    };
    let (res, written) = drive_server(hello_frame(&stale), nonce);
    assert!(res.is_err());
    let (code, msg) = ipc::parse_reject_body(&written.last().unwrap().body).unwrap();
    assert_eq!(code, reject::FINGERPRINT, "{msg}");

    // A first frame that is not HELLO at all.
    let barge_in = WireMsg::new(kind::BATCH, 0, ipc::batch_body(0, b"x")).frame();
    let (res, written) = drive_server(barge_in, nonce);
    assert!(res.is_err());
    let (code, msg) = ipc::parse_reject_body(&written.last().unwrap().body).unwrap();
    assert_eq!(code, reject::PROTOCOL, "{msg}");

    // The wrong shared secret.
    let hello = test_hello();
    let mut wrong_secret = hello_frame(&hello);
    wrong_secret.extend_from_slice(&auth_frame(keyed_mac(
        b"not-the-secret",
        &mac_message(nonce, &hello),
    )));
    let (res, written) = drive_server(wrong_secret, nonce);
    assert!(res.is_err());
    let (code, msg) = ipc::parse_reject_body(&written.last().unwrap().body).unwrap();
    assert_eq!(code, reject::AUTH, "{msg}");
}

#[test]
fn truncated_auth_is_a_handshake_error_not_a_panic() {
    let cfg = test_config();
    let hello = test_hello();
    let nonce = 0x5EED;
    let auth = auth_frame(keyed_mac(&cfg.secret, &mac_message(nonce, &hello)));
    for cut in 1..auth.len() {
        let mut input = hello_frame(&hello);
        input.extend_from_slice(&auth[..cut]);
        let (res, _) = drive_server(input, nonce);
        assert!(res.is_err(), "AUTH cut at {cut} authenticated");
    }
}

#[test]
fn all_handshake_failures_exit_with_the_usage_code() {
    // Every rejection path maps to exit code 2 — the CLI contract for
    // "the run could not even be set up correctly".
    for input in [
        Vec::new(),
        b"not a frame at all".to_vec(),
        hello_frame(&Hello {
            proto: 999,
            ..test_hello()
        }),
    ] {
        let (res, _) = drive_server(input, 1);
        assert_eq!(res.unwrap_err().exit_code(), 2);
    }
}
