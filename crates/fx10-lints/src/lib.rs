//! MHP-backed lint suite for FX10 programs.
//!
//! The engine runs the paper's static may-happen-in-parallel analysis
//! (context-sensitive and the §7 context-insensitive baseline) and turns
//! it into actionable diagnostics:
//!
//! | code | what it proves |
//! |------|----------------|
//! | `race-write-write`, `race-read-write` | conflicting parallel accesses, classified by kind and ranked by confidence; `confirmed` findings carry a replayable schedule from the bounded explorer |
//! | `dead-method` | unreachable from `main` through the call graph |
//! | `redundant-finish` | the body spawns no async, transitively |
//! | `inert-async` | no executable label of the body has any MHP partner |
//! | `stuck-loop` | guard cell non-zero on entry and never written |
//! | `precision-delta` | MHP pair only the context-insensitive analysis reports |
//!
//! The race pass is where static and dynamic meet: every statically
//! reported race gets a bounded witness search over the raw (uncanonized)
//! state space. A found witness upgrades the finding to `confirmed` and
//! attaches the schedule; a fully-explored space without co-occurrence
//! *refutes* the finding (it is dropped and counted); budget exhaustion
//! keeps the static tier and tags the finding `may-be-spurious`.
//!
//! Reports render as human text, machine JSON, or SARIF 2.1.0 — all
//! deterministic, so golden files can assert on the bytes.

pub mod audit;
pub mod diag;
pub mod engine;
pub mod races;
pub mod render;
pub mod structure;

pub use diag::{
    rule, selector_is_known, selector_matches, Confidence, Diagnostic, LintReport, Rule, Severity,
    RULES,
};
pub use engine::{lint, LintOptions};
pub use render::{render_json, render_sarif, render_text};
