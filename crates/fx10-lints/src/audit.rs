//! The CS-vs-CI precision audit.
//!
//! CS ⊆ CI: context sensitivity only removes MHP pairs. Every pair the
//! context-insensitive analysis reports that the context-sensitive one
//! proves infeasible is a *precision delta* — informational evidence of
//! what the paper's context-sensitive treatment of method calls buys on
//! this program. Deltas are notes, never defects.

use crate::diag::{Confidence, Diagnostic, Severity};
use fx10_core::analysis::Analysis;
use fx10_syntax::Program;

/// `precision-delta`: one note per label pair in CI ∖ CS, in label order.
///
/// The caller gates this on both analyses being complete: a budget-cut
/// relation is partial, so its complement is meaningless.
pub fn precision_audit(p: &Program, cs: &Analysis, ci: &Analysis) -> Vec<Diagnostic> {
    let cs_pairs = cs.mhp();
    let mut out = Vec::new();
    for (a, b) in ci.mhp().iter_pairs() {
        if a > b || cs_pairs.contains(a, b) {
            continue;
        }
        out.push(Diagnostic {
            code: "precision-delta",
            severity: Severity::Note,
            line: p.labels().line(a),
            primary: p.labels().display(a),
            message: format!(
                "({}, {}) is MHP under the context-insensitive analysis only; \
                 context sensitivity proves it infeasible",
                p.labels().display(a),
                p.labels().display(b),
            ),
            pair: Some((a, b)),
            confidence: Confidence::Confirmed,
            may_be_spurious: false,
            witness: None,
            guard_fact: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_core::analysis::{analyze, analyze_ci};

    #[test]
    fn example22_has_deltas_and_flat_programs_do_not() {
        // Example 2.2 is the paper's motivating precision case: the
        // context-insensitive analysis smears the two call sites of the
        // same method together.
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../programs/example22.fx10"
        ))
        .unwrap();
        let p = Program::parse(&src).unwrap();
        let d = precision_audit(&p, &analyze(&p), &analyze_ci(&p));
        assert!(!d.is_empty());
        assert!(d
            .iter()
            .all(|d| d.code == "precision-delta" && d.severity == Severity::Note));

        // A call-free program: both analyses agree exactly.
        let q = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        assert!(precision_audit(&q, &analyze(&q), &analyze_ci(&q)).is_empty());
    }
}
