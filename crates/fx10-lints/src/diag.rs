//! The diagnostic model: stable rule codes, severities, confidence tiers.
//!
//! Every finding the lint engine emits carries a rule code from the fixed
//! registry below, a severity, a 1-based source line (0 = the program was
//! not built from source text), a human message, and the rule's fix hint.
//! Race findings additionally carry a confidence tier and, when the
//! bounded witness search succeeded, a concrete schedule that replays to
//! a state where both racing redexes are live.

use fx10_syntax::Label;
use std::fmt;

/// Diagnostic severity, ordered from worst to mildest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A proven defect (e.g. provable divergence).
    Error,
    /// A likely defect or code smell.
    Warning,
    /// Informational (e.g. precision-audit deltas).
    Note,
}

impl Severity {
    /// The SARIF `level` string for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// How much evidence backs a finding, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Proven: a dynamic witness schedule exhibits the finding, or the
    /// argument is exact (call-graph reachability, guard-cell dataflow).
    Confirmed,
    /// Reported by the context-sensitive analysis; dynamically
    /// unconfirmed (the witness budget may have run out first).
    CsStatic,
    /// Reported only by the context-insensitive over-approximation —
    /// context sensitivity already removes it, so this tier is the most
    /// likely to be a false positive.
    CiOnly,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Confidence::Confirmed => "confirmed",
            Confidence::CsStatic => "cs-static",
            Confidence::CiOnly => "ci-only",
        })
    }
}

/// A lint rule: stable code, default severity, summary, fix hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// The stable rule code (`race-write-write`, `dead-method`, ...).
    pub code: &'static str,
    /// Default severity of findings.
    pub severity: Severity,
    /// One-line description for rule listings (SARIF `shortDescription`).
    pub summary: &'static str,
    /// The fix hint attached to every finding (SARIF `help`).
    pub help: &'static str,
}

/// The full rule registry, in stable (reporting) order.
pub const RULES: &[Rule] = &[
    Rule {
        code: "race-write-write",
        severity: Severity::Warning,
        summary: "two parallel writes to the same array cell",
        help: "order the writers with `finish { ... }`, or write disjoint cells",
    },
    Rule {
        code: "race-read-write",
        severity: Severity::Warning,
        summary: "a read and a parallel write of the same array cell",
        help: "wrap the writer in `finish { ... }` before the read, or read a private cell",
    },
    Rule {
        code: "dead-method",
        severity: Severity::Warning,
        summary: "method unreachable from main via the call graph",
        help: "delete the method, or call it from a reachable one",
    },
    Rule {
        code: "redundant-finish",
        severity: Severity::Warning,
        summary: "finish whose body spawns no async, transitively",
        help: "remove the `finish { }` wrapper; it awaits nothing",
    },
    Rule {
        code: "inert-async",
        severity: Severity::Warning,
        summary: "async whose body never overlaps any other computation",
        help: "inline the body; the `async { }` adds no parallelism",
    },
    Rule {
        code: "stuck-loop",
        severity: Severity::Error,
        summary: "loop guard cell is abstractly non-zero forever: the loop cannot exit",
        help: "write the guard cell to 0 somewhere the loop can observe, or fix the initial input",
    },
    Rule {
        code: "precision-delta",
        severity: Severity::Note,
        summary: "MHP pair reported only by the context-insensitive analysis",
        help: "informational: context sensitivity proves this pair infeasible",
    },
    Rule {
        code: "oob-write",
        severity: Severity::Error,
        summary: "write to an index outside the declared array bounds",
        help: "grow the `array[N];` declaration, or write inside `0..N`",
    },
    Rule {
        code: "oob-read",
        severity: Severity::Error,
        summary: "read of an index outside the declared array bounds",
        help: "grow the `array[N];` declaration, or read inside `0..N`",
    },
    Rule {
        code: "infeasible-race",
        severity: Severity::Note,
        summary: "statically-reported race whose labels the value analysis proves unreachable",
        help: "informational: abstract interpretation proves this pair cannot co-execute",
    },
];

/// Looks up a rule by its stable code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// True when `selector` matches `code`: exact, the group prefix
/// (`race` matches `race-write-write`), or the wildcard `all`.
pub fn selector_matches(selector: &str, code: &str) -> bool {
    selector == "all"
        || selector == code
        || (code.len() > selector.len()
            && code.starts_with(selector)
            && code.as_bytes()[selector.len()] == b'-')
}

/// True when `selector` matches at least one registered rule (used to
/// reject `--deny tyop` as a usage error instead of silently matching
/// nothing).
pub fn selector_is_known(selector: &str) -> bool {
    selector == "all" || RULES.iter().any(|r| selector_matches(selector, r.code))
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (always one of [`RULES`]).
    pub code: &'static str,
    /// Severity (the rule's default).
    pub severity: Severity,
    /// 1-based source line of the primary location (0 = unknown).
    pub line: u32,
    /// Display name of the primary label or method.
    pub primary: String,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// The label pair a race or precision-delta finding is about
    /// (`None` for single-location structural findings).
    pub pair: Option<(Label, Label)>,
    /// Confidence tier.
    pub confidence: Confidence,
    /// Set when the witness budget ran out before the finding could be
    /// dynamically confirmed or refuted.
    pub may_be_spurious: bool,
    /// A replayable successor-choice schedule exhibiting the finding
    /// (race findings at [`Confidence::Confirmed`] only).
    pub witness: Option<Vec<u32>>,
    /// An abstract-interpretation fact backing or contextualizing the
    /// finding: why a pruned pair is infeasible, or — for a race the
    /// value analysis could *not* rule out — the guard facts that kept it
    /// feasible.
    pub guard_fact: Option<String>,
}

impl Diagnostic {
    /// The rule's fix hint.
    pub fn help(&self) -> &'static str {
        rule(self.code).map(|r| r.help).unwrap_or("")
    }
}

/// The result of a lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, sorted by (line, code, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Static race reports the witness search *refuted* — the bounded
    /// exploration covered the entire raw state space without the pair
    /// ever co-occurring, so they were dropped as proven false positives.
    pub refuted_races: usize,
    /// Set when the static analysis itself ran out of budget: the
    /// findings are computed from a partial MHP relation.
    pub exhausted: Option<fx10_robust::Exhaustion>,
}

impl LintReport {
    /// Findings matching any of `selectors` (after `allow` filtering the
    /// caller may have applied).
    pub fn matching<'a>(&'a self, selectors: &'a [String]) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| selectors.iter().any(|s| selector_matches(s, d.code)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert_eq!(rule(r.code), Some(r));
            for other in &RULES[i + 1..] {
                assert_ne!(r.code, other.code);
            }
        }
        assert_eq!(rule("nope"), None);
    }

    #[test]
    fn selectors_match_groups_and_exact_codes() {
        assert!(selector_matches("race", "race-write-write"));
        assert!(selector_matches("race", "race-read-write"));
        assert!(selector_matches("race-write-write", "race-write-write"));
        assert!(selector_matches("all", "stuck-loop"));
        // Any dash-boundary prefix is a group selector.
        assert!(selector_matches("race-write", "race-write-write"));
        assert!(!selector_matches("race-w", "race-write-write"));
        assert!(!selector_matches("race-write-write", "race"));
        assert!(selector_is_known("race"));
        assert!(selector_is_known("precision-delta"));
        assert!(!selector_is_known("tyop"));
    }

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error < Severity::Warning);
        assert_eq!(Severity::Warning.sarif_level(), "warning");
        assert_eq!(Confidence::Confirmed.to_string(), "confirmed");
        assert!(Confidence::Confirmed < Confidence::CiOnly);
    }
}
