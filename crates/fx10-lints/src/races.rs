//! The upgraded race pass: classification, confidence tiers, witnesses.
//!
//! Detection itself is `fx10_core::race::detect_races_with` — the same
//! pair logic `fx10 race` uses — run twice: once against the
//! context-sensitive MHP and once against the context-insensitive one.
//! CS ⊆ CI (Theorem: context sensitivity only removes pairs), so the CI
//! run is the universe of findings and membership in the CS run decides
//! the static tier. Each surviving finding then gets a bounded dynamic
//! witness search:
//!
//! * **found** — the finding is `confirmed`, with the schedule attached;
//! * **refuted** — the raw state space was exhausted without the pair
//!   co-occurring: the finding is dropped (and counted);
//! * **budget out** — the finding keeps its static tier, tagged
//!   `may-be-spurious`.

use crate::diag::{Confidence, Diagnostic, Severity};
use fx10_core::analysis::Analysis;
use fx10_core::race::{accesses, detect_races_with, Race};
use fx10_robust::{Budget, CancelToken, Fx10Error};
use fx10_semantics::witness::{find_witness, WitnessSearch};
use fx10_syntax::Program;

/// Outcome of the race pass.
pub struct RacePassOutput {
    /// One diagnostic per surviving (pair, cell) group.
    pub diagnostics: Vec<Diagnostic>,
    /// Statically-reported races the witness search refuted.
    pub refuted: usize,
}

/// Runs the race pass. `witness_states` bounds each per-finding witness
/// search (0 disables the search entirely: every finding keeps its
/// static tier with the may-be-spurious tag).
pub fn race_pass(
    p: &Program,
    cs: &Analysis,
    ci: &Analysis,
    input: &[i64],
    witness_states: usize,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<RacePassOutput, Fx10Error> {
    let acc = accesses(p);
    let cs_races = detect_races_with(&acc, |x, y| cs.may_happen_in_parallel(x, y));
    let ci_races = detect_races_with(&acc, |x, y| ci.may_happen_in_parallel(x, y));

    let mut diagnostics = Vec::new();
    let mut refuted = 0usize;
    for race in &ci_races {
        let key = (race.first.label, race.second.label, race.first.index);
        let tier = if cs_races
            .iter()
            .any(|r| (r.first.label, r.second.label, r.first.index) == key)
        {
            Confidence::CsStatic
        } else {
            Confidence::CiOnly
        };
        let (confidence, may_be_spurious, witness) = if witness_states == 0 {
            (tier, true, None)
        } else {
            match find_witness(
                p,
                input,
                (race.first.label, race.second.label),
                witness_states,
                budget,
                cancel,
            )? {
                WitnessSearch::Found(w) => (Confidence::Confirmed, false, Some(w.schedule)),
                WitnessSearch::Refuted { .. } => {
                    refuted += 1;
                    continue;
                }
                WitnessSearch::Exhausted { .. } => (tier, true, None),
            }
        };
        diagnostics.push(describe(p, race, confidence, may_be_spurious, witness));
    }
    Ok(RacePassOutput {
        diagnostics,
        refuted,
    })
}

fn describe(
    p: &Program,
    race: &Race,
    confidence: Confidence,
    may_be_spurious: bool,
    witness: Option<Vec<u32>>,
) -> Diagnostic {
    let (code, what) = if race.is_write_write() {
        ("race-write-write", "parallel writes to")
    } else {
        ("race-read-write", "a read races a parallel write of")
    };
    let first = p.labels().display(race.first.label);
    let second = p.labels().display(race.second.label);
    let message = if race.first.label == race.second.label {
        format!(
            "{what} a[{}]: two overlapping instances of {first}",
            race.first.index
        )
    } else {
        format!(
            "{what} a[{}]: {first} (line {}) and {second} (line {})",
            race.first.index,
            p.labels().line(race.first.label),
            p.labels().line(race.second.label),
        )
    };
    Diagnostic {
        code,
        severity: Severity::Warning,
        line: p.labels().line(race.first.label),
        primary: first,
        message,
        pair: Some((race.first.label, race.second.label)),
        confidence,
        may_be_spurious,
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_core::analysis::{analyze, analyze_ci};

    fn run(src: &str, witness_states: usize) -> RacePassOutput {
        let p = Program::parse(src).unwrap();
        race_pass(
            &p,
            &analyze(&p),
            &analyze_ci(&p),
            &[],
            witness_states,
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap()
    }

    #[test]
    fn racy_write_write_is_confirmed_with_witness() {
        let out = run(
            "def main() { W1: async { a[0] = 1; } W2: a[0] = 2; }",
            10_000,
        );
        assert_eq!(out.refuted, 0);
        assert_eq!(out.diagnostics.len(), 1);
        let d = &out.diagnostics[0];
        assert_eq!(d.code, "race-write-write");
        assert_eq!(d.confidence, Confidence::Confirmed);
        assert!(d.witness.is_some());
        assert!(!d.may_be_spurious);
    }

    #[test]
    fn zero_witness_budget_tags_may_be_spurious() {
        let out = run("def main() { async { a[0] = 1; } a[0] = 2; }", 0);
        assert_eq!(out.diagnostics.len(), 1);
        let d = &out.diagnostics[0];
        assert_eq!(d.confidence, Confidence::CsStatic);
        assert!(d.may_be_spurious);
        assert!(d.witness.is_none());
    }

    #[test]
    fn read_write_is_classified() {
        let out = run(
            "def main() { async { a[0] = 1; } a[1] = a[0] + 1; }",
            10_000,
        );
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].code, "race-read-write");
    }

    #[test]
    fn clean_program_has_no_findings() {
        let out = run(
            "def main() { finish { async { a[0] = 1; } } a[0] = 2; }",
            10_000,
        );
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.refuted, 0);
    }
}
