//! The upgraded race pass: classification, confidence tiers, witnesses.
//!
//! Detection itself is `fx10_core::race::detect_races_with` — the same
//! pair logic `fx10 race` uses — run twice: once against the
//! context-sensitive MHP and once against the context-insensitive one.
//! CS ⊆ CI (Theorem: context sensitivity only removes pairs), so the CI
//! run is the universe of findings and membership in the CS run decides
//! the static tier. Each surviving finding then gets a bounded dynamic
//! witness search:
//!
//! * **found** — the finding is `confirmed`, with the schedule attached;
//! * **refuted** — the raw state space was exhausted without the pair
//!   co-occurring: the finding is dropped (and counted);
//! * **budget out** — the finding keeps its static tier, tagged
//!   `may-be-spurious`.
//!
//! When a *complete* feasibility oracle is available, it runs first:
//! pairs whose labels the value analysis proves can never co-execute are
//! downgraded to `infeasible-race` notes (skipping the witness search —
//! the abstract proof is stronger than a bounded refutation), and every
//! finding that survives with the may-be-spurious tag gets a
//! `guard_fact` hint quoting the abstract values that kept it feasible.

use crate::diag::{Confidence, Diagnostic, Severity};
use fx10_absint::FeasibilityOracle;
use fx10_core::analysis::Analysis;
use fx10_core::race::{accesses, detect_races_with, Race};
use fx10_robust::{Budget, CancelToken, Fx10Error};
use fx10_semantics::witness::{find_witness, WitnessSearch};
use fx10_syntax::Program;

/// Outcome of the race pass.
pub struct RacePassOutput {
    /// One diagnostic per surviving (pair, cell) group.
    pub diagnostics: Vec<Diagnostic>,
    /// Statically-reported races the witness search refuted.
    pub refuted: usize,
}

/// Runs the race pass. `witness_states` bounds each per-finding witness
/// search (0 disables the search entirely: every finding keeps its
/// static tier with the may-be-spurious tag). `oracle`, when present and
/// complete, downgrades abstractly-infeasible pairs and annotates
/// surviving unconfirmed findings with guard facts.
#[allow(clippy::too_many_arguments)]
pub fn race_pass(
    p: &Program,
    cs: &Analysis,
    ci: &Analysis,
    input: &[i64],
    witness_states: usize,
    oracle: Option<&FeasibilityOracle>,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<RacePassOutput, Fx10Error> {
    let acc = accesses(p);
    let cs_races = detect_races_with(&acc, |x, y| cs.may_happen_in_parallel(x, y));
    let ci_races = detect_races_with(&acc, |x, y| ci.may_happen_in_parallel(x, y));
    let oracle = oracle.filter(|o| o.complete);

    let mut diagnostics = Vec::new();
    let mut refuted = 0usize;
    for race in &ci_races {
        let key = (race.first.label, race.second.label, race.first.index);
        let tier = if cs_races
            .iter()
            .any(|r| (r.first.label, r.second.label, r.first.index) == key)
        {
            Confidence::CsStatic
        } else {
            Confidence::CiOnly
        };
        if let Some(o) = oracle {
            if !o.pair_feasible(race.first.label, race.second.label) {
                diagnostics.push(infeasible(p, race, o));
                continue;
            }
        }
        let (confidence, may_be_spurious, witness) = if witness_states == 0 {
            (tier, true, None)
        } else {
            match find_witness(
                p,
                input,
                (race.first.label, race.second.label),
                witness_states,
                budget,
                cancel,
            )? {
                WitnessSearch::Found(w) => (Confidence::Confirmed, false, Some(w.schedule)),
                WitnessSearch::Refuted { .. } => {
                    refuted += 1;
                    continue;
                }
                WitnessSearch::Exhausted { .. } => (tier, true, None),
            }
        };
        // An unconfirmed finding keeps a note on why the value analysis
        // could not rule it out either — the facts a fix must change.
        let guard_fact = match oracle {
            Some(o) if may_be_spurious => Some(format!(
                "value analysis ({} domain) cannot rule this pair out: {}; {}",
                o.facts.domain(),
                o.facts.guard_fact(race.first.label, p),
                o.facts.guard_fact(race.second.label, p)
            )),
            _ => None,
        };
        diagnostics.push(describe(
            p,
            race,
            confidence,
            may_be_spurious,
            witness,
            guard_fact,
        ));
    }
    Ok(RacePassOutput {
        diagnostics,
        refuted,
    })
}

/// A statically-reported race the value analysis proves infeasible:
/// demoted to an `infeasible-race` note carrying the unreachability
/// proof, and excused from the witness search.
fn infeasible(p: &Program, race: &Race, oracle: &FeasibilityOracle) -> Diagnostic {
    let first = p.labels().display(race.first.label);
    let second = p.labels().display(race.second.label);
    let dead = [race.first.label, race.second.label]
        .into_iter()
        .find(|&l| !oracle.label_feasible(l))
        .unwrap_or(race.first.label);
    let why = oracle
        .facts
        .reason(dead)
        .unwrap_or_else(|| "label is abstractly unreachable".to_string());
    Diagnostic {
        code: "infeasible-race",
        severity: Severity::Note,
        line: p.labels().line(race.first.label),
        primary: first.clone(),
        message: format!(
            "static race on a[{}] between {first} and {second} is infeasible: \
             {} is unreachable",
            race.first.index,
            p.labels().display(dead)
        ),
        pair: Some((race.first.label, race.second.label)),
        confidence: Confidence::Confirmed,
        may_be_spurious: false,
        witness: None,
        guard_fact: Some(format!("{} domain: {why}", oracle.facts.domain())),
    }
}

fn describe(
    p: &Program,
    race: &Race,
    confidence: Confidence,
    may_be_spurious: bool,
    witness: Option<Vec<u32>>,
    guard_fact: Option<String>,
) -> Diagnostic {
    let (code, what) = if race.is_write_write() {
        ("race-write-write", "parallel writes to")
    } else {
        ("race-read-write", "a read races a parallel write of")
    };
    let first = p.labels().display(race.first.label);
    let second = p.labels().display(race.second.label);
    let message = if race.first.label == race.second.label {
        format!(
            "{what} a[{}]: two overlapping instances of {first}",
            race.first.index
        )
    } else {
        format!(
            "{what} a[{}]: {first} (line {}) and {second} (line {})",
            race.first.index,
            p.labels().line(race.first.label),
            p.labels().line(race.second.label),
        )
    };
    Diagnostic {
        code,
        severity: Severity::Warning,
        line: p.labels().line(race.first.label),
        primary: first,
        message,
        pair: Some((race.first.label, race.second.label)),
        confidence,
        may_be_spurious,
        witness,
        guard_fact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_absint::Domain;
    use fx10_core::analysis::{analyze, analyze_ci};

    fn run(src: &str, witness_states: usize) -> RacePassOutput {
        let p = Program::parse(src).unwrap();
        race_pass(
            &p,
            &analyze(&p),
            &analyze_ci(&p),
            &[],
            witness_states,
            None,
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap()
    }

    fn run_with_oracle(src: &str, input: &[i64], witness_states: usize) -> RacePassOutput {
        let p = Program::parse(src).unwrap();
        let cs = analyze(&p);
        let oracle = FeasibilityOracle::build(&p, &cs, Domain::Interval, Some(input));
        race_pass(
            &p,
            &cs,
            &analyze_ci(&p),
            input,
            witness_states,
            Some(&oracle),
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap()
    }

    #[test]
    fn racy_write_write_is_confirmed_with_witness() {
        let out = run(
            "def main() { W1: async { a[0] = 1; } W2: a[0] = 2; }",
            10_000,
        );
        assert_eq!(out.refuted, 0);
        assert_eq!(out.diagnostics.len(), 1);
        let d = &out.diagnostics[0];
        assert_eq!(d.code, "race-write-write");
        assert_eq!(d.confidence, Confidence::Confirmed);
        assert!(d.witness.is_some());
        assert!(!d.may_be_spurious);
    }

    #[test]
    fn zero_witness_budget_tags_may_be_spurious() {
        let out = run("def main() { async { a[0] = 1; } a[0] = 2; }", 0);
        assert_eq!(out.diagnostics.len(), 1);
        let d = &out.diagnostics[0];
        assert_eq!(d.confidence, Confidence::CsStatic);
        assert!(d.may_be_spurious);
        assert!(d.witness.is_none());
    }

    #[test]
    fn read_write_is_classified() {
        let out = run(
            "def main() { async { a[0] = 1; } a[1] = a[0] + 1; }",
            10_000,
        );
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].code, "race-read-write");
    }

    #[test]
    fn clean_program_has_no_findings() {
        let out = run(
            "def main() { finish { async { a[0] = 1; } } a[0] = 2; }",
            10_000,
        );
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.refuted, 0);
    }

    #[test]
    fn oracle_demotes_dead_loop_race_to_infeasible_note() {
        // The race lives inside a loop whose guard is provably 0.
        let src = "def main() { a[0] = 0; while (a[0] != 0) { async { a[1] = 1; } a[1] = 2; } }";
        let out = run_with_oracle(src, &[0, 0], 0);
        assert!(!out.diagnostics.is_empty());
        for d in &out.diagnostics {
            assert_eq!(d.code, "infeasible-race");
            assert_eq!(d.severity, Severity::Note);
            assert_eq!(d.confidence, Confidence::Confirmed);
            assert!(!d.may_be_spurious);
            assert!(d.witness.is_none());
            let fact = d.guard_fact.as_deref().unwrap();
            assert!(fact.starts_with("interval domain: "), "{fact}");
        }
        // Without the oracle the same races are plain static warnings.
        let plain = run(src, 0);
        assert_eq!(plain.diagnostics.len(), out.diagnostics.len());
        assert!(plain
            .diagnostics
            .iter()
            .all(|d| d.code == "race-write-write"));
    }

    #[test]
    fn surviving_unconfirmed_race_cites_guard_facts() {
        // witness_states = 0 keeps the finding may-be-spurious, so the
        // oracle's "could not rule it out" hint attaches.
        let out = run_with_oracle("def main() { async { a[0] = 1; } a[0] = 2; }", &[], 0);
        assert_eq!(out.diagnostics.len(), 1);
        let d = &out.diagnostics[0];
        assert_eq!(d.code, "race-write-write");
        assert!(d.may_be_spurious);
        let fact = d.guard_fact.as_deref().unwrap();
        assert!(fact.contains("cannot rule this pair out"), "{fact}");
        // Confirmed findings carry no hint — the witness is the evidence.
        let confirmed =
            run_with_oracle("def main() { async { a[0] = 1; } a[0] = 2; }", &[], 10_000);
        assert!(confirmed.diagnostics[0].guard_fact.is_none());
    }
}
