//! Structural passes: dead methods, redundant finishes, inert asyncs,
//! provably stuck loops.
//!
//! These are exact arguments, not over-approximations, so their findings
//! are `confirmed`:
//!
//! * **dead-method** — call-graph reachability from `main` is a complete
//!   syntactic fact (FX10 has no indirect calls).
//! * **redundant-finish** — "the body spawns no async, transitively
//!   through calls" is a least-fixpoint over the call graph.
//! * **inert-async** — the static MHP relation *over-approximates* every
//!   reachable `parallel(T)` (Theorem 2), so an empty MHP row for every
//!   label the async body can execute (including transitively-called
//!   methods) proves the body never overlaps anything.
//! * **stuck-loop** — abstract interpretation proves the guard cell can
//!   never be 0 at the loop head, so reaching the loop diverges. A
//!   `⊤`-initial run makes the proof input-general ("for every input");
//!   otherwise the run over the analyzed input gives an input-specific
//!   proof. When the value analysis is not licensed (budget-cut MHP
//!   relation, round-cap fallback), the pass degrades to the original
//!   syntactic rule: guard cell non-zero on entry and never written.
//! * **oob-write** / **oob-read** — the program declares `array[N];` and
//!   an instruction mentions a constant index `>= N`. The runtime array
//!   is padded so execution cannot fault; the access is still a definite
//!   bounds violation against the declared interface.

use crate::diag::{Confidence, Diagnostic, Severity};
use fx10_absint::Absint;
use fx10_core::analysis::Analysis;
use fx10_core::race::{accesses, AccessKind};
use fx10_semantics::ArrayState;
use fx10_syntax::{FuncId, InstrKind, Label, Program, Stmt};

fn confirmed(
    code: &'static str,
    severity: Severity,
    line: u32,
    primary: String,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        line,
        primary,
        message,
        pair: None,
        confidence: Confidence::Confirmed,
        may_be_spurious: false,
        witness: None,
        guard_fact: None,
    }
}

/// Per-method facts the structural passes share: direct callees, whether
/// the body contains an `async` at any nesting depth, and all labels.
struct MethodFacts {
    callees: Vec<Vec<FuncId>>,
    has_async: Vec<bool>,
    labels: Vec<Vec<Label>>,
}

fn method_facts(p: &Program) -> MethodFacts {
    let n = p.method_count();
    let mut f = MethodFacts {
        callees: vec![Vec::new(); n],
        has_async: vec![false; n],
        labels: vec![Vec::new(); n],
    };
    p.for_each_instr(|m, i| {
        f.labels[m.index()].push(i.label);
        match &i.kind {
            InstrKind::Call { callee } => f.callees[m.index()].push(*callee),
            InstrKind::Async { .. } => f.has_async[m.index()] = true,
            _ => {}
        }
    });
    f
}

/// `spawns[f]`: does running `f` ever execute an `async`, transitively?
/// Least fixpoint over the call graph.
fn spawning_methods(facts: &MethodFacts) -> Vec<bool> {
    let mut spawns = facts.has_async.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for m in 0..spawns.len() {
            if spawns[m] {
                continue;
            }
            if facts.callees[m].iter().any(|c| spawns[c.index()]) {
                spawns[m] = true;
                changed = true;
            }
        }
    }
    spawns
}

/// Methods reachable from `main` through the call graph.
fn reachable_methods(p: &Program, facts: &MethodFacts) -> Vec<bool> {
    let mut reachable = vec![false; p.method_count()];
    let mut stack = vec![p.main()];
    reachable[p.main().index()] = true;
    while let Some(m) = stack.pop() {
        for &c in &facts.callees[m.index()] {
            if !reachable[c.index()] {
                reachable[c.index()] = true;
                stack.push(c);
            }
        }
    }
    reachable
}

/// `dead-method`: methods the call graph cannot reach from `main`.
pub fn dead_methods(p: &Program) -> Vec<Diagnostic> {
    let facts = method_facts(p);
    let reachable = reachable_methods(p, &facts);
    let mut out = Vec::new();
    for (mi, method) in p.methods().iter().enumerate() {
        if reachable[mi] {
            continue;
        }
        let head = method.body().head().label;
        out.push(confirmed(
            "dead-method",
            Severity::Warning,
            p.labels().line(head),
            method.name().to_string(),
            format!("method `{}` is never called from `main`", method.name()),
        ));
    }
    out
}

/// Does `s` execute an `async` at any depth, following calls?
fn stmt_spawns(s: &Stmt, spawns: &[bool]) -> bool {
    s.instrs().iter().any(|i| match &i.kind {
        InstrKind::Async { .. } => true,
        InstrKind::Call { callee } => spawns[callee.index()],
        InstrKind::While { body, .. } | InstrKind::Finish { body } => stmt_spawns(body, spawns),
        _ => false,
    })
}

/// `redundant-finish`: a `finish s` that cannot spawn, so it awaits
/// nothing and is pure overhead.
pub fn redundant_finishes(p: &Program) -> Vec<Diagnostic> {
    let facts = method_facts(p);
    let spawns = spawning_methods(&facts);
    let mut out = Vec::new();
    p.for_each_instr(|_, i| {
        if let InstrKind::Finish { body } = &i.kind {
            if !stmt_spawns(body, &spawns) {
                out.push(confirmed(
                    "redundant-finish",
                    Severity::Warning,
                    p.labels().line(i.label),
                    p.labels().display(i.label),
                    format!(
                        "`finish` at {} spawns no async, transitively — it awaits nothing",
                        p.labels().display(i.label)
                    ),
                ));
            }
        }
    });
    out
}

/// All labels `body` can execute: its own plus, transitively, the labels
/// of every method it calls.
fn executable_labels(body: &Stmt, facts: &MethodFacts, out: &mut Vec<Label>) {
    fn method_closure(m: FuncId, facts: &MethodFacts, seen: &mut Vec<bool>, out: &mut Vec<Label>) {
        if std::mem::replace(&mut seen[m.index()], true) {
            return;
        }
        out.extend_from_slice(&facts.labels[m.index()]);
        for &c in &facts.callees[m.index()] {
            method_closure(c, facts, seen, out);
        }
    }
    let mut seen = vec![false; facts.callees.len()];
    fn walk(s: &Stmt, facts: &MethodFacts, seen: &mut Vec<bool>, out: &mut Vec<Label>) {
        for i in s.instrs() {
            out.push(i.label);
            match &i.kind {
                InstrKind::Call { callee } => method_closure(*callee, facts, seen, out),
                _ => {
                    if let Some(b) = i.kind.body() {
                        walk(b, facts, seen, out);
                    }
                }
            }
        }
    }
    walk(body, facts, &mut seen, out);
}

/// `inert-async`: an async none of whose executable labels has any MHP
/// partner — the spawn buys no parallelism. Requires a *complete* static
/// analysis: a budget-cut MHP relation is partial and cannot prove
/// absence, so the caller skips this pass when the analysis exhausted.
pub fn inert_asyncs(p: &Program, a: &Analysis) -> Vec<Diagnostic> {
    let facts = method_facts(p);
    let mut out = Vec::new();
    p.for_each_instr(|_, i| {
        if let InstrKind::Async { body } = &i.kind {
            let mut labels = Vec::new();
            executable_labels(body, &facts, &mut labels);
            let overlaps = labels.iter().any(|&l| !a.mhp().partners(l).is_empty());
            if !overlaps {
                out.push(confirmed(
                    "inert-async",
                    Severity::Warning,
                    p.labels().line(i.label),
                    p.labels().display(i.label),
                    format!(
                        "async at {} never overlaps any other computation",
                        p.labels().display(i.label)
                    ),
                ));
            }
        }
    });
    out
}

/// `stuck-loop`: provable divergence.
///
/// `absint`, when licensed, carries `(general, specific)` — the
/// `⊤`-initial run and the analyzed-input run. A loop divergent in the
/// general run diverges **for every input**; one divergent only in the
/// specific run diverges under the analyzed input. With `absint = None`
/// the pass falls back to the original syntactic argument (guard cell
/// non-zero on entry, never written anywhere) — strictly weaker, but
/// needing no MHP relation.
pub fn stuck_loops(
    p: &Program,
    input: &[i64],
    absint: Option<(&Absint, &Absint)>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match absint {
        Some((general, specific)) => {
            let mut seen: Vec<Label> = Vec::new();
            for &(l, idx, v) in general.divergent_loops() {
                seen.push(l);
                out.push(confirmed(
                    "stuck-loop",
                    Severity::Error,
                    p.labels().line(l),
                    p.labels().display(l),
                    format!(
                        "guard a[{idx}] is {v} at the loop head and never 0 \
                         ({} domain): reaching this loop diverges for every input",
                        general.domain()
                    ),
                ));
            }
            for &(l, idx, v) in specific.divergent_loops() {
                if seen.contains(&l) {
                    continue;
                }
                out.push(confirmed(
                    "stuck-loop",
                    Severity::Error,
                    p.labels().line(l),
                    p.labels().display(l),
                    format!(
                        "guard a[{idx}] is {v} at the loop head and never 0 \
                         ({} domain): reaching this loop diverges under the analyzed input",
                        specific.domain()
                    ),
                ));
            }
        }
        None => {
            let entry = ArrayState::with_input(p, input);
            // Cells some instruction writes, anywhere in the program.
            let written: Vec<usize> = accesses(p)
                .iter()
                .filter(|a| a.kind == AccessKind::Write)
                .map(|a| a.index)
                .collect();
            p.for_each_instr(|_, i| {
                if let InstrKind::While { idx, .. } = &i.kind {
                    if entry.get(*idx) != 0 && !written.contains(idx) {
                        out.push(confirmed(
                            "stuck-loop",
                            Severity::Error,
                            p.labels().line(i.label),
                            p.labels().display(i.label),
                            format!(
                                "guard a[{}] = {} on entry and no instruction ever writes a[{}]: \
                                 reaching this loop diverges",
                                idx,
                                entry.get(*idx),
                                idx
                            ),
                        ));
                    }
                }
            });
        }
    }
    out
}

/// `oob-write` / `oob-read`: constant indices outside a declared
/// `array[N];` bound. Purely syntactic (FX10 indices are literals), so
/// every finding is a definite violation of the declared interface.
pub fn oob_accesses(p: &Program) -> Vec<Diagnostic> {
    let Some(n) = p.declared_len() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for a in accesses(p) {
        if a.index < n {
            continue;
        }
        let (code, verb) = match a.kind {
            AccessKind::Write => ("oob-write", "writes"),
            AccessKind::Read => ("oob-read", "reads"),
        };
        out.push(confirmed(
            code,
            Severity::Error,
            p.labels().line(a.label),
            p.labels().display(a.label),
            format!(
                "{} {verb} a[{}] but the program declares `array[{n}]` \
                 (valid indices 0..{n})",
                p.labels().display(a.label),
                a.index,
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_core::analysis::analyze;

    #[test]
    fn unreachable_method_is_dead() {
        let p = Program::parse(
            "def helper() { skip; }\n\
             def unused() { helper(); }\n\
             def main() { skip; }",
        )
        .unwrap();
        let d = dead_methods(&p);
        // `helper` is only reachable through `unused`, which is dead too.
        let names: Vec<_> = d.iter().map(|d| d.primary.as_str()).collect();
        assert_eq!(names, vec!["helper", "unused"]);
        assert!(d.iter().all(|d| d.code == "dead-method" && d.line > 0));
    }

    #[test]
    fn finish_without_asyncs_is_redundant() {
        let p = Program::parse(
            "def spawns() { async { skip; } }\n\
             def main() {\n\
               F1: finish { a[0] = 1; }\n\
               F2: finish { spawns(); }\n\
               F3: finish { async { skip; } }\n\
             }",
        )
        .unwrap();
        let d = redundant_finishes(&p);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].primary, "F1");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn async_with_no_overlap_is_inert() {
        // The finish forces the async to complete before K runs.
        let p = Program::parse("def main() { finish { A: async { B; } } K; }").unwrap();
        let d = inert_asyncs(&p, &analyze(&p));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].primary, "A");
        // A genuinely parallel async is not flagged.
        let p2 = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        assert!(inert_asyncs(&p2, &analyze(&p2)).is_empty());
    }

    #[test]
    fn inert_check_follows_calls() {
        // The async's body calls f, whose label overlaps main's tail:
        // not inert even though the body's own labels are quiet.
        let p = Program::parse(
            "def f() { a[0] = 1; }\n\
             def main() { async { f(); } a[0] = 2; }",
        )
        .unwrap();
        assert!(inert_asyncs(&p, &analyze(&p)).is_empty());
    }

    fn absint_pair(p: &Program, input: &[i64]) -> (Absint, Absint) {
        use fx10_absint::{AbsintConfig, Domain};
        let a = analyze(p);
        let general = Absint::analyze(p, a.mhp(), &AbsintConfig::top(Domain::Interval));
        let specific = Absint::analyze(
            p,
            a.mhp(),
            &AbsintConfig::with_input(Domain::Interval, input),
        );
        (general, specific)
    }

    #[test]
    fn unwritten_nonzero_guard_is_stuck_syntactically() {
        let p = Program::parse("def main() { W: while (a[1] != 0) { skip; } }").unwrap();
        // Guard cell zero on entry: fine.
        assert!(stuck_loops(&p, &[], None).is_empty());
        // Non-zero and never written: provable divergence.
        let d = stuck_loops(&p, &[0, 7], None);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "stuck-loop");
        assert_eq!(d[0].severity, Severity::Error);
        // A writer anywhere in the program disarms the proof.
        let q = Program::parse("def main() { while (a[1] != 0) { a[1] = 0; } }").unwrap();
        assert!(stuck_loops(&q, &[0, 7], None).is_empty());
    }

    #[test]
    fn absint_upgrades_stuck_loop_to_input_general() {
        // The program itself sets the guard non-zero: divergence holds
        // for *every* input, which the syntactic rule cannot see (the
        // guard cell is written).
        let p = Program::parse("def main() { a[0] = 7; W: while (a[0] != 0) { skip; } }").unwrap();
        let (g, s) = absint_pair(&p, &[]);
        let d = stuck_loops(&p, &[], Some((&g, &s)));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("for every input"), "{}", d[0].message);
        // Input-specific: guard from the input, written only in dead code.
        let q = Program::parse(
            "def main() { W: while (a[1] != 0) { skip; } }\n\
             def ghost() { a[1] = 0; }",
        )
        .unwrap();
        let (g, s) = absint_pair(&q, &[0, 7]);
        let d = stuck_loops(&q, &[0, 7], Some((&g, &s)));
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message.contains("under the analyzed input"),
            "{}",
            d[0].message
        );
        // And the syntactic fallback misses it (a writer exists).
        assert!(stuck_loops(&q, &[0, 7], None).is_empty());
    }

    #[test]
    fn declared_bounds_police_constant_indices() {
        let p = Program::parse(
            "array[2];\n\
             def main() {\n\
               W: a[2] = 1;\n\
               R: a[0] = a[3] + 1;\n\
               G: while (a[1] != 0) { a[1] = 0; }\n\
             }",
        )
        .unwrap();
        let d = oob_accesses(&p);
        let codes: Vec<&str> = d.iter().map(|x| x.code).collect();
        assert_eq!(codes, vec!["oob-write", "oob-read"]);
        assert!(d[0].message.contains("a[2]"), "{}", d[0].message);
        assert!(d[1].message.contains("a[3]"), "{}", d[1].message);
        assert!(d
            .iter()
            .all(|x| x.severity == Severity::Error && x.line > 0));
        // No declaration, no findings.
        let q = Program::parse("def main() { a[9] = 1; }").unwrap();
        assert!(oob_accesses(&q).is_empty());
    }
}
