//! Diagnostic renderers: human text, machine JSON, and SARIF 2.1.0.
//!
//! All three are deterministic byte-for-byte for a given report — no
//! timestamps, no environment data — so golden files can assert on them
//! directly. JSON is emitted by hand (the workspace is offline and
//! std-only); [`esc`] is the single escaping path all string values go
//! through.

use crate::diag::{Diagnostic, LintReport, Severity, RULES};
use std::fmt::Write as _;

/// Escapes `s` as the *inside* of a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_u32_array(xs: &[u32]) -> String {
    let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(", "))
}

/// One text line per finding, then per-finding detail lines (witness, fix
/// hint), then a summary line. Empty reports still get the summary.
pub fn render_text(file: &str, report: &LintReport) -> String {
    let mut out = String::new();
    let mut counts = [0usize; 3];
    for d in &report.diagnostics {
        counts[d.severity as usize] += 1;
        let _ = write!(
            out,
            "{file}:{}: {}[{}]: {}",
            d.line, d.severity, d.code, d.message
        );
        let _ = write!(out, " ({})", d.confidence);
        if d.may_be_spurious {
            out.push_str(" [may-be-spurious]");
        }
        out.push('\n');
        if let Some(w) = &d.witness {
            let _ = writeln!(out, "  witness: successor choices {}", json_u32_array(w));
        }
        if let Some(g) = &d.guard_fact {
            let _ = writeln!(out, "  value-analysis: {g}");
        }
        let _ = writeln!(out, "  help: {}", d.help());
    }
    let _ = write!(
        out,
        "{file}: {} error{}, {} warning{}, {} note{}",
        counts[Severity::Error as usize],
        if counts[Severity::Error as usize] == 1 {
            ""
        } else {
            "s"
        },
        counts[Severity::Warning as usize],
        if counts[Severity::Warning as usize] == 1 {
            ""
        } else {
            "s"
        },
        counts[Severity::Note as usize],
        if counts[Severity::Note as usize] == 1 {
            ""
        } else {
            "s"
        },
    );
    if report.refuted_races > 0 {
        let _ = write!(
            out,
            " ({} statically-reported race{} refuted by exploration)",
            report.refuted_races,
            if report.refuted_races == 1 { "" } else { "s" },
        );
    }
    if let Some(e) = report.exhausted {
        let _ = write!(out, " [static analysis hit its {e}: findings are partial]");
    }
    out.push('\n');
    out
}

fn diagnostic_json(d: &Diagnostic, indent: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{indent}{{");
    let _ = writeln!(out, "{indent}  \"code\": \"{}\",", esc(d.code));
    let _ = writeln!(out, "{indent}  \"severity\": \"{}\",", d.severity);
    let _ = writeln!(out, "{indent}  \"line\": {},", d.line);
    let _ = writeln!(out, "{indent}  \"primary\": \"{}\",", esc(&d.primary));
    let _ = writeln!(out, "{indent}  \"message\": \"{}\",", esc(&d.message));
    match d.pair {
        Some((a, b)) => {
            let _ = writeln!(out, "{indent}  \"pair\": [{}, {}],", a.index(), b.index());
        }
        None => {
            let _ = writeln!(out, "{indent}  \"pair\": null,");
        }
    }
    let _ = writeln!(out, "{indent}  \"confidence\": \"{}\",", d.confidence);
    let _ = writeln!(out, "{indent}  \"may_be_spurious\": {},", d.may_be_spurious);
    match &d.witness {
        Some(w) => {
            let _ = writeln!(out, "{indent}  \"witness\": {},", json_u32_array(w));
        }
        None => {
            let _ = writeln!(out, "{indent}  \"witness\": null,");
        }
    }
    match &d.guard_fact {
        Some(g) => {
            let _ = writeln!(out, "{indent}  \"guard_fact\": \"{}\",", esc(g));
        }
        None => {
            let _ = writeln!(out, "{indent}  \"guard_fact\": null,");
        }
    }
    let _ = writeln!(out, "{indent}  \"help\": \"{}\"", esc(d.help()));
    let _ = write!(out, "{indent}}}");
    out
}

/// The machine-readable report: the full diagnostic model, verbatim.
pub fn render_json(file: &str, report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"file\": \"{}\",", esc(file));
    if report.diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": [],\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in report.diagnostics.iter().enumerate() {
            out.push_str(&diagnostic_json(d, "    "));
            out.push_str(if i + 1 < report.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
    }
    let _ = writeln!(out, "  \"refuted_races\": {},", report.refuted_races);
    match report.exhausted {
        Some(e) => {
            let _ = writeln!(out, "  \"exhausted\": \"{}\"", esc(&e.to_string()));
        }
        None => out.push_str("  \"exhausted\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// SARIF 2.1.0: one run, the full rule registry in the driver, one result
/// per finding. Witness schedules and confidence tiers travel in each
/// result's `properties` bag; `region` is omitted when the source line is
/// unknown (builder-built programs), as SARIF requires `startLine >= 1`.
pub fn render_sarif(file: &str, report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n");
    out.push_str("    {\n");
    out.push_str("      \"tool\": {\n");
    out.push_str("        \"driver\": {\n");
    out.push_str("          \"name\": \"fx10-lint\",\n");
    out.push_str("          \"version\": \"0.1.0\",\n");
    out.push_str(
        "          \"informationUri\": \"https://dl.acm.org/doi/10.1145/1693453.1693459\",\n",
    );
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str("            {\n");
        let _ = writeln!(out, "              \"id\": \"{}\",", esc(r.code));
        let _ = writeln!(
            out,
            "              \"shortDescription\": {{ \"text\": \"{}\" }},",
            esc(r.summary)
        );
        let _ = writeln!(
            out,
            "              \"help\": {{ \"text\": \"{}\" }},",
            esc(r.help)
        );
        let _ = writeln!(
            out,
            "              \"defaultConfiguration\": {{ \"level\": \"{}\" }}",
            r.severity.sarif_level()
        );
        out.push_str("            }");
        out.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n");
    out.push_str("        }\n");
    out.push_str("      },\n");
    if report.diagnostics.is_empty() {
        out.push_str("      \"results\": []\n");
    } else {
        out.push_str("      \"results\": [\n");
        for (i, d) in report.diagnostics.iter().enumerate() {
            out.push_str(&sarif_result(file, d));
            out.push_str(if i + 1 < report.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
    }
    out.push_str("    }\n");
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn sarif_result(file: &str, d: &Diagnostic) -> String {
    let rule_index = RULES.iter().position(|r| r.code == d.code).unwrap_or(0);
    let mut out = String::new();
    out.push_str("        {\n");
    let _ = writeln!(out, "          \"ruleId\": \"{}\",", esc(d.code));
    let _ = writeln!(out, "          \"ruleIndex\": {rule_index},");
    let _ = writeln!(
        out,
        "          \"level\": \"{}\",",
        d.severity.sarif_level()
    );
    let _ = writeln!(
        out,
        "          \"message\": {{ \"text\": \"{}\" }},",
        esc(&d.message)
    );
    out.push_str("          \"locations\": [\n");
    out.push_str("            {\n");
    out.push_str("              \"physicalLocation\": {\n");
    let _ = writeln!(
        out,
        "                \"artifactLocation\": {{ \"uri\": \"{}\" }}{}",
        esc(file),
        if d.line > 0 { "," } else { "" }
    );
    if d.line > 0 {
        let _ = writeln!(
            out,
            "                \"region\": {{ \"startLine\": {} }}",
            d.line
        );
    }
    out.push_str("              }\n");
    out.push_str("            }\n");
    out.push_str("          ],\n");
    out.push_str("          \"properties\": {\n");
    let _ = writeln!(out, "            \"confidence\": \"{}\",", d.confidence);
    let _ = write!(out, "            \"mayBeSpurious\": {}", d.may_be_spurious);
    if let Some(w) = &d.witness {
        let _ = write!(
            out,
            ",\n            \"witnessSchedule\": {}",
            json_u32_array(w)
        );
    }
    if let Some(g) = &d.guard_fact {
        let _ = write!(out, ",\n            \"guardFact\": \"{}\"", esc(g));
    }
    out.push('\n');
    out.push_str("          }\n");
    out.push_str("        }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{rule, Confidence};

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    code: "race-write-write",
                    severity: Severity::Warning,
                    line: 2,
                    primary: "W1".into(),
                    message: "parallel writes to a[0]: W1 (line 2) and W2 (line 3)".into(),
                    pair: Some((fx10_syntax::Label(2), fx10_syntax::Label(4))),
                    confidence: Confidence::Confirmed,
                    may_be_spurious: false,
                    witness: Some(vec![1, 0]),
                    guard_fact: None,
                },
                Diagnostic {
                    code: "stuck-loop",
                    severity: Severity::Error,
                    line: 0,
                    primary: "W".into(),
                    message: "a \"quoted\" message\nwith a newline".into(),
                    pair: None,
                    confidence: Confidence::Confirmed,
                    may_be_spurious: true,
                    witness: None,
                    guard_fact: Some("interval domain: a[0] is [1, +inf]".into()),
                },
            ],
            refuted_races: 1,
            exhausted: None,
        }
    }

    #[test]
    fn escapes_json_metacharacters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        let json = render_json("f.fx10", &sample());
        assert!(json.contains("a \\\"quoted\\\" message\\nwith a newline"));
    }

    #[test]
    fn text_has_one_line_per_finding_plus_summary() {
        let text = render_text("f.fx10", &sample());
        assert!(text.contains("f.fx10:2: warning[race-write-write]:"));
        assert!(text.contains("witness: successor choices [1, 0]"));
        assert!(text.contains("[may-be-spurious]"));
        assert!(text.contains("value-analysis: interval domain: a[0] is [1, +inf]"));
        assert!(text.contains("1 error, 1 warning, 0 notes"));
        assert!(text.contains("1 statically-reported race refuted"));
    }

    #[test]
    fn guard_fact_travels_in_json_and_sarif() {
        let json = render_json("f.fx10", &sample());
        assert!(json.contains("\"guard_fact\": \"interval domain: a[0] is [1, +inf]\""));
        assert!(json.contains("\"guard_fact\": null"));
        let sarif = render_sarif("f.fx10", &sample());
        assert!(sarif.contains("\"guardFact\": \"interval domain: a[0] is [1, +inf]\""));
    }

    #[test]
    fn sarif_declares_every_rule_and_omits_unknown_regions() {
        let sarif = render_sarif("f.fx10", &sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        for r in RULES {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", r.code)));
            assert!(rule(r.code).is_some());
        }
        // The line-2 finding has a region; the line-0 finding does not.
        assert_eq!(sarif.matches("\"region\"").count(), 1);
        assert!(sarif.contains("\"witnessSchedule\": [1, 0]"));
    }

    #[test]
    fn renderers_are_deterministic() {
        let r = sample();
        assert_eq!(render_text("f", &r), render_text("f", &r));
        assert_eq!(render_json("f", &r), render_json("f", &r));
        assert_eq!(render_sarif("f", &r), render_sarif("f", &r));
    }

    #[test]
    fn empty_report_renders_in_all_formats() {
        let r = LintReport {
            diagnostics: vec![],
            refuted_races: 0,
            exhausted: None,
        };
        assert!(render_text("f", &r).contains("0 errors, 0 warnings, 0 notes"));
        assert!(render_json("f", &r).contains("\"diagnostics\": []"));
        assert!(render_sarif("f", &r).contains("\"results\": []"));
    }
}
