//! The lint engine: runs every pass and assembles one [`LintReport`].
//!
//! Pass gating follows soundness, not convenience:
//!
//! * the race pass runs against whatever (possibly budget-cut) analyses
//!   we got — a partial MHP relation under-approximates, so it can only
//!   *miss* races, never invent them, and the report records the cut;
//! * `inert-async` and `precision-delta` need complete analyses: both
//!   prove an *absence* (no MHP partner; pair not in CS), which a partial
//!   relation cannot support, so they are skipped under exhaustion;
//! * the abstract value analysis (feasibility oracle, input-general
//!   stuck-loop proofs) is licensed only by a complete CS relation and an
//!   uncapped fixpoint — its interference rule quantifies over the MHP
//!   relation, so a partial relation would make its *facts* unsound, not
//!   just incomplete. Unlicensed runs degrade to the syntactic rules.

use crate::audit::precision_audit;
use crate::diag::LintReport;
use crate::races::race_pass;
use crate::structure::{dead_methods, inert_asyncs, oob_accesses, redundant_finishes, stuck_loops};
use fx10_absint::{Absint, AbsintConfig, Domain, FeasibilityOracle};
use fx10_core::analysis::{analyze_with_budget, SolverKind};
use fx10_core::gen::Mode;
use fx10_robust::{Budget, CancelToken, Fx10Error};
use fx10_syntax::Program;

/// Configuration for one lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Initial array contents (padded/truncated to the program's array
    /// length); drives the witness search and the stuck-loop proof.
    pub input: Vec<i64>,
    /// Per-finding cap on distinct raw states the witness search may
    /// admit. 0 disables witness search: every race keeps its static
    /// tier, tagged may-be-spurious.
    pub witness_states: usize,
    /// Solver for the two static analyses.
    pub solver: SolverKind,
    /// Resource budget shared by the analyses and every witness search.
    pub budget: Budget,
    /// Abstract domain for the value analysis backing the feasibility
    /// oracle and the stuck-loop proofs.
    pub domain: Domain,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            input: Vec::new(),
            witness_states: 10_000,
            solver: SolverKind::Naive,
            budget: Budget::unlimited(),
            domain: Domain::Interval,
        }
    }
}

/// Runs the full suite over `p`.
///
/// Errors only on cancellation (or a poisoned solver worker) — budget
/// exhaustion inside the analyses or the witness search degrades the
/// report instead of failing it.
pub fn lint(
    p: &Program,
    opts: &LintOptions,
    cancel: &CancelToken,
) -> Result<LintReport, Fx10Error> {
    let cs = analyze_with_budget(p, Mode::ContextSensitive, opts.solver, opts.budget, cancel)?;
    let ci = analyze_with_budget(
        p,
        Mode::ContextInsensitive { keep_scross: true },
        opts.solver,
        opts.budget,
        cancel,
    )?;
    let complete = cs.exhausted.is_none() && ci.exhausted.is_none();

    // The value analysis quantifies over the CS MHP relation, so only a
    // complete CS run licenses it; the oracle additionally refuses to
    // prune when its own fixpoint hit the round cap.
    let oracle = (cs.exhausted.is_none())
        .then(|| FeasibilityOracle::build(p, &cs, opts.domain, Some(&opts.input)));
    let facts_general = (cs.exhausted.is_none())
        .then(|| Absint::analyze(p, cs.mhp(), &AbsintConfig::top(opts.domain)));
    let absint = match (&facts_general, &oracle) {
        (Some(g), Some(o)) if !g.capped() && o.complete => Some((g, &o.facts)),
        _ => None,
    };

    let races = race_pass(
        p,
        &cs,
        &ci,
        &opts.input,
        opts.witness_states,
        oracle.as_ref(),
        opts.budget,
        cancel,
    )?;

    let mut diagnostics = races.diagnostics;
    diagnostics.extend(dead_methods(p));
    diagnostics.extend(redundant_finishes(p));
    diagnostics.extend(stuck_loops(p, &opts.input, absint));
    diagnostics.extend(oob_accesses(p));
    if complete {
        diagnostics.extend(inert_asyncs(p, &cs));
        diagnostics.extend(precision_audit(p, &cs, &ci));
    }
    diagnostics.sort_by(|a, b| (a.line, a.code, &a.message).cmp(&(b.line, b.code, &b.message)));

    Ok(LintReport {
        diagnostics,
        refuted_races: races.refuted,
        exhausted: cs.exhausted.or(ci.exhausted),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Confidence;

    fn run(src: &str) -> LintReport {
        let p = Program::parse(src).unwrap();
        lint(&p, &LintOptions::default(), &CancelToken::new()).unwrap()
    }

    #[test]
    fn clean_program_is_clean() {
        let r = run("def main() { finish { async { a[0] = 1; } } a[1] = a[0] + 1; }");
        // The finish spawns, the async overlaps nothing *because* of the
        // finish... but inert-async fires on it, which is correct: that
        // async gains nothing. Use a genuinely parallel, disjoint program.
        let r2 = run("def main() { async { a[0] = 1; } a[1] = 2; }");
        assert!(r2.diagnostics.is_empty(), "{:?}", r2.diagnostics);
        assert!(r.diagnostics.iter().all(|d| d.code == "inert-async"));
    }

    #[test]
    fn findings_are_sorted_by_line() {
        let r = run("def ghost() { skip; }\n\
             def main() {\n\
               W1: async { a[0] = 1; }\n\
               W2: a[0] = 2;\n\
               F: finish { skip; }\n\
             }");
        let lines: Vec<u32> = r.diagnostics.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"race-write-write"));
        assert!(codes.contains(&"dead-method"));
        assert!(codes.contains(&"redundant-finish"));
    }

    #[test]
    fn witness_confirms_the_racey_fixture() {
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../programs/racey.fx10"
        ))
        .unwrap();
        let r = run(&src);
        let race = r
            .diagnostics
            .iter()
            .find(|d| d.code.starts_with("race"))
            .expect("racey.fx10 must produce a race finding");
        assert_eq!(race.confidence, Confidence::Confirmed);
        assert!(race.witness.is_some());
        assert!(race.line > 0);
    }

    #[test]
    fn engine_emits_infeasible_race_and_oob() {
        let r = run("array[2];\n\
             def main() {\n\
               a[0] = 0;\n\
               while (a[0] != 0) { async { a[1] = 1; } a[1] = 2; }\n\
               X: a[2] = 9;\n\
             }");
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"infeasible-race"), "{codes:?}");
        assert!(codes.contains(&"oob-write"), "{codes:?}");
        assert!(!codes.contains(&"race-write-write"), "{codes:?}");
        let inf = r
            .diagnostics
            .iter()
            .find(|d| d.code == "infeasible-race")
            .unwrap();
        assert!(inf.guard_fact.is_some());
    }

    #[test]
    fn engine_stuck_loop_is_input_general() {
        let r = run("def main() { a[0] = 5; while (a[0] != 0) { skip; } }");
        let stuck = r
            .diagnostics
            .iter()
            .find(|d| d.code == "stuck-loop")
            .expect("stuck loop");
        assert!(
            stuck.message.contains("for every input"),
            "{}",
            stuck.message
        );
    }

    #[test]
    fn cancellation_propagates() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(lint(&p, &LintOptions::default(), &cancel).is_err());
    }
}
