//! Model-based property tests for the abstract domains: `LabelSet` and
//! `PairSet` are checked against `BTreeSet` reference models, and the
//! algebraic identities of the paper's Lemma 7 are checked directly.

use fx10_core::sets::{lcross, symcross, LabelSet, PairSet};
use fx10_syntax::Label;
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: usize = 150; // universe spans multiple bitset words

fn labels() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..N as u32, 0..20)
}

fn set_of(ls: &[u32]) -> LabelSet {
    LabelSet::from_labels(N, ls.iter().map(|&l| Label(l)))
}

fn model_of(ls: &[u32]) -> BTreeSet<u32> {
    ls.iter().copied().collect()
}

proptest! {
    #[test]
    fn labelset_matches_btreeset_model(a in labels(), b in labels()) {
        let (sa, sb) = (set_of(&a), set_of(&b));
        let (ma, mb) = (model_of(&a), model_of(&b));

        prop_assert_eq!(sa.len(), ma.len());
        prop_assert_eq!(sa.is_empty(), ma.is_empty());
        prop_assert_eq!(
            sa.iter().map(|l| l.0).collect::<Vec<_>>(),
            ma.iter().copied().collect::<Vec<_>>()
        );
        for l in 0..N as u32 {
            prop_assert_eq!(sa.contains(Label(l)), ma.contains(&l));
        }
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.intersects(&sb), !ma.is_disjoint(&mb));

        let mut u = sa.clone();
        let changed = u.union_with(&sb);
        let mu: BTreeSet<u32> = ma.union(&mb).copied().collect();
        prop_assert_eq!(changed, mu.len() != ma.len());
        prop_assert_eq!(u.len(), mu.len());
        // Union is idempotent and commutative.
        let mut u2 = u.clone();
        prop_assert!(!u2.union_with(&sb));
        let mut v = sb.clone();
        v.union_with(&sa);
        prop_assert_eq!(u, v);
    }

    #[test]
    fn pairset_matches_model(pairs in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..30)) {
        let mut s = PairSet::empty(N);
        let mut model: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(a, b) in &pairs {
            let fresh = s.insert(Label(a), Label(b));
            let mfresh = model.insert((a.min(b), a.max(b)));
            prop_assert_eq!(fresh, mfresh);
        }
        prop_assert_eq!(s.len(), model.len());
        prop_assert_eq!(
            s.iter_pairs().map(|(a, b)| (a.0, b.0)).collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
        for a in 0..N as u32 {
            for b in 0..N as u32 {
                let want = model.contains(&(a.min(b), a.max(b)));
                prop_assert_eq!(s.contains(Label(a), Label(b)), want);
            }
        }
    }

    #[test]
    fn pairset_union_matches_model(
        xs in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..20),
        ys in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..20),
    ) {
        let build = |ps: &[(u32, u32)]| {
            let mut s = PairSet::empty(N);
            for &(a, b) in ps {
                s.insert(Label(a), Label(b));
            }
            s
        };
        let (sx, sy) = (build(&xs), build(&ys));
        let mut u = sx.clone();
        let changed = u.union_with(&sy);
        prop_assert_eq!(changed, !sy.is_subset(&sx));
        prop_assert!(sx.is_subset(&u) && sy.is_subset(&u));
        let mut expected: BTreeSet<(u32, u32)> = BTreeSet::new();
        for s in [&sx, &sy] {
            expected.extend(s.iter_pairs().map(|(a, b)| (a.0, b.0)));
        }
        prop_assert_eq!(u.len(), expected.len());
        // Idempotent.
        let mut u2 = u.clone();
        prop_assert!(!u2.union_with(&sy));
        prop_assert!(!u2.union_with(&sx));
    }

    #[test]
    fn add_lcross_equals_definition(l in 0u32..N as u32, a in labels()) {
        // Lcross(l, A) = symcross({l}, A)  (equation 38).
        let sa = set_of(&a);
        let direct = lcross(N, Label(l), &sa);
        let via_symcross = symcross(&LabelSet::from_labels(N, [Label(l)]), &sa);
        prop_assert_eq!(&direct, &via_symcross);
        let mut incremental = PairSet::empty(N);
        incremental.add_lcross(Label(l), &sa);
        prop_assert_eq!(direct, incremental);
    }

    #[test]
    fn symcross_lemma7_identities(a in labels(), b in labels(), c in labels()) {
        let (sa, sb, sc) = (set_of(&a), set_of(&b), set_of(&c));
        // 7.1: commutativity.
        prop_assert_eq!(symcross(&sa, &sb), symcross(&sb, &sa));
        // 7.2: monotonicity (take a ⊆ a ∪ c).
        let mut big = sa.clone();
        big.union_with(&sc);
        prop_assert!(symcross(&sa, &sb).is_subset(&symcross(&big, &sb)));
        // 7.3: symcross(A, C) ∪ symcross(B, C) = symcross(A ∪ B, C).
        let mut lhs = symcross(&sa, &sc);
        lhs.union_with(&symcross(&sb, &sc));
        let mut ab = sa.clone();
        ab.union_with(&sb);
        prop_assert_eq!(lhs, symcross(&ab, &sc));
        // Membership semantics: (x, y) ∈ symcross(A, B) iff
        // (x∈A ∧ y∈B) ∨ (x∈B ∧ y∈A).
        let m = symcross(&sa, &sb);
        for x in 0..20u32 {
            for y in 0..20u32 {
                let (lx, ly) = (Label(x), Label(y));
                let want = (sa.contains(lx) && sb.contains(ly))
                    || (sb.contains(lx) && sa.contains(ly));
                prop_assert_eq!(m.contains(lx, ly), want);
            }
        }
    }

    #[test]
    fn add_symcross_is_incremental_union(a in labels(), b in labels(), c in labels(), d in labels()) {
        // Applying two symcrosses incrementally equals building each and
        // unioning.
        let (sa, sb, sc, sd) = (set_of(&a), set_of(&b), set_of(&c), set_of(&d));
        let mut inc = PairSet::empty(N);
        inc.add_symcross(&sa, &sb);
        inc.add_symcross(&sc, &sd);
        let mut whole = symcross(&sa, &sb);
        whole.union_with(&symcross(&sc, &sd));
        prop_assert_eq!(inc, whole);
    }

    #[test]
    fn partners_and_row_intersects_agree(
        pairs in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..25),
        probe in 0u32..N as u32,
        set in labels(),
    ) {
        let mut s = PairSet::empty(N);
        for &(a, b) in &pairs {
            s.insert(Label(a), Label(b));
        }
        let row = s.partners(Label(probe));
        let q = set_of(&set);
        prop_assert_eq!(s.row_intersects(Label(probe), &q), row.intersects(&q));
        for l in row.iter() {
            prop_assert!(s.contains(Label(probe), l));
        }
    }
}
