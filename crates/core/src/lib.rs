//! # fx10-core
//!
//! The paper's primary contribution: a **modular, context-sensitive
//! may-happen-in-parallel (MHP) analysis** for FX10, implemented both as
//!
//! 1. the **type system** of Figure 4 (rules 45–56) — structural,
//!    syntax-directed typing computing a method summary `(M, O)` per
//!    method ([`typesystem`]), and
//! 2. the **set-constraint formulation** of §5 (constraints 57–82) with
//!    the three-phase iterative fixed-point solver of §5.3
//!    (Slabels equations → level-1 → level-2) ([`gen`], [`solver`]),
//!
//! which Theorem 4 proves equivalent — and this crate tests as such.
//!
//! Also provided:
//! - the abstract domains `LabelSet` / `LabelPairSet` as dense bitsets
//!   ([`sets`]), matching the representation assumed by the paper's
//!   `O(n⁶)` complexity analysis,
//! - the nine helper functions of Figure 3 (`Slabels` in [`slabels`];
//!   `symcross`/`Lcross`/`Scross` as [`sets::PairSet`] bulk operations;
//!   `FSlabels`/`FTlabels`/`parallel` live with the semantics),
//! - the **context-insensitive baseline** of §7 (constraints 83–84),
//! - async-body pair reporting with the paper's *self*/*same*/*diff*
//!   categories (Figure 8) in [`report`],
//! - a race-detector client built on MHP ([`race`]) — the downstream use
//!   the paper motivates,
//! - the high-level driver [`analyze`] / [`analyze_ci`] with iteration,
//!   constraint-count and space accounting for Figures 6, 8 and 9.

#![warn(missing_docs)]
pub mod analysis;
pub mod gen;
pub mod index;
pub mod race;
pub mod report;
pub mod scc;
pub mod sets;
pub mod slabels;
pub mod solver;
pub mod typesystem;

pub use analysis::{
    analyze, analyze_ci, analyze_with, analyze_with_budget, analyze_with_fallback,
    analyze_with_faults, Analysis, AnalysisPath, AnalysisStats, FallbackOutcome, LadderRung,
    PruneReport, SolverKind, SoundnessReport, SupervisedAnswer, Supervisor,
};
pub use gen::Mode;
pub use index::{StmtId, StmtIndex, StmtKind};
pub use sets::{LabelSet, PairSet};
pub use slabels::SlabelsResult;
pub use typesystem::{infer_types, typecheck, MethodSummary, TypeEnv};
