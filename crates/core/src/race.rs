//! A data-race detector built on the MHP analysis.
//!
//! The paper motivates MHP analysis as "a good basis for other analyses
//! such as race detectors" (§1, citing Choi et al.). This module is that
//! client: two instructions race when they may happen in parallel, access
//! the same array cell, and at least one writes it.
//!
//! FX10 accesses: `a[d] = e` writes `d` (and reads `d'` when `e` is
//! `a[d'] + 1`); `while (a[d] != 0)` reads `d`.

use crate::analysis::Analysis;
use fx10_syntax::{Expr, InstrKind, Label, Program};

/// How an instruction touches a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// The instruction reads the cell.
    Read,
    /// The instruction writes the cell.
    Write,
}

/// One access of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The instruction's label.
    pub label: Label,
    /// The array index.
    pub index: usize,
    /// Read or write.
    pub kind: AccessKind,
}

/// A potential race: two parallel accesses to one cell, one a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// First access (label order: `first.label <= second.label`).
    pub first: Access,
    /// Second access.
    pub second: Access,
}

/// Collects every array access of the program.
pub fn accesses(p: &Program) -> Vec<Access> {
    let mut out = Vec::new();
    p.for_each_instr(|_, i| match &i.kind {
        InstrKind::Assign { idx, expr } => {
            out.push(Access {
                label: i.label,
                index: *idx,
                kind: AccessKind::Write,
            });
            if let Expr::Plus1(d) = expr {
                out.push(Access {
                    label: i.label,
                    index: *d,
                    kind: AccessKind::Read,
                });
            }
        }
        InstrKind::While { idx, .. } => {
            out.push(Access {
                label: i.label,
                index: *idx,
                kind: AccessKind::Read,
            });
        }
        _ => {}
    });
    out
}

/// Reports all potential races of an analyzed program.
///
/// Soundness is inherited from the MHP analysis (Theorem 3): every real
/// race is between instructions that truly happen in parallel, hence the
/// pair is in `M`, hence reported here. Precision likewise: a false race
/// requires an MHP false positive (or an infeasible same-cell path).
pub fn detect_races(p: &Program, a: &Analysis) -> Vec<Race> {
    let acc = accesses(p);
    let mut out = Vec::new();
    for (i, x) in acc.iter().enumerate() {
        for y in acc.iter().skip(i) {
            if x.index != y.index {
                continue;
            }
            if x.kind == AccessKind::Read && y.kind == AccessKind::Read {
                continue;
            }
            // Same-label pairs race only if the label self-overlaps.
            if x.label == y.label {
                // Skip the read/write aliasing of a single instruction
                // with itself unless it can overlap another instance.
                if !a.may_happen_in_parallel(x.label, y.label) {
                    continue;
                }
                // A lone `a[d] = e` instance cannot race with itself; a
                // self-MHP label means two instances, which do race.
            } else if !a.may_happen_in_parallel(x.label, y.label) {
                continue;
            }
            let (first, second) = if x.label <= y.label {
                (*x, *y)
            } else {
                (*y, *x)
            };
            if out.iter().any(|r: &Race| {
                r.first.label == first.label
                    && r.second.label == second.label
                    && r.first.index == first.index
            }) {
                continue;
            }
            out.push(Race { first, second });
        }
    }
    out
}

/// Renders races with label names.
pub fn render_races(p: &Program, races: &[Race]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{} potential race(s):", races.len());
    for r in races {
        let _ = writeln!(
            out,
            "  a[{}]: {} ({:?}) × {} ({:?})",
            r.first.index,
            p.labels().display(r.first.label),
            r.first.kind,
            p.labels().display(r.second.label),
            r.second.kind
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    #[test]
    fn parallel_writes_race() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.index, 0);
    }

    #[test]
    fn finish_protects() {
        let p = Program::parse("def main() { finish { async { a[0] = 1; } } a[0] = 2; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn disjoint_cells_do_not_race() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[1] = 2; }").unwrap();
        assert!(detect_races(&p, &analyze(&p)).is_empty());
    }

    #[test]
    fn read_read_is_not_a_race() {
        let p =
            Program::parse("def main() { async { a[1] = a[0] + 1; } a[2] = a[0] + 1; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        // a[0] is read by both but written by neither; a[1]/a[2] disjoint.
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn write_read_races() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[1] = a[0] + 1; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert_eq!(races.len(), 1);
        let kinds = (races[0].first.kind, races[0].second.kind);
        assert!(kinds.0 != kinds.1 || kinds == (AccessKind::Write, AccessKind::Write));
    }

    #[test]
    fn loop_self_write_races_with_itself() {
        let p = Program::parse(
            "def main() { while (a[1] != 0) { async { a[0] = a[0] + 1; } a[1] = 0; } }",
        )
        .unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert!(
            races
                .iter()
                .any(|r| r.first.label == r.second.label && r.first.index == 0),
            "self race on a[0] expected: {races:?}"
        );
    }

    #[test]
    fn render_mentions_cells() {
        let p = Program::parse("def main() { async { a[3] = 1; } a[3] = 2; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        let txt = render_races(&p, &races);
        assert!(txt.contains("a[3]"), "{txt}");
    }
}
