//! A data-race detector built on the MHP analysis.
//!
//! The paper motivates MHP analysis as "a good basis for other analyses
//! such as race detectors" (§1, citing Choi et al.). This module is that
//! client: two instructions race when they may happen in parallel, access
//! the same array cell, and at least one writes it.
//!
//! FX10 accesses: `a[d] = e` writes `d` (and reads `d'` when `e` is
//! `a[d'] + 1`); `while (a[d] != 0)` reads `d`.

use crate::analysis::Analysis;
use fx10_syntax::{Expr, InstrKind, Label, Program};

/// How an instruction touches a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// The instruction reads the cell.
    Read,
    /// The instruction writes the cell.
    Write,
}

/// One access of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The instruction's label.
    pub label: Label,
    /// The array index.
    pub index: usize,
    /// Read or write.
    pub kind: AccessKind,
}

/// A potential race: two parallel accesses to one cell, one a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// First access (label order: `first.label <= second.label`).
    pub first: Access,
    /// Second access.
    pub second: Access,
}

impl Race {
    /// True when both sides write the cell (write-write race); false for
    /// read-write.
    pub fn is_write_write(&self) -> bool {
        self.first.kind == AccessKind::Write && self.second.kind == AccessKind::Write
    }
}

/// Collects every array access of the program.
pub fn accesses(p: &Program) -> Vec<Access> {
    let mut out = Vec::new();
    p.for_each_instr(|_, i| match &i.kind {
        InstrKind::Assign { idx, expr } => {
            out.push(Access {
                label: i.label,
                index: *idx,
                kind: AccessKind::Write,
            });
            if let Expr::Plus1(d) = expr {
                out.push(Access {
                    label: i.label,
                    index: *d,
                    kind: AccessKind::Read,
                });
            }
        }
        InstrKind::While { idx, .. } => {
            out.push(Access {
                label: i.label,
                index: *idx,
                kind: AccessKind::Read,
            });
        }
        _ => {}
    });
    out
}

/// Reports all potential races of an analyzed program.
///
/// Soundness is inherited from the MHP analysis (Theorem 3): every real
/// race is between instructions that truly happen in parallel, hence the
/// pair is in `M`, hence reported here. Precision likewise: a false race
/// requires an MHP false positive (or an infeasible same-cell path).
pub fn detect_races(p: &Program, a: &Analysis) -> Vec<Race> {
    detect_races_with(&accesses(p), |x, y| a.may_happen_in_parallel(x, y))
}

/// The race-pair core, generic over the MHP oracle so every analysis
/// that answers "may `x` and `y` happen in parallel?" — context-sensitive,
/// context-insensitive, the clocked phase-refined MHP, or the dynamic
/// explorer's exact relation — shares one classification path.
///
/// Output is deterministic and deduplicated: sorted by
/// `(first.label, second.label, index)`, symmetric duplicates dropped.
/// When one instruction both reads and writes the contended cell (an
/// `a[d] = a[d] + 1` against a writer), the write-write classification
/// wins: it is the stronger finding for the same instruction pair.
pub fn detect_races_with(acc: &[Access], mhp: impl Fn(Label, Label) -> bool) -> Vec<Race> {
    let mut out: Vec<Race> = Vec::new();
    for (i, x) in acc.iter().enumerate() {
        for y in acc.iter().skip(i) {
            if x.index != y.index {
                continue;
            }
            if x.kind == AccessKind::Read && y.kind == AccessKind::Read {
                continue;
            }
            // Same-label pairs race only if the label self-overlaps: a
            // lone instance cannot race with itself, but a self-MHP label
            // means two instances, which do.
            if !mhp(x.label, y.label) {
                continue;
            }
            let (first, second) = if x.label <= y.label {
                (*x, *y)
            } else {
                (*y, *x)
            };
            out.push(Race { first, second });
        }
    }
    // Deterministic order, strongest kind first within a (pair, cell)
    // group so the dedup below keeps write-write over read-write.
    out.sort_by_key(|r| {
        (
            r.first.label,
            r.second.label,
            r.first.index,
            std::cmp::Reverse((r.first.kind, r.second.kind)),
        )
    });
    out.dedup_by_key(|r| (r.first.label, r.second.label, r.first.index));
    out
}

/// Renders races with label names.
pub fn render_races(p: &Program, races: &[Race]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{} potential race(s):", races.len());
    for r in races {
        let _ = writeln!(
            out,
            "  a[{}]: {} ({:?}) × {} ({:?})",
            r.first.index,
            p.labels().display(r.first.label),
            r.first.kind,
            p.labels().display(r.second.label),
            r.second.kind
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    #[test]
    fn parallel_writes_race() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[0] = 2; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.index, 0);
    }

    #[test]
    fn finish_protects() {
        let p = Program::parse("def main() { finish { async { a[0] = 1; } } a[0] = 2; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn disjoint_cells_do_not_race() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[1] = 2; }").unwrap();
        assert!(detect_races(&p, &analyze(&p)).is_empty());
    }

    #[test]
    fn read_read_is_not_a_race() {
        let p =
            Program::parse("def main() { async { a[1] = a[0] + 1; } a[2] = a[0] + 1; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        // a[0] is read by both but written by neither; a[1]/a[2] disjoint.
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn write_read_races() {
        let p = Program::parse("def main() { async { a[0] = 1; } a[1] = a[0] + 1; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert_eq!(races.len(), 1);
        let kinds = (races[0].first.kind, races[0].second.kind);
        assert!(kinds.0 != kinds.1 || kinds == (AccessKind::Write, AccessKind::Write));
    }

    #[test]
    fn loop_self_write_races_with_itself() {
        let p = Program::parse(
            "def main() { while (a[1] != 0) { async { a[0] = a[0] + 1; } a[1] = 0; } }",
        )
        .unwrap();
        let races = detect_races(&p, &analyze(&p));
        assert!(
            races
                .iter()
                .any(|r| r.first.label == r.second.label && r.first.index == 0),
            "self race on a[0] expected: {races:?}"
        );
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        // Three parallel writers to a[0] plus a read-modify-write: the
        // report must come out sorted by (first, second, index) with one
        // entry per (pair, cell), write-write winning classification.
        let p = Program::parse(
            "def main() {\n\
               async { a[0] = a[0] + 1; }\n\
               async { a[0] = 2; }\n\
               a[0] = 3;\n\
             }",
        )
        .unwrap();
        let races = detect_races(&p, &analyze(&p));
        let keys: Vec<_> = races
            .iter()
            .map(|r| (r.first.label, r.second.label, r.first.index))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted, "sorted and free of duplicates: {races:?}");
        // The rmw instruction both reads and writes a[0]; against another
        // writer the write-write classification must win.
        for r in &races {
            assert!(
                r.is_write_write(),
                "all pairs here contain two writers: {r:?}"
            );
        }
    }

    #[test]
    fn generic_pair_logic_honors_the_oracle() {
        let acc = [
            Access {
                label: Label(0),
                index: 0,
                kind: AccessKind::Write,
            },
            Access {
                label: Label(1),
                index: 0,
                kind: AccessKind::Write,
            },
        ];
        // With self-overlap allowed, the self-pairs are reported too.
        assert_eq!(detect_races_with(&acc, |_, _| true).len(), 3);
        assert_eq!(detect_races_with(&acc, |a, b| a != b).len(), 1);
        assert!(detect_races_with(&acc, |_, _| false).is_empty());
    }

    #[test]
    fn render_mentions_cells() {
        let p = Program::parse("def main() { async { a[3] = 1; } a[3] = 2; }").unwrap();
        let races = detect_races(&p, &analyze(&p));
        let txt = render_races(&p, &races);
        assert!(txt.contains("a[3]"), "{txt}");
    }
}
