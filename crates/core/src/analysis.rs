//! The high-level analysis driver: index → `Slabels` → generate →
//! solve level-1 → simplify → solve level-2, i.e. the paper's three-step
//! implementation (§5.3), with the statistics Figures 6, 8 and 9 report.

use crate::gen::{self, GenOutput, Mode};
use crate::index::StmtIndex;
use crate::sets::{LabelSet, PairSet};
use crate::slabels::{compute_slabels_budgeted, SlabelsResult};
use crate::solver::{
    solve_pair_naive_budgeted, solve_pair_worklist_budgeted, solve_set_naive_budgeted,
    solve_set_worklist_budgeted, PairSolution, SetSolution,
};
use fx10_robust::backoff::XorShift64;
use fx10_robust::{Budget, BudgetMeter, CancelToken, Exhaustion, FaultPlan, Fx10Error, Stop};
use fx10_syntax::{FuncId, Label, Program};

/// Which fixed-point algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// The paper's round-robin iteration; pass counts are reported.
    Naive,
    /// Worklist iteration (same solutions, fewer evaluations).
    Worklist,
    /// SCC-condensation level-2 solve (worklist for the set phases).
    Scc,
    /// Multi-threaded SCC-condensation level-2 solve with the given
    /// thread count (worklist for the set phases).
    SccParallel(usize),
}

/// Counters matching the evaluation tables.
#[derive(Debug, Clone, Default)]
pub struct AnalysisStats {
    /// Figure 6 "#constraints / Slabels".
    pub slabels_constraints: usize,
    /// Figure 6 "#constraints / level-1".
    pub level1_constraints: usize,
    /// Figure 6 "#constraints / level-2".
    pub level2_constraints: usize,
    /// Figure 8 "Number of iterations / Slabels".
    pub slabels_passes: usize,
    /// Figure 8 "Number of iterations / level-1".
    pub level1_passes: usize,
    /// Figure 8 "Number of iterations / level-2".
    pub level2_passes: usize,
    /// Constraint evaluations across all three phases.
    pub evals: usize,
    /// Bytes held by all solved sets (Figure 8 "space" analogue).
    pub bytes: usize,
    /// Wall-clock time of the analysis.
    pub millis: f64,
}

/// A solved analysis of one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    mode: Mode,
    idx: StmtIndex,
    slabels: SlabelsResult,
    l1: SetSolution,
    l2: PairSolution,
    gen: GenOutput,
    main: FuncId,
    /// Statistics gathered while solving.
    pub stats: AnalysisStats,
    /// `Some` when a budget cut any phase short: the MHP sets are then a
    /// (still useful) under-approximation of the analysis's answer and
    /// must not be treated as a proof of race freedom.
    pub exhausted: Option<Exhaustion>,
}

/// Runs the paper's context-sensitive analysis with the naive
/// (iteration-counting) solver.
pub fn analyze(p: &Program) -> Analysis {
    analyze_with(p, Mode::ContextSensitive, SolverKind::Naive)
}

/// Runs the §7 context-insensitive baseline (naive solver).
pub fn analyze_ci(p: &Program) -> Analysis {
    analyze_with(
        p,
        Mode::ContextInsensitive { keep_scross: true },
        SolverKind::Naive,
    )
}

/// Runs the analysis with explicit mode and solver choice. Infallible
/// legacy entry point (unlimited budget).
pub fn analyze_with(p: &Program, mode: Mode, solver: SolverKind) -> Analysis {
    // An unlimited budget and an uncancellable token cannot trip, so the
    // budgeted path cannot return Err here.
    analyze_with_budget(p, mode, solver, Budget::unlimited(), &CancelToken::new())
        .expect("analysis with an unlimited budget cannot fail")
}

/// Runs the analysis under a [`Budget`], observing `cancel`.
///
/// Budget exhaustion in any phase stops that phase, tags the result
/// ([`Analysis::exhausted`]) and *skips the remaining solver work* (the
/// already-solved prefix is kept; unsolved variables stay empty), so the
/// caller always gets a typed, partial answer. Cancellation and worker
/// panics return `Err`.
pub fn analyze_with_budget(
    p: &Program,
    mode: Mode,
    solver: SolverKind,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<Analysis, Fx10Error> {
    analyze_with_faults(p, mode, solver, budget, cancel, &FaultPlan::none())
}

/// [`analyze_with_budget`] plus a [`FaultPlan`] for the parallel level-2
/// solver — the entry point the fault-injection harness drives.
pub fn analyze_with_faults(
    p: &Program,
    mode: Mode,
    solver: SolverKind,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
) -> Result<Analysis, Fx10Error> {
    let start = std::time::Instant::now();
    let mut meter = BudgetMeter::new(budget, cancel.clone());
    let idx = StmtIndex::build(p);
    // Step 1: solve the Slabels equations.
    let slabels = compute_slabels_budgeted(&idx, solver == SolverKind::Naive, &mut meter)?;
    // Phase boundary: cancellation unwinds; a tripped deadline is
    // recorded in the meter and the remaining phases short-circuit on
    // their own polls, keeping the partial-result contract.
    if let Err(stop @ Stop::Cancelled) = meter.checkpoint() {
        return Err(stop.into());
    }
    // Step 2: generate and solve the level-1 constraints.
    let gen = gen::generate(p, &idx, &slabels, mode);
    let l1 = match solver {
        SolverKind::Naive => solve_set_naive_budgeted(&gen.level1, &mut meter)?,
        _ => solve_set_worklist_budgeted(&gen.level1, &mut meter)?,
    };
    // Phase boundary: cancellation unwinds; a tripped deadline is
    // recorded in the meter and the remaining phases short-circuit on
    // their own polls, keeping the partial-result contract.
    if let Err(stop @ Stop::Cancelled) = meter.checkpoint() {
        return Err(stop.into());
    }
    // Step 3: simplify and solve the level-2 constraints.
    let l2sys = gen::simplify(&gen, &l1, &slabels);
    let l2 = match solver {
        SolverKind::Naive => solve_pair_naive_budgeted(&l2sys, &mut meter)?,
        SolverKind::Worklist => solve_pair_worklist_budgeted(&l2sys, &mut meter)?,
        SolverKind::Scc => crate::scc::solve_pair_scc_budgeted(&l2sys, &mut meter)?,
        SolverKind::SccParallel(t) => {
            let sol = crate::scc::solve_pair_scc_parallel_budgeted(
                &l2sys,
                t,
                meter.budget(),
                cancel,
                faults,
            )?;
            // Settle the crew's shared tick count with the meter; a trip
            // here is already reflected in sol.exhausted.
            let _ = meter.charge(sol.evals as u64);
            sol
        }
    };
    let millis = start.elapsed().as_secs_f64() * 1e3;

    let exhausted = slabels
        .exhausted
        .or(l1.exhausted)
        .or(l2.exhausted)
        .or(meter.exhaustion());
    let stats = AnalysisStats {
        slabels_constraints: slabels.constraint_count,
        level1_constraints: gen.level1.constraints.len(),
        level2_constraints: gen.level2.len(),
        slabels_passes: slabels.passes,
        level1_passes: l1.passes,
        level2_passes: l2.passes,
        evals: slabels.evals + l1.evals + l2.evals,
        bytes: slabels.bytes() + l1.bytes() + l2.bytes(),
        millis,
    };

    Ok(Analysis {
        mode,
        main: p.main(),
        idx,
        slabels,
        l1,
        l2,
        gen,
        stats,
        exhausted,
    })
}

/// Which analysis answered an [`analyze_with_fallback`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisPath {
    /// The context-sensitive analysis completed within its budget.
    ContextSensitive,
    /// The CS analysis exhausted its budget; the context-insensitive
    /// baseline (a sound over-approximation of CS, §7) answered instead.
    ContextInsensitiveFallback,
}

/// The result of [`analyze_with_fallback`].
#[derive(Debug, Clone)]
pub struct FallbackOutcome {
    /// The analysis that produced the final answer.
    pub analysis: Analysis,
    /// Which path answered.
    pub path: AnalysisPath,
    /// What exhausted the CS budget, when the fallback fired.
    pub cs_exhaustion: Option<Exhaustion>,
}

impl FallbackOutcome {
    /// True when the answering analysis is a *complete* fixed point —
    /// the precondition for feasibility-based refinement
    /// ([`Analysis::prune_mhp`]): a budget-cut relation is partial, and
    /// pruning a partial relation could silently drop real pairs twice
    /// over. Holds on the fallback path too, provided the CI run itself
    /// completed (it is then a sound, complete over-approximation).
    pub fn supports_pruning(&self) -> bool {
        self.analysis.exhausted.is_none()
    }
}

/// The outcome of [`Analysis::prune_mhp`]: the surviving pair set and
/// the pairs the feasibility oracle removed.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// `M` restricted to pairs whose both labels are feasible.
    pub kept: PairSet,
    /// Removed pairs, unordered (`a <= b`), sorted and deduplicated.
    pub pruned: Vec<(Label, Label)>,
}

impl PruneReport {
    /// May `a` and `b` happen in parallel after pruning?
    pub fn may_happen_in_parallel(&self, a: Label, b: Label) -> bool {
        self.kept.contains(a, b)
    }
}

/// Graceful degradation: runs the context-sensitive analysis under
/// `cs_budget`; if any phase exhausts the budget, falls back to the
/// cheaper context-insensitive baseline under `ci_budget` — a sound
/// over-approximation of the CS answer (§7), so "no race found" claims
/// stay conservative. The outcome records which path answered.
pub fn analyze_with_fallback(
    p: &Program,
    solver: SolverKind,
    cs_budget: Budget,
    ci_budget: Budget,
    cancel: &CancelToken,
) -> Result<FallbackOutcome, Fx10Error> {
    let cs = analyze_with_budget(p, Mode::ContextSensitive, solver, cs_budget, cancel)?;
    if cs.exhausted.is_none() {
        return Ok(FallbackOutcome {
            analysis: cs,
            path: AnalysisPath::ContextSensitive,
            cs_exhaustion: None,
        });
    }
    let cs_exhaustion = cs.exhausted;
    let ci = analyze_with_budget(
        p,
        Mode::ContextInsensitive { keep_scross: true },
        solver,
        ci_budget,
        cancel,
    )?;
    Ok(FallbackOutcome {
        analysis: ci,
        path: AnalysisPath::ContextInsensitiveFallback,
        cs_exhaustion,
    })
}

impl Analysis {
    /// Which analysis produced this result.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The statement index the analysis was run over.
    pub fn index(&self) -> &StmtIndex {
        &self.idx
    }

    /// The solved `Slabels` function.
    pub fn slabels(&self) -> &SlabelsResult {
        &self.slabels
    }

    /// The generated constraint systems (for rendering, Figure 5).
    pub fn generated(&self) -> &GenOutput {
        &self.gen
    }

    /// `M` of the main method — by Theorem 3 a conservative approximation
    /// of `MHP(p)`.
    pub fn mhp(&self) -> &PairSet {
        self.mhp_of(self.main)
    }

    /// `M_i` of a method.
    pub fn mhp_of(&self, f: FuncId) -> &PairSet {
        self.l2.get(self.gen.layout.mi(f))
    }

    /// `O_i` of a method: labels that may still be executing when a call
    /// to it returns.
    pub fn o_of(&self, f: FuncId) -> &LabelSet {
        self.l1.get(self.gen.layout.oi(f))
    }

    /// `m_s` of a statement.
    pub fn m_of_stmt(&self, s: crate::index::StmtId) -> &PairSet {
        self.l2.get(self.gen.layout.m(s))
    }

    /// `r_s` / `o_s` of a statement.
    pub fn r_of_stmt(&self, s: crate::index::StmtId) -> &LabelSet {
        self.l1.get(self.gen.layout.r(s))
    }

    /// `o_s` of a statement.
    pub fn o_of_stmt(&self, s: crate::index::StmtId) -> &LabelSet {
        self.l1.get(self.gen.layout.o(s))
    }

    /// May the instructions labeled `a` and `b` happen in parallel?
    pub fn may_happen_in_parallel(&self, a: Label, b: Label) -> bool {
        self.mhp().contains(a, b)
    }

    /// Refines `M` with a label-feasibility oracle: a pair survives only
    /// when *both* labels are feasible (reachable in some execution).
    ///
    /// The oracle is typically a value analysis (e.g. `fx10-absint`'s
    /// guard-feasibility facts); this crate stays agnostic of where the
    /// predicate comes from. Soundness: dropping a pair with an
    /// infeasible end cannot lose a dynamic pair, because a dynamic MHP
    /// pair requires both labels to be front labels of a *reachable*
    /// state. The caller is responsible for gating on completeness — a
    /// feasibility claim derived from a budget-cut analysis proves
    /// nothing, and this method must not be called with one.
    pub fn prune_mhp(&self, feasible: impl Fn(Label) -> bool) -> PruneReport {
        let n = self.mhp().universe();
        let mut kept = PairSet::empty(n);
        let mut pruned = Vec::new();
        for (a, b) in self.mhp().iter_pairs() {
            if feasible(a) && feasible(b) {
                kept.insert(a, b);
            } else {
                pruned.push(if a <= b { (a, b) } else { (b, a) });
            }
        }
        pruned.sort();
        pruned.dedup();
        PruneReport { kept, pruned }
    }

    /// All MHP pairs as (name, name), sorted — convenient for tests and
    /// reports.
    pub fn pairs_named(&self, p: &Program) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .mhp()
            .iter_pairs()
            .map(|(a, b)| {
                let (x, y) = (p.labels().display(a), p.labels().display(b));
                if x <= y {
                    (x, y)
                } else {
                    (y, x)
                }
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Checks **Theorem 2 soundness** (`dynamic ⊆ static`) against a set
    /// of ground-truth pairs — typically the dynamic MHP union produced
    /// by the explorer (any engine, any worker count; the explorers'
    /// results are schedule-independent).
    ///
    /// Every dynamic pair absent from the static `M` is a soundness
    /// violation and is returned in [`SoundnessReport::missing`]. The
    /// check is order-insensitive: `(a, b)` and `(b, a)` are the same
    /// pair.
    pub fn check_soundness<'a, I>(&self, dynamic: I) -> SoundnessReport
    where
        I: IntoIterator<Item = &'a (Label, Label)>,
    {
        let mut checked = 0usize;
        let mut missing = Vec::new();
        for &(a, b) in dynamic {
            checked += 1;
            if !self.may_happen_in_parallel(a, b) && !self.may_happen_in_parallel(b, a) {
                missing.push(if a <= b { (a, b) } else { (b, a) });
            }
        }
        missing.sort();
        missing.dedup();
        SoundnessReport {
            checked,
            missing,
            static_pairs: self.mhp().len(),
        }
    }

    /// Builds the type environment `E = { f_i ↦ (M_i, O_i) }` from the
    /// constraint solution — the `φ extends E` direction of Theorem 4.
    pub fn type_env(&self) -> crate::typesystem::TypeEnv {
        let u = self.idx.method_count();
        crate::typesystem::TypeEnv::new(
            (0..u)
                .map(|i| {
                    let f = FuncId(i as u32);
                    crate::typesystem::MethodSummary {
                        m: self.mhp_of(f).clone(),
                        o: self.o_of(f).clone(),
                    }
                })
                .collect(),
        )
    }
}

/// The verdict of [`Analysis::check_soundness`]: how a dynamic
/// (explorer-observed) MHP set relates to the static `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoundnessReport {
    /// Dynamic pairs checked.
    pub checked: usize,
    /// Dynamic pairs **not** covered by the static analysis — any entry
    /// here falsifies Theorem 2 and is a bug.
    pub missing: Vec<(Label, Label)>,
    /// Size of the static `M` the pairs were checked against (for
    /// precision-gap reporting: `static_pairs - checked` over-approximated
    /// pairs when the dynamic set is exact).
    pub static_pairs: usize,
}

impl SoundnessReport {
    /// Did `dynamic ⊆ static` hold?
    pub fn is_sound(&self) -> bool {
        self.missing.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The supervised degradation ladder
// ---------------------------------------------------------------------------

/// Which rung of the [`Supervisor`]'s degradation ladder produced the
/// final answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// The multi-process shard fleet finished: the answer is the *exact*
    /// dynamic MHP relation, computed across supervised worker
    /// processes (possibly surviving restarts and migrations).
    ShardedExplore,
    /// The multi-threaded durable explorer finished: the answer is the
    /// *exact* dynamic MHP relation.
    ParallelExplore,
    /// The parallel explorer kept failing (stalls, panics); the
    /// single-threaded explorer answered instead — still exact, just
    /// slower.
    SequentialExplore,
    /// Dynamic exploration was infeasible within the budget; the
    /// context-sensitive static analysis answered with a sound
    /// over-approximation (Theorem 2/3).
    ContextSensitive,
    /// Even the CS analysis exhausted its budget; the context-insensitive
    /// baseline (§7) answered — the coarsest sound rung, never refused.
    ContextInsensitive,
}

impl std::fmt::Display for LadderRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderRung::ShardedExplore => write!(f, "sharded-explore"),
            LadderRung::ParallelExplore => write!(f, "parallel-explore"),
            LadderRung::SequentialExplore => write!(f, "sequential-explore"),
            LadderRung::ContextSensitive => write!(f, "context-sensitive"),
            LadderRung::ContextInsensitive => write!(f, "context-insensitive"),
        }
    }
}

impl LadderRung {
    /// True for the rungs whose MHP set is the exact dynamic relation
    /// (the static rungs only over-approximate it).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            LadderRung::ShardedExplore
                | LadderRung::ParallelExplore
                | LadderRung::SequentialExplore
        )
    }
}

/// The result of a supervised run: the MHP answer plus the provenance
/// needed to interpret it.
#[derive(Debug, Clone)]
pub struct SupervisedAnswer {
    /// The rung that produced [`pairs`](SupervisedAnswer::pairs).
    pub rung: LadderRung,
    /// Human-readable log of every descent, retry and backoff the
    /// supervisor performed, in order.
    pub trace: Vec<String>,
    /// The MHP pairs of the answering rung, each normalized to
    /// `(min, max)` label order. Exact when
    /// [`rung.is_dynamic()`](LadderRung::is_dynamic), a sound
    /// over-approximation otherwise.
    pub pairs: std::collections::BTreeSet<(Label, Label)>,
    /// Theorem 1's deadlock-freedom verdict — only the dynamic rungs
    /// observe it, so it is `None` on the static rungs.
    pub deadlock_free: Option<bool>,
    /// What (if anything) exhausted the answering rung's budget. Only the
    /// final rung may answer while exhausted; every other rung descends
    /// instead.
    pub exhausted: Option<Exhaustion>,
    /// Worker-process restarts the sharded rung performed (0 when that
    /// rung did not run).
    pub shard_restarts: u32,
    /// Shard migrations the sharded rung performed (0 when that rung
    /// did not run).
    pub shard_migrations: u32,
}

/// What one sharded-exploration attempt produced — the multi-process
/// analogue of [`fx10_semantics::Exploration`], plus the supervision
/// provenance (`events`, restart and migration counts) the answer must
/// carry.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The dynamic MHP pairs, `(min, max)`-normalized.
    pub pairs: std::collections::BTreeSet<(Label, Label)>,
    /// Theorem 1's verdict over every visited state.
    pub deadlock_free: bool,
    /// Did the fleet stop at a budget rather than quiescence?
    pub truncated: bool,
    /// What was exhausted, when truncated.
    pub exhausted: Option<Exhaustion>,
    /// Supervision events (restarts, migrations, quiescence), in order.
    pub events: Vec<String>,
    /// Worker-process restarts performed.
    pub restarts: u32,
    /// Shard migrations performed.
    pub migrations: u32,
}

/// The boxed backend signature of a [`ShardRunner`]:
/// `(program, input, cancel) → outcome`.
pub type ShardBackend = std::sync::Arc<
    dyn Fn(&Program, &[i64], &CancelToken) -> Result<ShardOutcome, Fx10Error> + Send + Sync,
>;

/// A pluggable multi-process exploration backend for the ladder's top
/// rung. The supervisor crate cannot spawn `fx10 shard-worker` itself
/// (it does not know the binary), so the CLI injects a closure that
/// does; library users without a worker binary simply leave it unset.
#[derive(Clone)]
pub struct ShardRunner(
    /// The backend closure.
    pub ShardBackend,
);

impl std::fmt::Debug for ShardRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShardRunner(..)")
    }
}

/// The supervised degradation ladder (the "if it crashes, answer anyway"
/// driver):
///
/// 1. **parallel-explore** — the durable multi-threaded explorer with a
///    heartbeat watchdog; on stall or panic, bounded retries with
///    decorrelated-jitter backoff and a halved crew, resuming from the
///    last durable checkpoint when one is on disk;
/// 2. **sequential-explore** — the single-threaded oracle, immune to the
///    crew's failure modes, run under `catch_unwind`;
/// 3. **context-sensitive** — the paper's static analysis (sound
///    over-approximation, Theorem 2/3);
/// 4. **context-insensitive** — the §7 baseline; the last rung answers
///    even when exhausted.
///
/// Truncation on a dynamic rung descends straight to the static rungs (a
/// truncated dynamic MHP set is only a lower bound, while the static
/// answer is a sound upper bound). Cancellation always propagates —
/// the user asked to stop, the ladder must not "help".
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Crew size for the first parallel-explore attempt (halved on each
    /// retry, floor 1).
    pub jobs: usize,
    /// How many times to retry the parallel rung after the first failure.
    pub max_retries: usize,
    /// Lower bound of every backoff sleep.
    pub base_backoff: std::time::Duration,
    /// Upper clamp of every backoff sleep.
    pub max_backoff: std::time::Duration,
    /// Heartbeat-frozen duration after which the watchdog declares a
    /// worker stalled.
    pub stall_after: std::time::Duration,
    /// Watchdog poll interval.
    pub poll: std::time::Duration,
    /// Budget applied to every rung (the deadline is absolute, so it is
    /// naturally shared across the whole ladder).
    pub budget: Budget,
    /// Exploration configuration for the dynamic rungs.
    pub explore_config: fx10_semantics::ExploreConfig,
    /// Solver for the static rungs.
    pub solver: SolverKind,
    /// Durable-checkpoint spec for the parallel rung; also the file
    /// retries resume from. `None` disables both.
    pub checkpoint: Option<fx10_semantics::CheckpointSpec>,
    /// Seed for the backoff jitter (any value; zero is remapped).
    pub backoff_seed: u64,
    /// Optional multi-process backend. When set, the ladder gains a top
    /// rung — **sharded-explore** — tried before the in-process
    /// parallel explorer.
    pub shard_runner: Option<ShardRunner>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            jobs: 4,
            max_retries: 2,
            base_backoff: std::time::Duration::from_millis(25),
            max_backoff: std::time::Duration::from_millis(250),
            stall_after: std::time::Duration::from_secs(10),
            poll: std::time::Duration::from_millis(50),
            budget: Budget::unlimited(),
            explore_config: fx10_semantics::ExploreConfig::default(),
            solver: SolverKind::Worklist,
            checkpoint: None,
            backoff_seed: 0x9E37_79B9_7F4A_7C15,
            shard_runner: None,
        }
    }
}

impl Supervisor {
    /// Runs the ladder on `p` with shared-array `input`, descending until
    /// some rung answers. `faults` is handed to every parallel-explore
    /// attempt (the injection harness uses this to force descents); the
    /// lower rungs never see it.
    ///
    /// When a [`ShardRunner`] is installed, the ladder starts one rung
    /// higher: **sharded-explore** → parallel-explore →
    /// sequential-explore → the static rungs. A truncated sharded
    /// answer descends straight to the static rungs (same reasoning as
    /// the parallel rung — a dynamic lower bound cannot be patched by a
    /// smaller machine); any other sharded failure falls through to the
    /// in-process parallel explorer. The answer carries the sharded
    /// rung's restart/migration provenance either way.
    pub fn run(
        &self,
        p: &Program,
        input: &[i64],
        cancel: &CancelToken,
        faults: &FaultPlan,
    ) -> Result<SupervisedAnswer, Fx10Error> {
        let mut trace = Vec::new();
        let mut shard_restarts = 0u32;
        let mut shard_migrations = 0u32;
        if let Some(runner) = &self.shard_runner {
            cancel.check()?;
            match (runner.0)(p, input, cancel) {
                Ok(o) => {
                    for ev in &o.events {
                        trace.push(format!("sharded-explore: {ev}"));
                    }
                    shard_restarts = o.restarts;
                    shard_migrations = o.migrations;
                    if !o.truncated {
                        trace.push(format!(
                            "sharded-explore answered ({} restart(s), {} migration(s))",
                            o.restarts, o.migrations
                        ));
                        return Ok(SupervisedAnswer {
                            rung: LadderRung::ShardedExplore,
                            trace,
                            pairs: o.pairs,
                            deadlock_free: Some(o.deadlock_free),
                            exhausted: None,
                            shard_restarts,
                            shard_migrations,
                        });
                    }
                    let what = o
                        .exhausted
                        .map_or_else(|| "truncated".to_string(), |x| x.to_string());
                    trace.push(format!(
                        "sharded-explore truncated ({what}); descending to the static rungs"
                    ));
                    let mut ans = self.static_rungs(p, cancel, trace)?;
                    ans.shard_restarts = shard_restarts;
                    ans.shard_migrations = shard_migrations;
                    return Ok(ans);
                }
                Err(Fx10Error::Cancelled) => return Err(Fx10Error::Cancelled),
                Err(e) => {
                    trace.push(format!(
                        "sharded-explore failed: {e}; descending to parallel-explore"
                    ));
                }
            }
        }
        let mut ans = self.run_threaded(p, input, cancel, faults, trace)?;
        ans.shard_restarts = shard_restarts;
        ans.shard_migrations = shard_migrations;
        Ok(ans)
    }

    /// Rungs 1–4: the single-machine ladder (parallel-explore
    /// downwards), continuing an existing `trace`.
    fn run_threaded(
        &self,
        p: &Program,
        input: &[i64],
        cancel: &CancelToken,
        faults: &FaultPlan,
        mut trace: Vec<String>,
    ) -> Result<SupervisedAnswer, Fx10Error> {
        let mut rng = XorShift64::new(self.backoff_seed);
        let mut jobs = self.jobs.max(1);
        let mut prev_backoff = self.base_backoff;
        let watchdog = fx10_semantics::WatchdogSpec {
            stall_after: self.stall_after,
            poll: self.poll,
        };

        for attempt in 0..=self.max_retries {
            cancel.check()?;
            // On a retry, resume from the durable checkpoint if one is on
            // disk and actually belongs to this program and configuration.
            let resume = if attempt > 0 {
                self.checkpoint.as_ref().and_then(|spec| {
                    let snap = fx10_semantics::ExplorerSnapshot::load(&spec.path).ok()?;
                    let want = fx10_semantics::snapshot_fingerprint(p, input, &self.explore_config);
                    (snap.fingerprint == want).then_some(snap)
                })
            } else {
                None
            };
            if resume.is_some() {
                trace.push(format!(
                    "parallel-explore attempt {}: resuming from the durable checkpoint",
                    attempt + 1
                ));
            }
            let durability = fx10_semantics::Durability {
                checkpoint: self.checkpoint.clone(),
                resume: resume.as_ref(),
                watchdog: Some(watchdog),
            };
            match fx10_semantics::explore_parallel_durable(
                p,
                input,
                self.explore_config,
                jobs,
                self.budget,
                cancel,
                faults,
                durability,
            ) {
                Ok(e) if !e.truncated => {
                    trace.push(format!(
                        "parallel-explore answered on attempt {} with {jobs} jobs",
                        attempt + 1
                    ));
                    return Ok(SupervisedAnswer {
                        rung: LadderRung::ParallelExplore,
                        trace,
                        pairs: e.mhp,
                        deadlock_free: Some(e.deadlock_free),
                        exhausted: None,
                        shard_restarts: 0,
                        shard_migrations: 0,
                    });
                }
                Ok(e) => {
                    // A truncated dynamic answer is only a lower bound;
                    // retrying with fewer jobs cannot help a budget, so
                    // descend straight to the sound static rungs.
                    let what = e
                        .exhausted
                        .map_or_else(|| "truncated".to_string(), |x| x.to_string());
                    trace.push(format!(
                        "parallel-explore truncated ({what}); descending to the static rungs"
                    ));
                    return self.static_rungs(p, cancel, trace);
                }
                Err(Fx10Error::Cancelled) => return Err(Fx10Error::Cancelled),
                Err(e) => {
                    trace.push(format!(
                        "parallel-explore attempt {} with {jobs} jobs failed: {e}",
                        attempt + 1
                    ));
                    if attempt < self.max_retries {
                        let backoff =
                            rng.backoff(self.base_backoff, prev_backoff, self.max_backoff);
                        prev_backoff = backoff;
                        jobs = (jobs / 2).max(1);
                        trace.push(format!(
                            "backing off {} ms, retrying with {jobs} jobs",
                            backoff.as_millis()
                        ));
                        std::thread::sleep(backoff);
                    }
                }
            }
        }

        // Rung 2: the sequential oracle, shielded from its own panics.
        trace.push("parallel-explore retries exhausted; descending to sequential-explore".into());
        cancel.check()?;
        let seq = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fx10_semantics::explore_budgeted(p, input, self.explore_config, self.budget, cancel)
        }));
        match seq {
            Ok(Ok(e)) if !e.truncated => {
                trace.push("sequential-explore answered".into());
                return Ok(SupervisedAnswer {
                    rung: LadderRung::SequentialExplore,
                    trace,
                    pairs: e.mhp,
                    deadlock_free: Some(e.deadlock_free),
                    exhausted: None,
                    shard_restarts: 0,
                    shard_migrations: 0,
                });
            }
            Ok(Ok(e)) => {
                let what = e
                    .exhausted
                    .map_or_else(|| "truncated".to_string(), |x| x.to_string());
                trace.push(format!("sequential-explore truncated ({what}); descending"));
            }
            Ok(Err(Fx10Error::Cancelled)) => return Err(Fx10Error::Cancelled),
            Ok(Err(e)) => trace.push(format!("sequential-explore failed: {e}; descending")),
            Err(_) => trace.push("sequential-explore panicked; descending".into()),
        }
        self.static_rungs(p, cancel, trace)
    }

    /// Rungs 3 and 4: the static analyses. CS answers unless exhausted;
    /// the CI baseline is the floor and answers unconditionally.
    fn static_rungs(
        &self,
        p: &Program,
        cancel: &CancelToken,
        mut trace: Vec<String>,
    ) -> Result<SupervisedAnswer, Fx10Error> {
        let cs = analyze_with_budget(p, Mode::ContextSensitive, self.solver, self.budget, cancel)?;
        if cs.exhausted.is_none() {
            trace.push("context-sensitive analysis answered".into());
            return Ok(SupervisedAnswer {
                rung: LadderRung::ContextSensitive,
                trace,
                pairs: normalized_pairs(&cs),
                deadlock_free: None,
                exhausted: None,
                shard_restarts: 0,
                shard_migrations: 0,
            });
        }
        trace.push(format!(
            "context-sensitive analysis exhausted its {}; descending to context-insensitive",
            cs.exhausted.expect("checked above")
        ));
        let ci = analyze_with_budget(
            p,
            Mode::ContextInsensitive { keep_scross: true },
            self.solver,
            self.budget,
            cancel,
        )?;
        trace.push("context-insensitive baseline answered (last rung)".into());
        Ok(SupervisedAnswer {
            rung: LadderRung::ContextInsensitive,
            trace,
            pairs: normalized_pairs(&ci),
            deadlock_free: None,
            exhausted: ci.exhausted,
            shard_restarts: 0,
            shard_migrations: 0,
        })
    }
}

/// `M(main)` as a set of `(min, max)`-ordered pairs — the same
/// normalization the explorer's dynamic MHP set uses, so the two compare
/// directly.
fn normalized_pairs(a: &Analysis) -> std::collections::BTreeSet<(Label, Label)> {
    a.mhp()
        .iter_pairs()
        .map(|(x, y)| if x <= y { (x, y) } else { (y, x) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::examples;

    fn pairs(p: &Program, a: &Analysis) -> Vec<(String, String)> {
        a.pairs_named(p)
    }

    fn norm(v: Vec<(&str, &str)>) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = v
            .into_iter()
            .map(|(a, b)| {
                if a <= b {
                    (a.to_string(), b.to_string())
                } else {
                    (b.to_string(), a.to_string())
                }
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn soundness_report_confirms_theorem_2_on_explored_ground_truth() {
        use fx10_semantics::{explore, ExploreConfig};
        for p in [examples::example_2_1(), examples::example_2_2()] {
            let e = explore(&p, &[], ExploreConfig::default());
            assert!(!e.truncated);
            let a = analyze(&p);
            let report = a.check_soundness(e.mhp.iter());
            assert!(
                report.is_sound(),
                "dynamic pairs missing from static M: {:?}",
                report.missing
            );
            assert_eq!(report.checked, e.mhp.len());
            assert!(report.static_pairs >= report.checked);
        }
        // A fabricated pair the analysis never emits must be flagged.
        let p = examples::example_2_1();
        let a = analyze(&p);
        let bogus = (Label(0), Label(0));
        let report = a.check_soundness([&bogus]);
        assert!(!report.is_sound());
        assert_eq!(report.missing, vec![bogus]);
    }

    #[test]
    fn example_2_1_exact_pairs() {
        // §2.1/§5.4: "the output from our constraint solver says correctly
        // that S2 may happen in parallel with each of S5, S6, S7, S8, S11,
        // and S12, as well as with the entire finish statement [S13], that
        // S11 and S12 may happen in parallel, and that S7 and S11 may
        // happen in parallel" — and nothing else.
        let p = examples::example_2_1();
        let a = analyze(&p);
        assert_eq!(pairs(&p, &a), norm(examples::example_2_1_expected_pairs()));
    }

    #[test]
    fn example_2_2_exact_pairs_context_sensitive() {
        let p = examples::example_2_2();
        let a = analyze(&p);
        assert_eq!(pairs(&p, &a), norm(examples::example_2_2_expected_pairs()));
        // In particular, no (S3, S4).
        let s3 = p.labels().lookup("S3").unwrap();
        let s4 = p.labels().lookup("S4").unwrap();
        assert!(!a.may_happen_in_parallel(s3, s4));
    }

    #[test]
    fn example_2_2_ci_adds_exactly_the_spurious_pairs() {
        let p = examples::example_2_2();
        let ci = analyze_ci(&p);
        let mut expected = examples::example_2_2_expected_pairs();
        expected.extend(examples::example_2_2_ci_extra_pairs());
        assert_eq!(pairs(&p, &ci), norm(expected));
        let s3 = p.labels().lookup("S3").unwrap();
        let s4 = p.labels().lookup("S4").unwrap();
        assert!(ci.may_happen_in_parallel(s3, s4), "the CI false positive");
    }

    #[test]
    fn ci_dropping_scross_changes_nothing() {
        // §7: "for a context-insensitive analysis we can remove
        // Scross_p(p(f_i), R) from Rule (82) without changing the
        // analysis."
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::add_twice(),
            examples::same_category(),
        ] {
            let with = analyze_with(
                &p,
                Mode::ContextInsensitive { keep_scross: true },
                SolverKind::Naive,
            );
            let without = analyze_with(
                &p,
                Mode::ContextInsensitive { keep_scross: false },
                SolverKind::Naive,
            );
            assert_eq!(with.mhp(), without.mhp());
        }
    }

    #[test]
    fn cs_is_subset_of_ci() {
        // The CI analysis is strictly more conservative.
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
            examples::self_category(),
        ] {
            let cs = analyze(&p);
            let ci = analyze_ci(&p);
            assert!(cs.mhp().is_subset(ci.mhp()));
        }
    }

    #[test]
    fn naive_and_worklist_agree_on_solutions() {
        for p in [examples::example_2_1(), examples::example_2_2()] {
            let a = analyze_with(&p, Mode::ContextSensitive, SolverKind::Naive);
            let b = analyze_with(&p, Mode::ContextSensitive, SolverKind::Worklist);
            assert_eq!(a.mhp(), b.mhp());
            for f in 0..p.method_count() {
                let f = FuncId(f as u32);
                assert_eq!(a.o_of(f), b.o_of(f));
                assert_eq!(a.mhp_of(f), b.mhp_of(f));
            }
        }
    }

    #[test]
    fn loop_self_pair_is_found() {
        let p = examples::self_category();
        let a = analyze(&p);
        let s1 = p.labels().lookup("S1").unwrap();
        assert!(a.may_happen_in_parallel(s1, s1), "loop async body × itself");
    }

    #[test]
    fn same_category_pairs_found() {
        let p = examples::same_category();
        let a = analyze(&p);
        let s1 = p.labels().lookup("S1").unwrap();
        let s2 = p.labels().lookup("S2").unwrap();
        assert!(a.may_happen_in_parallel(s1, s2));
    }

    #[test]
    fn conclusion_false_positive_is_reported_statically() {
        // The analysis assumes loop bodies execute ≥ 2 times, so it
        // reports (S1, S2) even though the loop is dead — the paper's one
        // identified false-positive pattern (§8).
        let p = examples::conclusion_false_positive();
        let a = analyze(&p);
        let s1 = p.labels().lookup("S1").unwrap();
        let s2 = p.labels().lookup("S2").unwrap();
        assert!(a.may_happen_in_parallel(s1, s2));
    }

    #[test]
    fn ladder_answers_on_the_parallel_rung_when_nothing_fails() {
        use fx10_semantics::{explore, ExploreConfig};
        let p = examples::example_2_2();
        let sup = Supervisor {
            jobs: 2,
            ..Supervisor::default()
        };
        let ans = sup
            .run(&p, &[], &CancelToken::new(), &FaultPlan::none())
            .expect("ladder never refuses on a healthy run");
        assert_eq!(ans.rung, LadderRung::ParallelExplore);
        assert!(ans.rung.is_dynamic());
        assert_eq!(ans.deadlock_free, Some(true));
        assert_eq!(ans.exhausted, None);
        let reference = explore(&p, &[], ExploreConfig::default());
        assert_eq!(ans.pairs, reference.mhp);
        assert!(ans.trace.iter().any(|l| l.contains("answered")));
    }

    #[test]
    fn ladder_descends_to_sequential_when_every_parallel_attempt_stalls() {
        use fx10_robust::PanicFault;
        use fx10_semantics::{explore, ExploreConfig};
        let p = examples::example_2_1();
        let sup = Supervisor {
            jobs: 2,
            max_retries: 1,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(5),
            stall_after: std::time::Duration::from_millis(150),
            poll: std::time::Duration::from_millis(10),
            ..Supervisor::default()
        };
        // Worker 0 wedges immediately on every attempt, so the watchdog
        // fires, the retry wedges again, and the sequential rung answers.
        let faults = FaultPlan {
            wedge_worker: Some(PanicFault {
                worker: 0,
                after_states: 0,
            }),
            ..FaultPlan::none()
        };
        let ans = sup
            .run(&p, &[], &CancelToken::new(), &faults)
            .expect("the sequential rung absorbs the stalls");
        assert_eq!(ans.rung, LadderRung::SequentialExplore);
        assert_eq!(ans.deadlock_free, Some(true));
        let reference = explore(&p, &[], ExploreConfig::default());
        assert_eq!(ans.pairs, reference.mhp);
        assert!(
            ans.trace.iter().any(|l| l.contains("stalled")),
            "trace must record the stall: {:?}",
            ans.trace
        );
        assert!(ans.trace.iter().any(|l| l.contains("backing off")));
    }

    #[test]
    fn ladder_descends_to_static_rungs_on_truncation() {
        let p = examples::example_2_2();
        // Two states are never enough to finish exploring, so both
        // dynamic rungs are skipped over and the CS analysis answers.
        let sup = Supervisor {
            jobs: 1,
            budget: Budget::unlimited().with_max_states(2),
            ..Supervisor::default()
        };
        let ans = sup
            .run(&p, &[], &CancelToken::new(), &FaultPlan::none())
            .expect("static rungs always answer");
        assert_eq!(ans.rung, LadderRung::ContextSensitive);
        assert!(!ans.rung.is_dynamic());
        assert_eq!(ans.deadlock_free, None);
        let reference = analyze(&p);
        assert_eq!(ans.pairs, normalized_pairs(&reference));
    }

    #[test]
    fn ladder_propagates_cancellation() {
        let p = examples::example_2_1();
        let cancel = CancelToken::new();
        cancel.cancel();
        let sup = Supervisor::default();
        assert!(matches!(
            sup.run(&p, &[], &cancel, &FaultPlan::none()),
            Err(Fx10Error::Cancelled)
        ));
    }

    #[test]
    fn decorrelated_backoff_stays_within_its_bounds() {
        use std::time::Duration;
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(100);
        let mut rng = XorShift64::new(42);
        let mut prev = base;
        for _ in 0..1000 {
            let b = rng.backoff(base, prev, cap);
            assert!(b >= base.min(cap), "below base: {b:?}");
            assert!(b <= cap, "above cap: {b:?}");
            prev = b;
        }
        // Jitter actually jitters: not every draw is identical.
        let mut rng = XorShift64::new(7);
        let draws: Vec<_> = (0..32)
            .map(|_| rng.backoff(base, Duration::from_millis(50), cap))
            .collect();
        assert!(draws.iter().any(|d| *d != draws[0]));
    }

    #[test]
    fn stats_are_populated() {
        let p = examples::example_2_1();
        let a = analyze(&p);
        assert_eq!(a.stats.slabels_constraints, a.stats.level2_constraints);
        assert!(a.stats.level1_constraints > a.stats.level2_constraints);
        assert!(a.stats.slabels_passes >= 2);
        assert!(a.stats.level1_passes >= 2);
        assert!(a.stats.level2_passes >= 2);
        assert!(a.stats.bytes > 0);
        assert!(a.stats.evals > 0);
    }
}
