//! Constraint generation (paper §5.1, constraints 57–82; §7, 83–84).
//!
//! For every statement `s` we generate set variables `r_s`, `o_s` (label
//! sets — *level-1*) and `m_s` (label pairs — *level-2*); for every method
//! `f_i`, variables `o_i` and `m_i`. The context-insensitive variant adds
//! `r_i` per method (§7).
//!
//! **Lone instructions.** The paper writes the constraints for `i s₁`
//! forms; the grammar also allows a lone instruction. The lone variants
//! below are exactly the ones the paper's own Figure 5 uses (e.g.
//! `o_{S7} = {S12} ∪ r_{S7}` for the lone `async S12`):
//!
//! ```text
//! lone skip/assign:  o_s = r_s
//! lone while:        o_s = o_{body}
//! lone async:        r_{body} = r_s          o_s = Slabels(body) ∪ r_s
//! lone finish:       r_{body} = r_s          o_s = r_s
//! lone call:         o_s = r_s ∪ o_i
//! ```
//!
//! with the `m_s` constraint in each case dropping the missing `m` of the
//! continuation.
//!
//! Level-2 constraints are generated *symbolically* (label-set arguments
//! refer to level-1 variables or Slabels entries) and
//! [simplified](simplify) into constants once level-1 is solved — the
//! paper's three-phase implementation strategy (§5.3).

use crate::index::{StmtId, StmtIndex, StmtKind};
use crate::slabels::SlabelsResult;
use crate::solver::{
    PairConstraint, PairSystem, PairTerm, PairVar, SetConstraint, SetSolution, SetSystem, SetTerm,
    SetVar,
};
use fx10_syntax::{FuncId, Label, Program};

/// Which analysis to generate constraints for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The paper's context-sensitive analysis (§5).
    ContextSensitive,
    /// The §7 baseline: merge `r` information across call sites.
    ///
    /// `keep_scross` retains the `symcross(Slabels(p(f_i)), r_s)` term of
    /// constraint (82); the paper notes it can be removed without changing
    /// the analysis (the pairs re-arise via `r_s ⊆ r_i`), which our
    /// equivalence test verifies.
    ContextInsensitive {
        /// Keep the removable `symcross` term of constraint (82).
        keep_scross: bool,
    },
}

impl Mode {
    /// True for the context-insensitive variant.
    pub fn is_ci(self) -> bool {
        matches!(self, Mode::ContextInsensitive { .. })
    }
}

/// Variable layout for a program with `n` statements and `u` methods.
///
/// Level-1: `r_s = 2s`, `o_s = 2s+1`, `o_i = 2n+i`, and (CI only)
/// `r_i = 2n+u+i`. Level-2: `m_s = s`, `m_i = n+i`.
#[derive(Debug, Clone, Copy)]
pub struct VarLayout {
    /// Number of statements.
    pub n: usize,
    /// Number of methods.
    pub u: usize,
    /// Whether `r_i` variables exist.
    pub ci: bool,
}

impl VarLayout {
    /// `r_s`.
    #[inline]
    pub fn r(&self, s: StmtId) -> SetVar {
        SetVar(2 * s.0)
    }

    /// `o_s`.
    #[inline]
    pub fn o(&self, s: StmtId) -> SetVar {
        SetVar(2 * s.0 + 1)
    }

    /// `o_i`.
    #[inline]
    pub fn oi(&self, f: FuncId) -> SetVar {
        SetVar((2 * self.n + f.index()) as u32)
    }

    /// `r_i` (context-insensitive only).
    #[inline]
    pub fn ri(&self, f: FuncId) -> SetVar {
        debug_assert!(self.ci);
        SetVar((2 * self.n + self.u + f.index()) as u32)
    }

    /// `m_s`.
    #[inline]
    pub fn m(&self, s: StmtId) -> PairVar {
        PairVar(s.0)
    }

    /// `m_i`.
    #[inline]
    pub fn mi(&self, f: FuncId) -> PairVar {
        PairVar((self.n + f.index()) as u32)
    }

    /// Total level-1 variables.
    pub fn level1_vars(&self) -> usize {
        2 * self.n + self.u + if self.ci { self.u } else { 0 }
    }

    /// Total level-2 variables.
    pub fn level2_vars(&self) -> usize {
        self.n + self.u
    }
}

/// A reference to a solved `Slabels` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabRef {
    /// `Slabels_p(s)`.
    Stmt(StmtId),
    /// `Slabels_p(p(f))`.
    Method(FuncId),
}

/// A symbolic level-2 term (before level-1 substitution).
#[derive(Debug, Clone)]
pub enum SymPairTerm {
    /// `Lcross(l, v)` where `v` is a level-1 variable.
    Lcross(Label, SetVar),
    /// `symcross(slab, v)` — covers both `Scross_p(s, v)` (slab = that
    /// statement's Slabels) and `symcross(Slabels_p(p(f_i)), v)`.
    Symcross(SlabRef, SetVar),
    /// Another m-variable.
    MVar(PairVar),
}

/// `lhs ⊇ union(terms)` over pair sets, symbolically.
#[derive(Debug, Clone)]
pub struct SymPairConstraint {
    /// The constrained m-variable.
    pub lhs: PairVar,
    /// Right-hand-side terms, joined by union.
    pub terms: Vec<SymPairTerm>,
}

/// The generated constraint systems.
#[derive(Debug, Clone)]
pub struct GenOutput {
    /// Variable layout shared by both levels.
    pub layout: VarLayout,
    /// The level-1 system (r/o variables).
    pub level1: SetSystem,
    /// The symbolic level-2 system (m variables).
    pub level2: Vec<SymPairConstraint>,
    /// Which analysis these constraints encode.
    pub mode: Mode,
}

/// Generates the constraint systems for `p` under `mode`.
pub fn generate(p: &Program, idx: &StmtIndex, slab: &SlabelsResult, mode: Mode) -> GenOutput {
    debug_assert_eq!(p.label_count(), idx.len());
    let layout = VarLayout {
        n: idx.len(),
        u: idx.method_count(),
        ci: mode.is_ci(),
    };
    let mut l1: Vec<SetConstraint> = Vec::new();
    let mut l2: Vec<SymPairConstraint> = Vec::new();

    // Per-method constraints (57)–(59) / CI (84).
    for f in 0..layout.u {
        let f = FuncId(f as u32);
        let body = idx.method_body(f);
        match mode {
            Mode::ContextSensitive => {
                // (57) r_{s_i} = ∅.
                l1.push(SetConstraint {
                    lhs: layout.r(body),
                    terms: vec![],
                });
            }
            Mode::ContextInsensitive { .. } => {
                // (84) r_{s_i} = r_i.
                l1.push(SetConstraint {
                    lhs: layout.r(body),
                    terms: vec![SetTerm::Var(layout.ri(f))],
                });
            }
        }
        // (58) o_i = o_{s_i}.
        l1.push(SetConstraint {
            lhs: layout.oi(f),
            terms: vec![SetTerm::Var(layout.o(body))],
        });
        // (59) m_i = m_{s_i}.
        l2.push(SymPairConstraint {
            lhs: layout.mi(f),
            terms: vec![SymPairTerm::MVar(layout.m(body))],
        });
    }

    // Per-statement constraints.
    for s in idx.ids() {
        let info = idx.info(s);
        let l = s.label();
        let tail = info.tail;
        match info.kind {
            // skip / assignment: (60)–(61) lone, (62)–(64) sequenced.
            StmtKind::Simple => match tail {
                None => {
                    l1.push(SetConstraint {
                        lhs: layout.o(s),
                        terms: vec![SetTerm::Var(layout.r(s))],
                    });
                    l2.push(SymPairConstraint {
                        lhs: layout.m(s),
                        terms: vec![SymPairTerm::Lcross(l, layout.r(s))],
                    });
                }
                Some(t) => {
                    l1.push(SetConstraint {
                        lhs: layout.r(t),
                        terms: vec![SetTerm::Var(layout.r(s))],
                    });
                    l1.push(SetConstraint {
                        lhs: layout.o(s),
                        terms: vec![SetTerm::Var(layout.o(t))],
                    });
                    l2.push(SymPairConstraint {
                        lhs: layout.m(s),
                        terms: vec![
                            SymPairTerm::Lcross(l, layout.r(s)),
                            SymPairTerm::MVar(layout.m(t)),
                        ],
                    });
                }
            },
            // while: (68)–(71).
            StmtKind::While { body } => {
                // (68) r_{s1} = r_s.
                l1.push(SetConstraint {
                    lhs: layout.r(body),
                    terms: vec![SetTerm::Var(layout.r(s))],
                });
                let mut m_terms = vec![
                    SymPairTerm::Lcross(l, layout.o(body)),
                    SymPairTerm::Symcross(SlabRef::Stmt(body), layout.o(body)),
                    SymPairTerm::MVar(layout.m(body)),
                ];
                match tail {
                    None => {
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.o(body))],
                        });
                    }
                    Some(t) => {
                        // (69) r_{s2} = o_{s1}; (70) o_s = o_{s2}.
                        l1.push(SetConstraint {
                            lhs: layout.r(t),
                            terms: vec![SetTerm::Var(layout.o(body))],
                        });
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.o(t))],
                        });
                        m_terms.push(SymPairTerm::MVar(layout.m(t)));
                    }
                }
                // (71).
                l2.push(SymPairConstraint {
                    lhs: layout.m(s),
                    terms: m_terms,
                });
            }
            // async: (72)–(75).
            StmtKind::Async { body } => {
                let mut m_terms = vec![
                    SymPairTerm::Lcross(l, layout.r(s)),
                    SymPairTerm::MVar(layout.m(body)),
                ];
                match tail {
                    None => {
                        // Lone async: r_{s1} = r_s; o_s = Slabels(s1) ∪ r_s.
                        l1.push(SetConstraint {
                            lhs: layout.r(body),
                            terms: vec![SetTerm::Var(layout.r(s))],
                        });
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![
                                SetTerm::Const(slab.stmt(body).clone()),
                                SetTerm::Var(layout.r(s)),
                            ],
                        });
                    }
                    Some(t) => {
                        // (72) r_{s1} = Slabels(s2) ∪ r_s.
                        l1.push(SetConstraint {
                            lhs: layout.r(body),
                            terms: vec![
                                SetTerm::Const(slab.stmt(t).clone()),
                                SetTerm::Var(layout.r(s)),
                            ],
                        });
                        // (73) r_{s2} = Slabels(s1) ∪ r_s.
                        l1.push(SetConstraint {
                            lhs: layout.r(t),
                            terms: vec![
                                SetTerm::Const(slab.stmt(body).clone()),
                                SetTerm::Var(layout.r(s)),
                            ],
                        });
                        // (74) o_s = o_{s2}.
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.o(t))],
                        });
                        m_terms.push(SymPairTerm::MVar(layout.m(t)));
                    }
                }
                // (75).
                l2.push(SymPairConstraint {
                    lhs: layout.m(s),
                    terms: m_terms,
                });
            }
            // finish: (76)–(79).
            StmtKind::Finish { body } => {
                // (76) r_{s1} = r_s.
                l1.push(SetConstraint {
                    lhs: layout.r(body),
                    terms: vec![SetTerm::Var(layout.r(s))],
                });
                let mut m_terms = vec![
                    SymPairTerm::Lcross(l, layout.r(s)),
                    SymPairTerm::MVar(layout.m(body)),
                ];
                match tail {
                    None => {
                        // Lone finish: o_s = r_s (O of the body discarded).
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.r(s))],
                        });
                    }
                    Some(t) => {
                        // (77) r_{s2} = r_s; (78) o_s = o_{s2}.
                        l1.push(SetConstraint {
                            lhs: layout.r(t),
                            terms: vec![SetTerm::Var(layout.r(s))],
                        });
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.o(t))],
                        });
                        m_terms.push(SymPairTerm::MVar(layout.m(t)));
                    }
                }
                // (79).
                l2.push(SymPairConstraint {
                    lhs: layout.m(s),
                    terms: m_terms,
                });
            }
            // call: (80)–(82), plus CI's (83).
            StmtKind::Call { callee } => {
                if mode.is_ci() {
                    // (83) r_s ⊆ r_i, i.e. r_i ⊇ r_s.
                    l1.push(SetConstraint {
                        lhs: layout.ri(callee),
                        terms: vec![SetTerm::Var(layout.r(s))],
                    });
                }
                let keep_scross = match mode {
                    Mode::ContextSensitive => true,
                    Mode::ContextInsensitive { keep_scross } => keep_scross,
                };
                let mut m_terms = vec![SymPairTerm::Lcross(l, layout.r(s))];
                if keep_scross {
                    m_terms.push(SymPairTerm::Symcross(SlabRef::Method(callee), layout.r(s)));
                }
                m_terms.push(SymPairTerm::MVar(layout.mi(callee)));
                match tail {
                    None => {
                        // Lone call: o_s = r_s ∪ o_i.
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.r(s)), SetTerm::Var(layout.oi(callee))],
                        });
                    }
                    Some(t) => {
                        // (80) r_k = r_s ∪ o_i.
                        l1.push(SetConstraint {
                            lhs: layout.r(t),
                            terms: vec![SetTerm::Var(layout.r(s)), SetTerm::Var(layout.oi(callee))],
                        });
                        // (81) o_s = o_k.
                        l1.push(SetConstraint {
                            lhs: layout.o(s),
                            terms: vec![SetTerm::Var(layout.o(t))],
                        });
                        m_terms.push(SymPairTerm::MVar(layout.m(t)));
                    }
                }
                // (82).
                l2.push(SymPairConstraint {
                    lhs: layout.m(s),
                    terms: m_terms,
                });
            }
        }
    }

    // Order level-2 constraints for fast naive-solver convergence: later
    // methods first (callees typically precede callers), later statements
    // first (a suffix's m is computed before the prefixes that union it).
    // Solutions are order-independent; only pass counts change.
    let rank = |lhs: PairVar| -> u64 {
        let (method, sub) = if lhs.index() >= layout.n {
            ((lhs.index() - layout.n) as u32, u32::MAX)
        } else {
            (
                idx.info(StmtId(lhs.0)).method.0,
                (layout.n - lhs.index()) as u32,
            )
        };
        (((layout.u as u32).saturating_sub(1 + method)) as u64) << 32 | sub as u64
    };
    l2.sort_by_key(|c| rank(c.lhs));

    GenOutput {
        layout,
        level1: SetSystem {
            n_vars: layout.level1_vars(),
            universe: idx.len(),
            constraints: l1,
        },
        level2: l2,
        mode,
    }
}

/// Substitutes the level-1 solution into the symbolic level-2 system — the
/// paper's "simplified level-2 constraints" (§5.3).
pub fn simplify(gen: &GenOutput, l1: &SetSolution, slab: &SlabelsResult) -> PairSystem {
    use std::sync::Arc;
    let constraints = gen
        .level2
        .iter()
        .map(|c| PairConstraint {
            lhs: c.lhs,
            terms: c
                .terms
                .iter()
                .map(|t| match t {
                    SymPairTerm::Lcross(l, v) => PairTerm::Lcross(*l, Arc::new(l1.get(*v).clone())),
                    SymPairTerm::Symcross(sr, v) => {
                        let a = match sr {
                            SlabRef::Stmt(s) => slab.stmt(*s).clone(),
                            SlabRef::Method(f) => slab.method(*f).clone(),
                        };
                        PairTerm::Symcross(a, Arc::new(l1.get(*v).clone()))
                    }
                    SymPairTerm::MVar(v) => PairTerm::MVar(*v),
                })
                .collect(),
        })
        .collect();
    PairSystem {
        n_vars: gen.layout.level2_vars(),
        universe: gen.level1.universe,
        constraints,
    }
}

/// Renders the constraint systems with user label names — the shape of
/// the paper's Figure 5.
pub fn render_constraints(p: &Program, idx: &StmtIndex, gen: &GenOutput) -> String {
    use std::fmt::Write;
    let layout = gen.layout;
    let name_of_var = |v: SetVar| -> String {
        let i = v.index();
        if i < 2 * layout.n {
            let s = StmtId((i / 2) as u32);
            let nm = p.labels().display(s.label());
            if i.is_multiple_of(2) {
                format!("r_{nm}")
            } else {
                format!("o_{nm}")
            }
        } else if i < 2 * layout.n + layout.u {
            format!("o[{}]", p.method(FuncId((i - 2 * layout.n) as u32)).name())
        } else {
            format!(
                "r[{}]",
                p.method(FuncId((i - 2 * layout.n - layout.u) as u32))
                    .name()
            )
        }
    };
    let name_of_pvar = |v: PairVar| -> String {
        let i = v.index();
        if i < layout.n {
            format!("m_{}", p.labels().display(Label(i as u32)))
        } else {
            format!("m[{}]", p.method(FuncId((i - layout.n) as u32)).name())
        }
    };
    let fmt_set = |s: &crate::sets::LabelSet| -> String {
        let mut out = String::from("{");
        let mut first = true;
        for l in s.iter() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&p.labels().display(l));
        }
        out.push('}');
        out
    };

    let mut out = String::new();
    let _ = writeln!(out, "level-1 constraints:");
    for c in &gen.level1.constraints {
        let rhs: Vec<String> = c
            .terms
            .iter()
            .map(|t| match t {
                SetTerm::Const(s) => fmt_set(s),
                SetTerm::Var(v) => name_of_var(*v),
            })
            .collect();
        let rhs = if rhs.is_empty() {
            "{}".to_string()
        } else {
            rhs.join(" ∪ ")
        };
        let _ = writeln!(out, "  {} = {}", name_of_var(c.lhs), rhs);
    }
    let _ = writeln!(out, "level-2 constraints:");
    for c in &gen.level2 {
        let rhs: Vec<String> = c
            .terms
            .iter()
            .map(|t| match t {
                SymPairTerm::Lcross(l, v) => {
                    format!("Lcross({}, {})", p.labels().display(*l), name_of_var(*v))
                }
                SymPairTerm::Symcross(sr, v) => {
                    let a = match sr {
                        SlabRef::Stmt(s) => format!("Slabels({})", p.labels().display(s.label())),
                        SlabRef::Method(f) => format!("Slabels({})", p.method(*f).name()),
                    };
                    format!("symcross({}, {})", a, name_of_var(*v))
                }
                SymPairTerm::MVar(v) => name_of_pvar(*v),
            })
            .collect();
        let _ = writeln!(out, "  {} = {}", name_of_pvar(c.lhs), rhs.join(" ∪ "));
    }
    let _ = writeln!(
        out,
        "counts: level-1 = {}, level-2 = {}",
        gen.level1.constraints.len(),
        gen.level2.len()
    );
    let _ = idx;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slabels::compute_slabels;
    use fx10_syntax::examples;

    #[test]
    fn every_level1_var_has_distinct_lhs_in_cs_mode() {
        // §5.2: "the constraints in C(p) have distinct left-hand sides and
        // every variable is the left-hand side of some constraint" — true
        // for the context-sensitive equality system.
        let p = examples::example_2_1();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let gen = generate(&p, &idx, &slab, Mode::ContextSensitive);
        let mut seen = std::collections::HashSet::new();
        for c in &gen.level1.constraints {
            assert!(seen.insert(c.lhs.index()), "duplicate lhs {:?}", c.lhs);
        }
        assert_eq!(seen.len(), gen.layout.level1_vars());
        let mut seen2 = std::collections::HashSet::new();
        for c in &gen.level2 {
            assert!(seen2.insert(c.lhs.index()));
        }
        assert_eq!(seen2.len(), gen.layout.level2_vars());
    }

    #[test]
    fn constraint_counts_match_structure() {
        // One level-2 constraint per statement plus one per method — the
        // same shape as the Slabels column in Figure 6 (the two columns
        // are equal for every benchmark).
        let p = examples::example_2_2();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let gen = generate(&p, &idx, &slab, Mode::ContextSensitive);
        assert_eq!(gen.level2.len(), idx.len() + idx.method_count());
        assert_eq!(gen.level2.len(), slab.constraint_count);
    }

    #[test]
    fn ci_adds_subset_constraints_per_call_site() {
        let p = examples::example_2_2();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let cs = generate(&p, &idx, &slab, Mode::ContextSensitive);
        let ci = generate(
            &p,
            &idx,
            &slab,
            Mode::ContextInsensitive { keep_scross: true },
        );
        // Two call sites → two (83) constraints.
        assert_eq!(ci.level1.constraints.len(), cs.level1.constraints.len() + 2);
        assert_eq!(ci.layout.level1_vars(), cs.layout.level1_vars() + 2);
    }

    #[test]
    fn rendered_constraints_name_the_figure_5_shapes() {
        let p = examples::example_2_1();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, false);
        let gen = generate(&p, &idx, &slab, Mode::ContextSensitive);
        let txt = render_constraints(&p, &idx, &gen);
        // Spot-check shapes from the paper's Figure 5.
        assert!(txt.contains("r_S0 = {}"), "{txt}");
        assert!(txt.contains("m_S11 = Lcross(S11, r_S11)"), "{txt}");
        assert!(txt.contains("m_S12 = Lcross(S12, r_S12)"), "{txt}");
        assert!(
            txt.contains("m_S6 = Lcross(S6, r_S6) ∪ m_S11 ∪ m_S7"),
            "{txt}"
        );
        assert!(
            txt.contains("m_S0 = Lcross(S0, r_S0) ∪ m_S1 ∪ m_S3"),
            "{txt}"
        );
        assert!(txt.contains("r_S13 = {S2} ∪ r_S1"), "{txt}");
    }
}
