//! Async-body pair reporting (the quality metric of Figure 8).
//!
//! "For evaluation of the quality of our analysis, we focus on counting
//! pairs of labels of entire async bodies" (§6). Two async bodies *may
//! happen in parallel* when some label of one may happen in parallel with
//! some label of the other. The paper splits the count into three
//! exhaustive, disjoint categories:
//!
//! - **self** — an async body may happen in parallel with itself
//!   (typically an async in a loop with no wrapping finish);
//! - **same** — two different async bodies in the same method;
//! - **diff** — two async bodies in different methods.
//!
//! Self-overlap is judged by diagonal pairs `(x, x) ∈ M` for a label `x`
//! of the body: the analysis always derives diagonal pairs when two
//! instances of a body can overlap (`Scross`/`symcross` of intersecting
//! sets include the diagonal), whereas mere *internal* parallelism of a
//! single instance never produces them.

use crate::analysis::Analysis;
use crate::index::{StmtId, StmtKind};
use crate::sets::LabelSet;
use fx10_syntax::{FuncId, Label, Program};

/// One async statement in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncSite {
    /// The label of the `async` instruction.
    pub label: Label,
    /// The body statement.
    pub body: StmtId,
    /// Enclosing method.
    pub method: FuncId,
}

/// The category of an async-body pair (Figure 8 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PairCategory {
    /// A body overlapping another instance of itself.
    SelfPair,
    /// Two distinct bodies in the same method.
    SameMethod,
    /// Bodies in different methods.
    DiffMethod,
}

/// One reported pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncPair {
    /// First async (by instruction label).
    pub a: Label,
    /// Second async; equals `a` for self pairs.
    pub b: Label,
    /// Category.
    pub category: PairCategory,
}

/// The Figure 8 right-hand columns for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsyncPairReport {
    /// All pairs found.
    pub pairs: Vec<AsyncPair>,
    /// `self` column.
    pub self_pairs: usize,
    /// `same` column.
    pub same_method: usize,
    /// `diff` column.
    pub diff_method: usize,
}

impl AsyncPairReport {
    /// `total` column.
    pub fn total(&self) -> usize {
        self.pairs.len()
    }
}

/// Collects every async site of the program.
pub fn async_sites(a: &Analysis) -> Vec<AsyncSite> {
    let idx = a.index();
    idx.ids()
        .filter_map(|s| {
            let info = idx.info(s);
            match info.kind {
                StmtKind::Async { body } => Some(AsyncSite {
                    label: s.label(),
                    body,
                    method: info.method,
                }),
                _ => None,
            }
        })
        .collect()
}

/// Builds the async-body pair report from a solved analysis.
pub fn async_pairs(a: &Analysis) -> AsyncPairReport {
    let sites = async_sites(a);
    let m = a.mhp();
    let slab = a.slabels();
    let body_labels: Vec<&LabelSet> = sites.iter().map(|s| slab.stmt(s.body).as_ref()).collect();

    let mut report = AsyncPairReport::default();
    for (i, si) in sites.iter().enumerate() {
        // Self pair: a diagonal MHP pair on one of the body's labels.
        if body_labels[i].iter().any(|x| m.contains(x, x)) {
            report.pairs.push(AsyncPair {
                a: si.label,
                b: si.label,
                category: PairCategory::SelfPair,
            });
            report.self_pairs += 1;
        }
        for (j, sj) in sites.iter().enumerate().skip(i + 1) {
            let overlap = body_labels[i]
                .iter()
                .any(|x| m.row_intersects(x, body_labels[j]));
            if overlap {
                let category = if si.method == sj.method {
                    report.same_method += 1;
                    PairCategory::SameMethod
                } else {
                    report.diff_method += 1;
                    PairCategory::DiffMethod
                };
                report.pairs.push(AsyncPair {
                    a: si.label,
                    b: sj.label,
                    category,
                });
            }
        }
    }
    report
}

/// Renders the report with label names, one pair per line.
pub fn render_report(p: &Program, report: &AsyncPairReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "async-body MHP pairs: total={} self={} same={} diff={}",
        report.total(),
        report.self_pairs,
        report.same_method,
        report.diff_method
    );
    for pr in &report.pairs {
        let cat = match pr.category {
            PairCategory::SelfPair => "self",
            PairCategory::SameMethod => "same",
            PairCategory::DiffMethod => "diff",
        };
        let _ = writeln!(
            out,
            "  ({}, {})  [{}]",
            p.labels().display(pr.a),
            p.labels().display(pr.b),
            cat
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, analyze_ci};
    use fx10_syntax::examples;

    #[test]
    fn self_category_scenario() {
        // §6: `while (...) { async S1 }` — S1 may overlap itself.
        let p = examples::self_category();
        let r = async_pairs(&analyze(&p));
        assert_eq!(r.self_pairs, 1);
        assert_eq!(r.same_method, 0);
        assert_eq!(r.diff_method, 0);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn same_category_scenario() {
        // §6: loop body asyncs with inner finishes — S1 and S2 in the
        // same method may overlap across iterations; each inner async
        // also self-overlaps, and the outer one does too.
        let p = examples::same_category();
        let r = async_pairs(&analyze(&p));
        assert!(r.same_method >= 1, "B1/B2 cross-iteration pair expected");
        assert!(r.self_pairs >= 1);
        assert_eq!(r.diff_method, 0);
    }

    #[test]
    fn diff_category_scenario() {
        // §2.2 is the paper's own diff example: S5 (in f) overlaps S3 and
        // S4 (in main).
        let p = examples::example_2_2();
        let r = async_pairs(&analyze(&p));
        assert_eq!(r.self_pairs, 0);
        assert_eq!(r.same_method, 0);
        assert_eq!(r.diff_method, 2, "A5/A3 and A5/A4: {r:?}");
    }

    #[test]
    fn straight_line_has_no_async_pairs() {
        let p = fx10_syntax::Program::parse("def main() { finish { async { B; } } K; }").unwrap();
        let r = async_pairs(&analyze(&p));
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn internal_parallelism_is_not_a_self_pair() {
        // The outer async contains two overlapping inner asyncs; the
        // outer body must NOT be counted as overlapping itself.
        let p = fx10_syntax::Program::parse("def main() { finish { async { async { X; } Y; } } }")
            .unwrap();
        let r = async_pairs(&analyze(&p));
        assert_eq!(r.self_pairs, 0, "{r:?}");
        assert_eq!(r.same_method, 1, "outer body overlaps inner body");
    }

    #[test]
    fn ci_reports_at_least_as_many_pairs() {
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
        ] {
            let cs = async_pairs(&analyze(&p));
            let ci = async_pairs(&analyze_ci(&p));
            assert!(ci.total() >= cs.total());
        }
    }

    #[test]
    fn render_is_stable() {
        let p = examples::example_2_2();
        let r = async_pairs(&analyze(&p));
        let txt = render_report(&p, &r);
        assert!(txt.contains("total=2 self=0 same=0 diff=2"), "{txt}");
        assert!(
            txt.contains("(A5, A3)") || txt.contains("(A3, A5)"),
            "{txt}"
        );
    }
}
