//! `Slabels` — the labels a statement may execute (Figure 3, equations
//! 15–21).
//!
//! `Slabels_p(s)` conservatively approximates the labels of instructions
//! that may run during the execution of `s`, *including* through method
//! calls (equation 21 pulls in the callee body's labels), which makes the
//! definition mutually recursive across methods. The paper solves it as
//! the ⊆-least solution of the equations "using the same iterative
//! approach that we use for level-2 constraints" (§5.3), and Figure 8
//! reports the iteration counts; we do exactly that, reusing the
//! [`solver`](crate::solver) machinery.

use crate::index::{StmtIndex, StmtKind};
use crate::sets::{LabelSet, SharedLabelSet};
use crate::solver::{
    solve_set_naive_budgeted, solve_set_worklist_budgeted, SetConstraint, SetSystem, SetTerm,
    SetVar,
};
use fx10_robust::{BudgetMeter, Exhaustion, Fx10Error};
use fx10_syntax::FuncId;
use std::sync::Arc;

use crate::index::StmtId;

/// The solved `Slabels` function plus solver statistics.
#[derive(Debug, Clone)]
pub struct SlabelsResult {
    per_stmt: Vec<SharedLabelSet>,
    per_method: Vec<SharedLabelSet>,
    /// Number of equations generated (Figure 6 "Slabels" column).
    pub constraint_count: usize,
    /// Naive-solver passes (Figure 8 "Slabels" iterations column).
    pub passes: usize,
    /// Individual constraint evaluations performed.
    pub evals: usize,
    /// `Some` when a budget cut the solve short (sets are then an
    /// under-approximation).
    pub exhausted: Option<Exhaustion>,
}

impl SlabelsResult {
    /// `Slabels_p(s)` for the statement headed at `s`.
    #[inline]
    pub fn stmt(&self, s: StmtId) -> &SharedLabelSet {
        &self.per_stmt[s.index()]
    }

    /// `Slabels_p(p(f))` — the labels of a method's body.
    #[inline]
    pub fn method(&self, f: FuncId) -> &SharedLabelSet {
        &self.per_method[f.index()]
    }

    /// Total bytes held by the solved sets.
    pub fn bytes(&self) -> usize {
        self.per_stmt.iter().map(|s| s.bytes()).sum::<usize>()
            + self.per_method.iter().map(|s| s.bytes()).sum::<usize>()
    }
}

/// Builds the Slabels equation system: one variable and one equation per
/// statement, plus one per method (`slab_f = slab_{body(f)}`, used by the
/// call equation 21).
pub fn slabels_system(idx: &StmtIndex) -> SetSystem {
    let n = idx.len();
    let u = idx.method_count();
    let var_stmt = |s: StmtId| SetVar(s.0);
    let var_method = |f: FuncId| SetVar((n + f.index()) as u32);

    let mut constraints = Vec::with_capacity(n + u);
    // Emission order: later methods first, later statements first, each
    // method's own equation right after its statements — the naive solver
    // then converges in passes proportional to call-graph depth rather
    // than statement-sequence length (the solution is order-independent).
    let mut per_method: Vec<Vec<SetConstraint>> = vec![Vec::new(); u];
    for s in idx.ids() {
        let info = idx.info(s);
        let mut terms = vec![SetTerm::Const(Arc::new(LabelSet::singleton(n, s.label())))];
        match info.kind {
            StmtKind::Simple => {}
            StmtKind::While { body } | StmtKind::Async { body } | StmtKind::Finish { body } => {
                terms.push(SetTerm::Var(var_stmt(body)));
            }
            StmtKind::Call { callee } => terms.push(SetTerm::Var(var_method(callee))),
        }
        if let Some(t) = info.tail {
            terms.push(SetTerm::Var(var_stmt(t)));
        }
        per_method[idx.info(s).method.index()].push(SetConstraint {
            lhs: var_stmt(s),
            terms,
        });
    }
    for f in (0..u).rev() {
        let group = &mut per_method[f];
        group.reverse();
        constraints.append(group);
        constraints.push(SetConstraint {
            lhs: var_method(FuncId(f as u32)),
            terms: vec![SetTerm::Var(var_stmt(idx.method_body(FuncId(f as u32))))],
        });
    }

    SetSystem {
        n_vars: n + u,
        universe: n,
        constraints,
    }
}

/// Solves `Slabels` for the whole program.
///
/// `naive` selects the paper's round-robin iteration (pass counts are then
/// meaningful); otherwise the worklist solver is used.
pub fn compute_slabels(idx: &StmtIndex, naive: bool) -> SlabelsResult {
    compute_slabels_budgeted(idx, naive, &mut BudgetMeter::unlimited()).unwrap_or_else(|_| {
        // Unreachable (an unlimited meter never trips); degrade to an
        // empty result rather than panic on a library path.
        SlabelsResult {
            per_stmt: {
                let empty = Arc::new(LabelSet::empty(idx.len()));
                (0..idx.len()).map(|_| Arc::clone(&empty)).collect()
            },
            per_method: Vec::new(),
            constraint_count: 0,
            passes: 0,
            evals: 0,
            exhausted: Some(Exhaustion::SolverIterations),
        }
    })
}

/// [`compute_slabels`] under a budget. The meter is shared with the later
/// analysis phases, so `max_iters` bounds the whole pipeline.
pub fn compute_slabels_budgeted(
    idx: &StmtIndex,
    naive: bool,
    meter: &mut BudgetMeter,
) -> Result<SlabelsResult, Fx10Error> {
    let sys = slabels_system(idx);
    let sol = if naive {
        solve_set_naive_budgeted(&sys, meter)?
    } else {
        solve_set_worklist_budgeted(&sys, meter)?
    };
    let n = idx.len();
    let per_stmt: Vec<SharedLabelSet> = sol.values[..n]
        .iter()
        .map(|s| Arc::new(s.clone()))
        .collect();
    let per_method: Vec<SharedLabelSet> = sol.values[n..]
        .iter()
        .map(|s| Arc::new(s.clone()))
        .collect();
    Ok(SlabelsResult {
        per_stmt,
        per_method,
        constraint_count: sys.constraints.len(),
        passes: sol.passes,
        evals: sol.evals,
        exhausted: sol.exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::examples;
    use fx10_syntax::{Label, Program};

    fn names(p: &Program, s: &LabelSet) -> Vec<String> {
        s.iter().map(|l| p.labels().display(l)).collect()
    }

    #[test]
    fn slabels_of_example_2_2_includes_callee_labels() {
        let p = examples::example_2_2();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, true);

        // Slabels of main's body = every label of main plus f's labels.
        let main_body = idx.method_body(p.main());
        assert_eq!(slab.stmt(main_body).len(), p.label_count());

        // Slabels of the F1 call statement (lone, inside S1's finish):
        // {F1} ∪ Slabels(f) = {F1, A5, S5}.
        let f1 = p.labels().lookup("F1").unwrap();
        let got = names(&p, slab.stmt(StmtId(f1.0)));
        assert_eq!(got.len(), 3);
        for n in ["F1", "A5", "S5"] {
            assert!(got.contains(&n.to_string()), "missing {n} in {got:?}");
        }

        // Slabels of f's body (per-method view): {A5, S5}.
        let f = p.find_method("f").unwrap();
        let got = names(&p, slab.method(f));
        assert_eq!(got, vec!["A5", "S5"]);
    }

    #[test]
    fn slabels_handles_recursion() {
        let p = Program::parse("def main() { S; main(); }").unwrap();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, true);
        // Recursive call: Slabels is the whole method for every suffix.
        for s in idx.ids() {
            assert_eq!(slab.stmt(s).len(), 2);
        }
        assert_eq!(slab.method(p.main()).len(), 2);
    }

    #[test]
    fn slabels_while_includes_body_and_continuation() {
        let p = Program::parse("def main() { while (a[0] != 0) { B; } K; }").unwrap();
        let idx = StmtIndex::build(&p);
        let slab = compute_slabels(&idx, true);
        let whole = slab.stmt(idx.method_body(p.main()));
        assert_eq!(whole.len(), 3);
        // Suffix starting at K contains only K.
        let k = p.labels().lookup("K").unwrap();
        assert_eq!(slab.stmt(StmtId(k.0)).iter().collect::<Vec<_>>(), vec![k]);
        // Lemma 7.12: FSlabels(s) ⊆ Slabels(s).
        for s in idx.ids() {
            assert!(slab.stmt(s).contains(Label(s.0)));
        }
    }

    #[test]
    fn naive_and_worklist_slabels_agree() {
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::add_twice(),
        ] {
            let idx = StmtIndex::build(&p);
            let a = compute_slabels(&idx, true);
            let b = compute_slabels(&idx, false);
            for s in idx.ids() {
                assert_eq!(a.stmt(s), b.stmt(s));
            }
            assert!(a.passes >= 2);
        }
    }

    #[test]
    fn call_chains_need_more_passes() {
        // A call chain laid out against declaration order: main calls f1
        // calls f2 ... — label propagation takes several passes, as the
        // paper observes ("method calls appear to add a significant amount
        // of time ... most notably in Slabels iterations", §6).
        // The solver evaluates later-declared methods first, so a chain
        // whose callees are declared *before* their callers propagates
        // only one level per pass — the adversarial layout.
        let chain = |depth: usize| {
            let mut src = format!("def f{depth}() {{ S; }}\n");
            for d in (1..depth).rev() {
                src.push_str(&format!("def f{d}() {{ f{}(); }}\n", d + 1));
            }
            src.push_str("def main() { f1(); }\n");
            let p = Program::parse(&src).unwrap();
            let idx = StmtIndex::build(&p);
            compute_slabels(&idx, true).passes
        };
        assert!(chain(6) > chain(2), "{} vs {}", chain(6), chain(2));
    }
}
