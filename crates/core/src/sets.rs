//! The abstract domains `LabelSet = P(Label)` and
//! `LabelPairSet = P(Label × Label)` (paper §4.1) as dense bitsets.
//!
//! The paper's complexity analysis (§5.2) assumes bit-vector sets: "If we
//! represent each set as a bit vector with O(n²) entries, then set union
//! takes O(n²) time." [`LabelSet`] is a dense `u64` bitset over the
//! program's labels. [`PairSet`] is a *symmetric* bit matrix whose rows
//! are allocated lazily — MHP relations concentrate on async-related
//! labels, so most rows stay empty and the realistic footprint is far
//! below `n²` bits (the paper's measured MBs confirm theirs was too).
//!
//! All mutating operations report whether they changed the set, which is
//! what the fixed-point solvers key on.

use fx10_syntax::Label;
use std::sync::Arc;

/// A set of labels over a fixed universe `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet {
    n: usize,
    words: Box<[u64]>,
}

#[inline]
fn word_count(n: usize) -> usize {
    n.div_ceil(64)
}

impl LabelSet {
    /// The empty set over a universe of `n` labels.
    pub fn empty(n: usize) -> LabelSet {
        LabelSet {
            n,
            words: vec![0u64; word_count(n)].into_boxed_slice(),
        }
    }

    /// `{l}`.
    pub fn singleton(n: usize, l: Label) -> LabelSet {
        let mut s = LabelSet::empty(n);
        s.insert(l);
        s
    }

    /// Builds a set from labels.
    pub fn from_labels(n: usize, labels: impl IntoIterator<Item = Label>) -> LabelSet {
        let mut s = LabelSet::empty(n);
        for l in labels {
            s.insert(l);
        }
        s
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `l`; returns true if it was absent.
    #[inline]
    pub fn insert(&mut self, l: Label) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old != self.words[w]
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, l: Label) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// `self ∪= other`; returns true if `self` grew.
    pub fn union_with(&mut self, other: &LabelSet) -> bool {
        debug_assert_eq!(self.n, other.n);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let old = *a;
            *a |= b;
            changed |= old != *a;
        }
        changed
    }

    /// `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &LabelSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &LabelSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(Label((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Raw words (read-only), used by [`PairSet`] bulk operations.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the set (space accounting, Figure 8).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl std::fmt::Display for LabelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for l in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A symmetric set of label pairs over a universe `0..n`, stored as
/// lazily-allocated bitset rows. Inserting `(a, b)` also inserts `(b, a)`
/// — the analysis only ever builds symmetric relations (`symcross`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSet {
    n: usize,
    rows: Vec<Option<Box<[u64]>>>,
    /// Total set bits across rows (= ordered-pair count).
    bits: usize,
}

impl PairSet {
    /// The empty relation over `n` labels.
    pub fn empty(n: usize) -> PairSet {
        PairSet {
            n,
            rows: vec![None; n],
            bits: 0,
        }
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    fn row_mut(&mut self, l: usize) -> &mut [u64] {
        let n = self.n;
        self.rows[l].get_or_insert_with(|| vec![0u64; word_count(n)].into_boxed_slice())
    }

    /// Sets bit `(a, b)` only (not the mirror); returns true if new.
    fn set_bit(&mut self, a: usize, b: usize) -> bool {
        let row = self.row_mut(a);
        let (w, bit) = (b / 64, b % 64);
        let old = row[w];
        row[w] |= 1 << bit;
        if old != row[w] {
            self.bits += 1;
            true
        } else {
            false
        }
    }

    /// Inserts the unordered pair `{a, b}`; returns true if it was absent.
    pub fn insert(&mut self, a: Label, b: Label) -> bool {
        let c1 = self.set_bit(a.index(), b.index());
        if a != b {
            self.set_bit(b.index(), a.index());
        }
        c1
    }

    /// True iff the unordered pair `{a, b}` is present.
    pub fn contains(&self, a: Label, b: Label) -> bool {
        match &self.rows[a.index()] {
            Some(row) => {
                let (w, bit) = (b.index() / 64, b.index() % 64);
                row[w] & (1 << bit) != 0
            }
            None => false,
        }
    }

    /// `self ∪= other`; returns true if `self` grew.
    pub fn union_with(&mut self, other: &PairSet) -> bool {
        debug_assert_eq!(self.n, other.n);
        let mut changed = false;
        for (l, orow) in other.rows.iter().enumerate() {
            let Some(orow) = orow else { continue };
            if orow.iter().all(|&w| w == 0) {
                continue;
            }
            let mut delta = 0usize;
            let row = self.row_mut(l);
            for (a, b) in row.iter_mut().zip(orow.iter()) {
                let old = *a;
                *a |= b;
                delta += (*a ^ old).count_ones() as usize;
            }
            self.bits += delta;
            changed |= delta != 0;
        }
        changed
    }

    /// `self ∪= Lcross(l, set) = symcross({l}, set)`; returns true if grew.
    pub fn add_lcross(&mut self, l: Label, set: &LabelSet) -> bool {
        if set.is_empty() {
            return false;
        }
        let mut changed = self.or_row(l.index(), set);
        for b in set.iter() {
            changed |= self.set_bit(b.index(), l.index());
        }
        changed
    }

    /// `self ∪= symcross(a, b) = (a × b) ∪ (b × a)`; returns true if grew.
    pub fn add_symcross(&mut self, a: &LabelSet, b: &LabelSet) -> bool {
        if a.is_empty() || b.is_empty() {
            return false;
        }
        let mut changed = false;
        for l in a.iter() {
            changed |= self.or_row(l.index(), b);
        }
        for l in b.iter() {
            changed |= self.or_row(l.index(), a);
        }
        changed
    }

    /// `row(l) ∪= set` with bit accounting; returns true if the row grew.
    fn or_row(&mut self, l: usize, set: &LabelSet) -> bool {
        let mut delta = 0usize;
        let row = self.row_mut(l);
        for (a, b) in row.iter_mut().zip(set.words().iter()) {
            let old = *a;
            *a |= b;
            delta += (*a ^ old).count_ones() as usize;
        }
        self.bits += delta;
        delta != 0
    }

    /// Does label `l` pair with any member of `set`?
    pub fn row_intersects(&self, l: Label, set: &LabelSet) -> bool {
        match &self.rows[l.index()] {
            Some(row) => row.iter().zip(set.words().iter()).any(|(a, b)| a & b != 0),
            None => false,
        }
    }

    /// Every label paired with `l`, as a fresh [`LabelSet`].
    pub fn partners(&self, l: Label) -> LabelSet {
        let mut out = LabelSet::empty(self.n);
        if let Some(row) = &self.rows[l.index()] {
            for (a, b) in out.words.iter_mut().zip(row.iter()) {
                *a |= b;
            }
        }
        out
    }

    /// Number of *unordered* pairs (diagonal pairs count once).
    pub fn len(&self) -> usize {
        let diag = (0..self.n)
            .filter(|&l| self.contains(Label(l as u32), Label(l as u32)))
            .count();
        (self.bits - diag) / 2 + diag
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// `self ⊆ other` (as symmetric relations).
    pub fn is_subset(&self, other: &PairSet) -> bool {
        for (l, row) in self.rows.iter().enumerate() {
            let Some(row) = row else { continue };
            match &other.rows[l] {
                Some(orow) => {
                    if row.iter().zip(orow.iter()).any(|(a, b)| a & !b != 0) {
                        return false;
                    }
                }
                None => {
                    if row.iter().any(|&w| w != 0) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Iterates unordered pairs `(a, b)` with `a <= b`, in order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (Label, Label)> + '_ {
        self.rows.iter().enumerate().flat_map(move |(a, row)| {
            let a_lab = Label(a as u32);
            row.iter()
                .flat_map(move |r| {
                    r.iter().enumerate().flat_map(move |(wi, &w)| {
                        let mut bits = w;
                        std::iter::from_fn(move || {
                            if bits == 0 {
                                None
                            } else {
                                let b = bits.trailing_zeros();
                                bits &= bits - 1;
                                Some(Label((wi * 64) as u32 + b))
                            }
                        })
                    })
                })
                .filter(move |&b| a_lab <= b)
                .map(move |b| (a_lab, b))
        })
    }

    /// Heap bytes held (space accounting, Figure 8).
    pub fn bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.as_ref().map_or(0, |row| row.len() * 8))
            .sum::<usize>()
            + self.rows.len() * std::mem::size_of::<Option<Box<[u64]>>>()
    }
}

/// `symcross(A, B)` as a fresh relation (Figure 3, equation 37). The
/// solvers use the in-place [`PairSet::add_symcross`]; this standalone
/// version exists for tests and the type-system implementation.
pub fn symcross(a: &LabelSet, b: &LabelSet) -> PairSet {
    let mut out = PairSet::empty(a.universe());
    out.add_symcross(a, b);
    out
}

/// `Lcross(l, A) = symcross({l}, A)` (equation 38).
pub fn lcross(n: usize, l: Label, a: &LabelSet) -> PairSet {
    let mut out = PairSet::empty(n);
    out.add_lcross(l, a);
    out
}

/// Shared, immutable label set — constants referenced by many constraints.
/// `Arc` rather than `Rc` so constraint systems are `Send + Sync` for the
/// parallel SCC solver.
pub type SharedLabelSet = Arc<LabelSet>;

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn labelset_basics() {
        let mut s = LabelSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(l(0)));
        assert!(s.insert(l(64)));
        assert!(s.insert(l(129)));
        assert!(!s.insert(l(129)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(l(64)));
        assert!(!s.contains(l(65)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![l(0), l(64), l(129)]);
        assert_eq!(format!("{s}"), "{L0, L64, L129}");
    }

    #[test]
    fn labelset_union_and_subset() {
        let mut a = LabelSet::from_labels(100, [l(1), l(2)]);
        let b = LabelSet::from_labels(100, [l(2), l(3)]);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 3);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.intersects(&b));
        let c = LabelSet::from_labels(100, [l(99)]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn pairset_insert_is_symmetric() {
        let mut m = PairSet::empty(10);
        assert!(m.insert(l(3), l(7)));
        assert!(!m.insert(l(7), l(3)));
        assert!(m.contains(l(7), l(3)));
        assert_eq!(m.len(), 1);
        assert!(m.insert(l(4), l(4)));
        assert_eq!(m.len(), 2);
        assert_eq!(
            m.iter_pairs().collect::<Vec<_>>(),
            vec![(l(3), l(7)), (l(4), l(4))]
        );
    }

    #[test]
    fn pairset_union_tracks_changes() {
        let mut a = PairSet::empty(10);
        a.insert(l(1), l(2));
        let mut b = PairSet::empty(10);
        b.insert(l(1), l(2));
        b.insert(l(5), l(5));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
        assert!(b.is_subset(&a));
    }

    #[test]
    fn lcross_matches_definition() {
        let s = LabelSet::from_labels(10, [l(2), l(9)]);
        let m = lcross(10, l(0), &s);
        assert_eq!(m.len(), 2);
        assert!(m.contains(l(0), l(2)));
        assert!(m.contains(l(9), l(0)));
        // Lcross with an empty set is empty.
        assert!(lcross(10, l(0), &LabelSet::empty(10)).is_empty());
    }

    #[test]
    fn symcross_matches_definition() {
        let a = LabelSet::from_labels(10, [l(1), l(2)]);
        let b = LabelSet::from_labels(10, [l(2), l(3)]);
        let m = symcross(&a, &b);
        // (1,2), (1,3), (2,2), (2,3): 4 unordered pairs.
        assert_eq!(m.len(), 4);
        assert!(m.contains(l(2), l(2)));
        assert!(m.contains(l(3), l(1)));
        assert!(!m.contains(l(1), l(1)));
        // symcross is commutative (Lemma 7.1).
        assert_eq!(m, symcross(&b, &a));
    }

    #[test]
    fn symcross_distributes_over_union() {
        // Lemma 7.3: symcross(A, C) ∪ symcross(B, C) = symcross(A ∪ B, C).
        let a = LabelSet::from_labels(20, [l(1)]);
        let b = LabelSet::from_labels(20, [l(2), l(15)]);
        let c = LabelSet::from_labels(20, [l(3), l(19)]);
        let mut lhs = symcross(&a, &c);
        lhs.union_with(&symcross(&b, &c));
        let mut ab = a.clone();
        ab.union_with(&b);
        assert_eq!(lhs, symcross(&ab, &c));
    }

    #[test]
    fn partners_row_view() {
        let mut m = PairSet::empty(10);
        m.insert(l(1), l(2));
        m.insert(l(1), l(5));
        let row = m.partners(l(1));
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![l(2), l(5)]);
        assert!(m.row_intersects(l(2), &LabelSet::from_labels(10, [l(1)])));
        assert!(!m.row_intersects(l(2), &LabelSet::from_labels(10, [l(5)])));
    }

    #[test]
    fn bytes_accounting_is_lazy() {
        let empty = PairSet::empty(1000);
        let mut one = PairSet::empty(1000);
        one.insert(l(0), l(1));
        // Only two rows allocated out of 1000.
        assert!(one.bytes() < empty.bytes() + 3 * (1000_usize.div_ceil(64)) * 8);
    }
}
