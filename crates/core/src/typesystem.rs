//! The may-happen-in-parallel **type system** (paper §4.2, Figure 4).
//!
//! Judgments:
//!
//! ```text
//! ⊢ p : E                 (rule 45)
//! p, E, R ⊢ T : M         (rules 46–49)
//! p, E, R ⊢ s : M, O      (rules 50–56)
//! ```
//!
//! `E` maps each method to a summary `(M_i, O_i)`: the pairs that may
//! happen in parallel during a call, and the labels of statements that may
//! still be executing when the call returns. Typing is *unique* (Lemma 8):
//! given `R` and `s`, the rules determine `M` and `O`, so we implement
//! them as a structural computation. Rule 45 is recursive in `E`
//! (method bodies are typed under `E` itself); [`infer_types`] finds the
//! least `E` by fixed-point iteration, and Theorem 4 (tested in this
//! crate and in the integration suite) says it coincides with the least
//! constraint solution.
//!
//! Lone-instruction variants follow the same conventions as the
//! [constraint generator](crate::gen).

use crate::sets::{LabelSet, PairSet};
use crate::slabels::SlabelsResult;
use fx10_semantics::Tree;
use fx10_syntax::{FuncId, InstrKind, Program, Stmt};

/// One method's type: the pair `(M_i, O_i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSummary {
    /// May-happen-in-parallel pairs during a call.
    pub m: PairSet,
    /// Labels possibly still executing when the call returns.
    pub o: LabelSet,
}

/// A type environment `E : MethodName → (LabelPairSet × LabelSet)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeEnv {
    methods: Vec<MethodSummary>,
}

impl TypeEnv {
    /// Wraps per-method summaries (indexed by [`FuncId`]).
    pub fn new(methods: Vec<MethodSummary>) -> TypeEnv {
        TypeEnv { methods }
    }

    /// The all-empty environment (the fixed-point iteration's bottom).
    pub fn bottom(n_labels: usize, n_methods: usize) -> TypeEnv {
        TypeEnv {
            methods: (0..n_methods)
                .map(|_| MethodSummary {
                    m: PairSet::empty(n_labels),
                    o: LabelSet::empty(n_labels),
                })
                .collect(),
        }
    }

    /// `E(f_i)`.
    pub fn get(&self, f: FuncId) -> &MethodSummary {
        &self.methods[f.index()]
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True iff no methods (impossible for validated programs).
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// `Slabels` of a *dynamic* statement — one produced by execution
/// (concatenations `s_a . s_b`, unrolled loops, inlined bodies).
///
/// By Lemma 7.11 `Slabels(s_a . s_b) = Slabels(s_a) ∪ Slabels(s_b)`, and
/// every dynamic statement is a concatenation of suffixes of original
/// statements, so the set is the union over the top-level instructions of
/// the label plus the (precomputed) `Slabels` of the instruction's nested
/// body or callee.
pub fn slabels_of_dyn(slab: &SlabelsResult, n_labels: usize, s: &Stmt) -> LabelSet {
    let mut out = LabelSet::empty(n_labels);
    for i in s.instrs() {
        out.insert(i.label);
        match &i.kind {
            InstrKind::While { body, .. }
            | InstrKind::Async { body }
            | InstrKind::Finish { body } => {
                out.union_with(slab.stmt(crate::index::StmtId(body.head().label.0)));
            }
            InstrKind::Call { callee } => {
                out.union_with(slab.method(*callee));
            }
            _ => {}
        }
    }
    out
}

/// Context for the typing computation.
struct Ctx<'a> {
    slab: &'a SlabelsResult,
    env: &'a TypeEnv,
    n: usize,
}

/// `p, E, R ⊢ s : M, O` (rules 50–56), computed structurally.
pub fn type_stmt(
    p: &Program,
    slab: &SlabelsResult,
    env: &TypeEnv,
    r: &LabelSet,
    s: &Stmt,
) -> (PairSet, LabelSet) {
    let ctx = Ctx {
        slab,
        env,
        n: p.label_count(),
    };
    type_stmt_in(&ctx, r, s)
}

fn type_stmt_in(ctx: &Ctx<'_>, r: &LabelSet, s: &Stmt) -> (PairSet, LabelSet) {
    let head = s.head();
    let l = head.label;
    let tail = s.tail();
    match &head.kind {
        // Rules (50)/(51)/(52): skip and assignment.
        InstrKind::Skip | InstrKind::Assign { .. } => {
            let mut m = PairSet::empty(ctx.n);
            m.add_lcross(l, r);
            match tail {
                None => (m, r.clone()),
                Some(k) => {
                    let (mk, ok) = type_stmt_in(ctx, r, &k);
                    let mut m = m;
                    m.union_with(&mk);
                    (m, ok)
                }
            }
        }
        // Rule (53): while — the body is assumed to run ≥ 2 times.
        InstrKind::While { body, .. } => {
            let (m1, o1) = type_stmt_in(ctx, r, body);
            let slab_body = slabels_of_dyn(ctx.slab, ctx.n, body);
            let mut m = PairSet::empty(ctx.n);
            m.add_lcross(l, &o1);
            m.add_symcross(&slab_body, &o1); // Scross_p(s1, O1)
            m.union_with(&m1);
            match tail {
                None => (m, o1),
                Some(k) => {
                    let (m2, o2) = type_stmt_in(ctx, &o1, &k);
                    m.union_with(&m2);
                    (m, o2)
                }
            }
        }
        // Rule (54): async.
        InstrKind::Async { body } => {
            let mut m = PairSet::empty(ctx.n);
            m.add_lcross(l, r);
            match tail {
                None => {
                    let (m1, _o1) = type_stmt_in(ctx, r, body);
                    m.union_with(&m1);
                    let mut o = slabels_of_dyn(ctx.slab, ctx.n, body);
                    o.union_with(r);
                    (m, o)
                }
                Some(k) => {
                    let mut r1 = slabels_of_dyn(ctx.slab, ctx.n, &k);
                    r1.union_with(r);
                    let (m1, _o1) = type_stmt_in(ctx, &r1, body);
                    let mut r2 = slabels_of_dyn(ctx.slab, ctx.n, body);
                    r2.union_with(r);
                    let (m2, o2) = type_stmt_in(ctx, &r2, &k);
                    m.union_with(&m1);
                    m.union_with(&m2);
                    (m, o2)
                }
            }
        }
        // Rule (55): finish — the body's O is discarded.
        InstrKind::Finish { body } => {
            let (m1, _o1) = type_stmt_in(ctx, r, body);
            let mut m = PairSet::empty(ctx.n);
            m.add_lcross(l, r);
            m.union_with(&m1);
            match tail {
                None => (m, r.clone()),
                Some(k) => {
                    let (m2, o2) = type_stmt_in(ctx, r, &k);
                    m.union_with(&m2);
                    (m, o2)
                }
            }
        }
        // Rule (56): call.
        InstrKind::Call { callee } => {
            let summary = ctx.env.get(*callee);
            let mut m = PairSet::empty(ctx.n);
            m.add_lcross(l, r);
            m.add_symcross(ctx.slab.method(*callee), r);
            m.union_with(&summary.m);
            let mut r_cont = r.clone();
            r_cont.union_with(&summary.o);
            match tail {
                None => (m, r_cont),
                Some(k) => {
                    let (mk, ok) = type_stmt_in(ctx, &r_cont, &k);
                    m.union_with(&mk);
                    (m, ok)
                }
            }
        }
    }
}

/// `Tlabels_p(T)` (equations 22–25) for a dynamic tree.
pub fn tlabels(slab: &SlabelsResult, n_labels: usize, t: &Tree) -> LabelSet {
    match t {
        Tree::Done => LabelSet::empty(n_labels),
        Tree::Stm(s) => slabels_of_dyn(slab, n_labels, s),
        Tree::Seq(a, b) | Tree::Par(a, b) => {
            let mut out = tlabels(slab, n_labels, a);
            out.union_with(&tlabels(slab, n_labels, b));
            out
        }
    }
}

/// `p, E, R ⊢ T : M` (rules 46–49).
pub fn type_tree(
    p: &Program,
    slab: &SlabelsResult,
    env: &TypeEnv,
    r: &LabelSet,
    t: &Tree,
) -> PairSet {
    let n = p.label_count();
    match t {
        // Rule (49).
        Tree::Done => PairSet::empty(n),
        // Rule (48).
        Tree::Stm(s) => type_stmt(p, slab, env, r, s).0,
        // Rule (46).
        Tree::Seq(t1, t2) => {
            let mut m = type_tree(p, slab, env, r, t1);
            m.union_with(&type_tree(p, slab, env, r, t2));
            m
        }
        // Rule (47).
        Tree::Par(t1, t2) => {
            let mut r1 = tlabels(slab, n, t2);
            r1.union_with(r);
            let mut r2 = tlabels(slab, n, t1);
            r2.union_with(r);
            let mut m = type_tree(p, slab, env, &r1, t1);
            m.union_with(&type_tree(p, slab, env, &r2, t2));
            m
        }
    }
}

/// Type inference by fixed-point iteration of rule (45): the least `E`
/// with `⊢ p : E`. Returns the environment and the number of rounds.
pub fn infer_types(p: &Program) -> (TypeEnv, usize) {
    let idx = crate::index::StmtIndex::build(p);
    let slab = crate::slabels::compute_slabels(&idx, false);
    infer_types_with(p, &slab)
}

/// As [`infer_types`] but reusing a precomputed `Slabels`.
pub fn infer_types_with(p: &Program, slab: &SlabelsResult) -> (TypeEnv, usize) {
    let n = p.label_count();
    let u = p.method_count();
    let mut env = TypeEnv::bottom(n, u);
    let empty = LabelSet::empty(n);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        let next: Vec<MethodSummary> = (0..u)
            .map(|i| {
                let f = FuncId(i as u32);
                let (m, o) = type_stmt(p, slab, &env, &empty, p.body(f));
                MethodSummary { m, o }
            })
            .collect();
        for (old, new) in env.methods.iter().zip(next.iter()) {
            if old != new {
                changed = true;
                break;
            }
        }
        env = TypeEnv::new(next);
        if !changed {
            break;
        }
    }
    (env, rounds)
}

/// Type *checking*: does `⊢ p : E` hold for the given `E` (rule 45)?
pub fn typecheck(p: &Program, env: &TypeEnv) -> bool {
    if env.len() != p.method_count() {
        return false;
    }
    let idx = crate::index::StmtIndex::build(p);
    let slab = crate::slabels::compute_slabels(&idx, false);
    let empty = LabelSet::empty(p.label_count());
    (0..p.method_count()).all(|i| {
        let f = FuncId(i as u32);
        let (m, o) = type_stmt(p, &slab, env, &empty, p.body(f));
        let s = env.get(f);
        m == s.m && o == s.o
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::index::StmtIndex;
    use crate::slabels::compute_slabels;
    use fx10_syntax::examples;
    use fx10_syntax::Label;

    fn setup(p: &Program) -> SlabelsResult {
        let idx = StmtIndex::build(p);
        compute_slabels(&idx, false)
    }

    #[test]
    fn inference_matches_constraint_solution() {
        // Theorem 4 (equivalence): the least type environment equals the
        // least constraint solution's (m_i, o_i).
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::add_twice(),
            examples::same_category(),
            examples::self_category(),
            examples::conclusion_false_positive(),
        ] {
            let (env, _) = infer_types(&p);
            let a = analyze(&p);
            assert_eq!(env, a.type_env(), "type/constraint mismatch");
            assert!(typecheck(&p, &env), "inferred env must typecheck");
        }
    }

    #[test]
    fn typecheck_rejects_too_small_env() {
        let p = examples::example_2_2();
        let bottom = TypeEnv::bottom(p.label_count(), p.method_count());
        assert!(!typecheck(&p, &bottom));
        let wrong_len = TypeEnv::bottom(p.label_count(), 1);
        assert!(!typecheck(&p, &wrong_len));
    }

    #[test]
    fn principal_typing_lemma_12() {
        // Lemma 12: p,E,R ⊢ s : M,O  iff  p,E,∅ ⊢ s : M',O' with
        // M = Scross(s, R) ∪ M' and O = R ∪ O'.
        let p = examples::example_2_2();
        let slab = setup(&p);
        let (env, _) = infer_types(&p);
        let n = p.label_count();
        let body = p.body(p.main());

        let r = LabelSet::from_labels(n, [Label(0), Label(3)]);
        let empty = LabelSet::empty(n);
        let (m_r, o_r) = type_stmt(&p, &slab, &env, &r, body);
        let (m_0, o_0) = type_stmt(&p, &slab, &env, &empty, body);

        let slab_s = slabels_of_dyn(&slab, n, body);
        let mut expect_m = crate::sets::symcross(&slab_s, &r);
        expect_m.union_with(&m_0);
        assert_eq!(m_r, expect_m);

        let mut expect_o = r.clone();
        expect_o.union_with(&o_0);
        assert_eq!(o_r, expect_o);
    }

    #[test]
    fn preservation_lemma_16_along_executions() {
        // If p,E,∅ ⊢ T : M and T → T', then typing T' gives M' ⊆ M.
        use fx10_semantics::step::{initial_tree, successors};
        use fx10_semantics::ArrayState;
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::add_twice(),
        ] {
            let slab = setup(&p);
            let (env, _) = infer_types(&p);
            let empty = LabelSet::empty(p.label_count());
            let mut frontier = vec![(ArrayState::zeros(&p), initial_tree(&p))];
            let mut steps = 0;
            while let Some((a, t)) = frontier.pop() {
                if steps > 300 {
                    break;
                }
                let m = type_tree(&p, &slab, &env, &empty, &t);
                for succ in successors(&p, &a, &t) {
                    let m2 = type_tree(&p, &slab, &env, &empty, &succ.tree);
                    assert!(
                        m2.is_subset(&m),
                        "preservation violated stepping {t} → {}",
                        succ.tree
                    );
                    steps += 1;
                    frontier.push((succ.array, succ.tree));
                }
            }
        }
    }

    #[test]
    fn soundness_parallel_subset_of_m_along_executions() {
        // Theorem 2 on a breadth of reachable states (the full exhaustive
        // check lives in the integration tests).
        use fx10_semantics::explore::{explore, ExploreConfig};
        for p in [
            examples::example_2_1(),
            examples::example_2_2(),
            examples::same_category(),
        ] {
            let a = analyze(&p);
            let e = explore(&p, &[], ExploreConfig::default());
            for &(x, y) in &e.mhp {
                assert!(
                    a.may_happen_in_parallel(x, y),
                    "dynamic pair ({}, {}) missing statically",
                    p.labels().display(x),
                    p.labels().display(y)
                );
            }
        }
    }

    #[test]
    fn tree_typing_rule_shapes() {
        let p = examples::example_2_2();
        let slab = setup(&p);
        let (env, _) = infer_types(&p);
        let empty = LabelSet::empty(p.label_count());
        // Rule 49: √ has empty M.
        assert!(type_tree(&p, &slab, &env, &empty, &Tree::Done).is_empty());
        // Rule 46: M(T1 ▷ T2) = M(T1) ∪ M(T2) with same R.
        let s = p.body(p.main()).clone();
        let t1 = Tree::stm(s.clone());
        let t2 = Tree::stm(s);
        let seq = Tree::seq(t1.clone(), t2.clone());
        let m1 = type_tree(&p, &slab, &env, &empty, &t1);
        let m_seq = type_tree(&p, &slab, &env, &empty, &seq);
        assert!(m1.is_subset(&m_seq));
        // Rule 47: the ∥ rule crosses in the other side's Tlabels, so the
        // Par typing strictly contains the Seq typing here.
        let par = Tree::par(t1.clone(), t2);
        let m_par = type_tree(&p, &slab, &env, &empty, &par);
        assert!(m_seq.is_subset(&m_par));
        assert!(m_seq.len() < m_par.len());
    }

    #[test]
    fn inference_rounds_reflect_call_depth() {
        let chain = Program::parse(
            "def main() { f1(); }\n\
             def f1() { f2(); }\n\
             def f2() { async { S; } }",
        )
        .unwrap();
        let (_, rounds) = infer_types(&chain);
        assert!(rounds >= 3, "summaries must flow up the call chain");
    }
}
