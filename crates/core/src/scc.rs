//! SCC-condensation solvers for level-2 systems.
//!
//! The m-variable dependency graph of a program is mostly a DAG: `m_s`
//! unions its continuation's and nested bodies' m-variables, and cycles
//! arise only from recursive call chains. Condensing the graph into
//! strongly connected components and solving components in topological
//! order turns the global fixed point into a sequence of small local
//! fixed points — each constraint is evaluated until *its component*
//! stabilizes, never re-visited afterwards.
//!
//! Two variants:
//! - [`solve_pair_scc`] — sequential, components in topological order;
//! - [`solve_pair_scc_parallel`] — a work crew of scoped std threads over
//!   the condensation DAG: a component becomes ready when all components
//!   it depends on have published their values (`OnceLock` hand-off, no
//!   locks on the hot path). Independent subtrees of the program solve
//!   concurrently.
//!
//! Both produce the same least solution as the naive and worklist solvers
//! (property-tested in `tests/equivalence.rs`), and both have `_budgeted`
//! variants that honor a [`BudgetMeter`] / [`fx10_robust::Budget`],
//! observe cancellation, and — in the parallel case — contain worker
//! panics with `catch_unwind` and accept a [`FaultPlan`].

use crate::sets::PairSet;
use crate::solver::{PairConstraint, PairSolution, PairSystem, PairTerm};
use fx10_robust::{Budget, BudgetMeter, CancelToken, Exhaustion, FaultPlan, Fx10Error, Stop};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Iterative Tarjan SCC over the m-variable dependency graph.
///
/// Returns `(comp_of_var, components)` with components listed in
/// *reverse* topological order (dependencies after dependents), i.e.
/// iterating the returned list backwards visits dependencies first.
fn tarjan(n_vars: usize, succs: &[Vec<u32>]) -> (Vec<u32>, Vec<Vec<u32>>) {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n_vars];
    let mut lowlink = vec![0u32; n_vars];
    let mut on_stack = vec![false; n_vars];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNSET; n_vars];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS stack: (node, next successor position).
    let mut work: Vec<(u32, usize)> = Vec::new();
    for root in 0..n_vars as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        work.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos < succs[v as usize].len() {
                let w = succs[v as usize][*pos];
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    work.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let cid = comps.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = cid;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    (comp_of, comps)
}

/// The condensation of a [`PairSystem`]: per-variable component ids,
/// components in dependency-first order, per-component constraints, and
/// the condensation DAG edges.
struct Condensation<'a> {
    /// Components in topological (dependency-first) order.
    comps: Vec<Vec<u32>>,
    /// Constraint indices per component (indexed like `comps`).
    comp_constraints: Vec<Vec<u32>>,
    /// For each component, the components that depend on it.
    dependents: Vec<Vec<u32>>,
    /// Number of distinct dependency components per component.
    indegree: Vec<usize>,
    sys: &'a PairSystem,
}

fn condense(sys: &PairSystem) -> Condensation<'_> {
    // succs[v] = variables v's value flows into... for Tarjan any
    // orientation works as long as we fix topological reading; use
    // lhs → rhs ("lhs depends on rhs").
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); sys.n_vars];
    for c in &sys.constraints {
        for t in &c.terms {
            if let PairTerm::MVar(v) = t {
                if *v != c.lhs {
                    succs[c.lhs.index()].push(v.0);
                }
            }
        }
    }
    let (comp_of, comps_rev) = tarjan(sys.n_vars, &succs);
    // Tarjan emits dependencies first under lhs→rhs orientation? It emits
    // components in reverse topological order of the succs orientation:
    // a component is completed only after everything it reaches. With
    // lhs→rhs, a component reaches its dependencies, so dependencies
    // complete (and are emitted) first — comps_rev is already
    // dependency-first.
    let comps = comps_rev;

    let n_comps = comps.len();
    let mut comp_constraints: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
    for (ci, c) in sys.constraints.iter().enumerate() {
        comp_constraints[comp_of[c.lhs.index()] as usize].push(ci as u32);
    }
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
    let mut indegree = vec![0usize; n_comps];
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for c in &sys.constraints {
        let lc = comp_of[c.lhs.index()];
        for t in &c.terms {
            if let PairTerm::MVar(v) = t {
                let vc = comp_of[v.index()];
                if vc != lc && seen.insert((vc, lc)) {
                    dependents[vc as usize].push(lc);
                    indegree[lc as usize] += 1;
                }
            }
        }
    }
    Condensation {
        comps,
        comp_constraints,
        dependents,
        indegree,
        sys,
    }
}

/// Solves one component's local fixed point.
///
/// `local` holds the component's values (indexed by position in
/// `members`); external variables are read from `published`.
///
/// `on_eval` is charged once per constraint evaluation; when it asks to
/// stop, the (partial, under-approximate) local values computed so far
/// are returned alongside the stop reason.
fn solve_component_metered(
    cond: &Condensation<'_>,
    cid: usize,
    published: &[OnceLock<PairSet>],
    on_eval: &mut impl FnMut() -> Result<(), Stop>,
) -> (Vec<PairSet>, Option<Stop>) {
    let sys = cond.sys;
    let members = &cond.comps[cid];
    let slot_of = |v: u32| members.iter().position(|&m| m == v);
    let mut local: Vec<PairSet> = members
        .iter()
        .map(|_| PairSet::empty(sys.universe))
        .collect();
    let empty = PairSet::empty(sys.universe);

    // Fast path: a singleton component whose constraints never read the
    // member itself needs exactly one evaluation — no verification pass
    // re-applying the (expensive, already-absorbed) constant terms.
    let acyclic_singleton = members.len() == 1
        && cond.comp_constraints[cid].iter().all(|&ci| {
            sys.constraints[ci as usize]
                .terms
                .iter()
                .all(|t| !matches!(t, PairTerm::MVar(v) if v.0 == members[0]))
        });
    if acyclic_singleton {
        for &ci in &cond.comp_constraints[cid] {
            if let Err(stop) = on_eval() {
                return (local, Some(stop));
            }
            let c: &PairConstraint = &sys.constraints[ci as usize];
            for t in &c.terms {
                match t {
                    PairTerm::Lcross(l, s) => {
                        local[0].add_lcross(*l, s);
                    }
                    PairTerm::Symcross(a, b) => {
                        local[0].add_symcross(a, b);
                    }
                    PairTerm::MVar(v) => {
                        let s = published[v.index()].get().unwrap_or(&empty);
                        local[0].union_with(s);
                    }
                }
            }
        }
        return (local, None);
    }

    loop {
        let mut changed = false;
        for &ci in &cond.comp_constraints[cid] {
            if let Err(stop) = on_eval() {
                return (local, Some(stop));
            }
            let c: &PairConstraint = &sys.constraints[ci as usize];
            let lhs_slot = slot_of(c.lhs.0).expect("constraint lhs in component");
            for t in &c.terms {
                match t {
                    PairTerm::Lcross(l, s) => {
                        changed |= local[lhs_slot].add_lcross(*l, s);
                    }
                    PairTerm::Symcross(a, b) => {
                        changed |= local[lhs_slot].add_symcross(a, b);
                    }
                    PairTerm::MVar(v) => {
                        if *v == c.lhs {
                            continue;
                        }
                        match slot_of(v.0) {
                            Some(src) => {
                                // Intra-component: split-borrow.
                                let (lo, hi) = (lhs_slot.min(src), lhs_slot.max(src));
                                let (left, right) = local.split_at_mut(hi);
                                let (dst, s) = if lhs_slot < src {
                                    (&mut left[lo], &right[0])
                                } else {
                                    (&mut right[0], &left[lo])
                                };
                                changed |= dst.union_with(s);
                            }
                            None => {
                                // Cross-component: the dependency is
                                // final (published before we started).
                                let s = published[v.index()].get().unwrap_or(&empty);
                                changed |= local[lhs_slot].union_with(s);
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (local, None)
}

/// Publishes a solved component's values.
fn publish(
    cond: &Condensation<'_>,
    cid: usize,
    local: Vec<PairSet>,
    published: &[OnceLock<PairSet>],
) {
    for (&v, value) in cond.comps[cid].iter().zip(local) {
        published[v as usize]
            .set(value)
            .expect("each variable is published exactly once");
    }
}

fn collect(
    sys: &PairSystem,
    published: Vec<OnceLock<PairSet>>,
    evals: usize,
    exhausted: Option<Exhaustion>,
) -> PairSolution {
    let values = published
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|| PairSet::empty(sys.universe))
        })
        .collect();
    PairSolution {
        values,
        passes: 0,
        evals,
        exhausted,
    }
}

/// Sequential SCC-condensation solver: components in topological order,
/// each iterated to its local fixed point exactly once.
pub fn solve_pair_scc(sys: &PairSystem) -> PairSolution {
    solve_pair_scc_budgeted(sys, &mut BudgetMeter::unlimited()).unwrap_or_else(|_| PairSolution {
        values: Vec::new(),
        passes: 0,
        evals: 0,
        exhausted: Some(Exhaustion::SolverIterations),
    })
}

/// [`solve_pair_scc`] under a budget: budget exhaustion publishes the
/// partial component values solved so far (unsolved components collect as
/// empty — a sound under-approximation) and tags the solution;
/// cancellation returns `Err`.
pub fn solve_pair_scc_budgeted(
    sys: &PairSystem,
    meter: &mut BudgetMeter,
) -> Result<PairSolution, Fx10Error> {
    let cond = condense(sys);
    let published: Vec<OnceLock<PairSet>> = (0..sys.n_vars).map(|_| OnceLock::new()).collect();
    let mut evals = 0usize;
    let mut exhausted = None;
    for cid in 0..cond.comps.len() {
        let mut on_eval = || {
            evals += 1;
            meter.tick()
        };
        let (local, stop) = solve_component_metered(&cond, cid, &published, &mut on_eval);
        publish(&cond, cid, local, &published);
        match stop {
            None => {}
            Some(Stop::Exhausted(e)) => {
                exhausted = Some(e);
                break;
            }
            Some(stop @ Stop::Cancelled) => return Err(stop.into()),
        }
    }
    Ok(collect(sys, published, evals, exhausted))
}

/// Parallel SCC-condensation solver: a work crew drains the condensation
/// DAG, starting each component once its dependencies have published.
/// Infallible legacy entry point (no budget, no faults).
pub fn solve_pair_scc_parallel(sys: &PairSystem, threads: usize) -> PairSolution {
    solve_pair_scc_parallel_budgeted(
        sys,
        threads,
        Budget::unlimited(),
        &CancelToken::new(),
        &FaultPlan::none(),
    )
    .unwrap_or_else(|_| PairSolution {
        values: Vec::new(),
        passes: 0,
        evals: 0,
        exhausted: Some(Exhaustion::SolverIterations),
    })
}

/// Shared state of the parallel solve's work crew.
struct SccCrew {
    /// Ready components (all dependencies published).
    ready: Mutex<Vec<u32>>,
    /// Components fully solved.
    done: AtomicUsize,
    /// Total constraint evaluations across workers.
    evals: AtomicU64,
    /// First budget wall hit.
    exhausted: Mutex<Option<Exhaustion>>,
    /// Any stop condition: drain out.
    stop_flag: AtomicBool,
    /// Cancellation observed.
    cancelled: AtomicBool,
    /// First worker panic (index, message).
    panic: Mutex<Option<(usize, String)>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`solve_pair_scc_parallel`] under a [`Budget`], [`CancelToken`] and
/// [`FaultPlan`]. Worker panics are contained per worker and surface as
/// [`Fx10Error::WorkerPanicked`]; the other workers drain out cleanly.
pub fn solve_pair_scc_parallel_budgeted(
    sys: &PairSystem,
    threads: usize,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
) -> Result<PairSolution, Fx10Error> {
    let threads = threads.max(1);
    let cond = condense(sys);
    let n_comps = cond.comps.len();
    let published: Vec<OnceLock<PairSet>> = (0..sys.n_vars).map(|_| OnceLock::new()).collect();
    if n_comps == 0 {
        return Ok(collect(sys, published, 0, None));
    }
    let remaining_deps: Vec<AtomicUsize> =
        cond.indegree.iter().map(|&d| AtomicUsize::new(d)).collect();
    let crew = SccCrew {
        ready: Mutex::new(
            cond.indegree
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d == 0)
                .map(|(cid, _)| cid as u32)
                .collect(),
        ),
        done: AtomicUsize::new(0),
        evals: AtomicU64::new(0),
        exhausted: Mutex::new(None),
        stop_flag: AtomicBool::new(false),
        cancelled: AtomicBool::new(false),
        panic: Mutex::new(None),
    };

    std::thread::scope(|scope| {
        for worker_id in 0..threads {
            let crew = &crew;
            let cond = &cond;
            let published = &published;
            let remaining_deps = &remaining_deps;
            scope.spawn(move || {
                let mut solved = 0u64;
                let result = catch_unwind(AssertUnwindSafe(|| loop {
                    if crew.stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let next = lock(&crew.ready).pop();
                    let Some(cid) = next else {
                        if crew.done.load(Ordering::SeqCst) == n_comps {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    let cid = cid as usize;
                    solved += 1;
                    if faults.should_panic(worker_id, solved) {
                        panic!(
                            "injected fault: scc worker {worker_id} after {solved} component(s)"
                        );
                    }
                    let mut on_eval = || {
                        let n = crew.evals.fetch_add(1, Ordering::Relaxed) + 1;
                        if budget.max_iters.is_some_and(|cap| n > cap) {
                            return Err(Stop::Exhausted(Exhaustion::SolverIterations));
                        }
                        if n.is_multiple_of(64) {
                            if cancel.is_cancelled() {
                                return Err(Stop::Cancelled);
                            }
                            if budget.deadline_exceeded() {
                                return Err(Stop::Exhausted(Exhaustion::Deadline));
                            }
                        }
                        Ok(())
                    };
                    let (local, stop) = solve_component_metered(cond, cid, published, &mut on_eval);
                    publish(cond, cid, local, published);
                    match stop {
                        None => {}
                        Some(Stop::Exhausted(e)) => {
                            lock(&crew.exhausted).get_or_insert(e);
                            crew.stop_flag.store(true, Ordering::SeqCst);
                            break;
                        }
                        Some(Stop::Cancelled) => {
                            crew.cancelled.store(true, Ordering::SeqCst);
                            crew.stop_flag.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                    for &dep in &cond.dependents[cid] {
                        if remaining_deps[dep as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                            lock(&crew.ready).push(dep);
                        }
                    }
                    crew.done.fetch_add(1, Ordering::SeqCst);
                }));
                if let Err(payload) = result {
                    lock(&crew.panic).get_or_insert_with(|| {
                        (worker_id, fx10_robust::panic_message(payload.as_ref()))
                    });
                    crew.stop_flag.store(true, Ordering::SeqCst);
                }
            });
        }
    });

    if let Some((worker, message)) = lock(&crew.panic).take() {
        return Err(Fx10Error::WorkerPanicked { worker, message });
    }
    if crew.cancelled.load(Ordering::SeqCst) || cancel.is_cancelled() {
        return Err(Fx10Error::Cancelled);
    }
    let exhausted = *lock(&crew.exhausted);
    let evals = crew.evals.load(Ordering::Relaxed) as usize;
    Ok(collect(sys, published, evals, exhausted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::LabelSet;
    use crate::solver::{solve_pair_naive, PairVar};
    use fx10_syntax::Label;
    use std::sync::Arc;

    fn c(labels: &[u32]) -> crate::sets::SharedLabelSet {
        Arc::new(LabelSet::from_labels(32, labels.iter().map(|&l| Label(l))))
    }

    fn chain_with_cycle() -> PairSystem {
        // m0 → m1 → m2 with a cycle {m1, m2} and a constant seed at m2.
        PairSystem {
            n_vars: 4,
            universe: 32,
            constraints: vec![
                PairConstraint {
                    lhs: PairVar(0),
                    terms: vec![
                        PairTerm::MVar(PairVar(1)),
                        PairTerm::Lcross(Label(0), c(&[5])),
                    ],
                },
                PairConstraint {
                    lhs: PairVar(1),
                    terms: vec![PairTerm::MVar(PairVar(2))],
                },
                PairConstraint {
                    lhs: PairVar(2),
                    terms: vec![
                        PairTerm::MVar(PairVar(1)),
                        PairTerm::Symcross(c(&[1, 2]), c(&[3])),
                    ],
                },
                // m3 independent (parallel branch).
                PairConstraint {
                    lhs: PairVar(3),
                    terms: vec![PairTerm::Lcross(Label(9), c(&[10, 11]))],
                },
            ],
        }
    }

    #[test]
    fn tarjan_finds_the_cycle() {
        let sys = chain_with_cycle();
        let cond = condense(&sys);
        let pos = |v: usize| {
            cond.comps
                .iter()
                .position(|comp| comp.contains(&(v as u32)))
                .unwrap()
        };
        assert_eq!(pos(1), pos(2), "m1, m2 share an SCC");
        assert_ne!(pos(0), pos(1));
        // Dependencies come before dependents.
        assert!(pos(1) < pos(0), "the cycle is solved before m0");
    }

    #[test]
    fn scc_solvers_match_naive() {
        let sys = chain_with_cycle();
        let naive = solve_pair_naive(&sys);
        let seq = solve_pair_scc(&sys);
        let par = solve_pair_scc_parallel(&sys, 4);
        assert_eq!(naive.values, seq.values);
        assert_eq!(naive.values, par.values);
        // The cycle propagated the symcross both ways and up to m0.
        assert!(seq.get(PairVar(0)).contains(Label(1), Label(3)));
        assert!(seq.get(PairVar(1)).contains(Label(2), Label(3)));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 20_000-long dependency chain: the iterative Tarjan and the
        // topological solve must handle it without recursion.
        let n = 20_000usize;
        let mut constraints = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let mut terms = vec![];
            if v + 1 < n as u32 {
                terms.push(PairTerm::MVar(PairVar(v + 1)));
            } else {
                terms.push(PairTerm::Lcross(Label(0), c(&[1])));
            }
            constraints.push(PairConstraint {
                lhs: PairVar(v),
                terms,
            });
        }
        let sys = PairSystem {
            n_vars: n,
            universe: 32,
            constraints,
        };
        let seq = solve_pair_scc(&sys);
        assert!(seq.get(PairVar(0)).contains(Label(0), Label(1)));
        let par = solve_pair_scc_parallel(&sys, 4);
        assert_eq!(seq.values, par.values);
    }
}
