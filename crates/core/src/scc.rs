//! SCC-condensation solvers for level-2 systems.
//!
//! The m-variable dependency graph of a program is mostly a DAG: `m_s`
//! unions its continuation's and nested bodies' m-variables, and cycles
//! arise only from recursive call chains. Condensing the graph into
//! strongly connected components and solving components in topological
//! order turns the global fixed point into a sequence of small local
//! fixed points — each constraint is evaluated until *its component*
//! stabilizes, never re-visited afterwards.
//!
//! Two variants:
//! - [`solve_pair_scc`] — sequential, components in topological order;
//! - [`solve_pair_scc_parallel`] — a crossbeam work crew over the
//!   condensation DAG: a component becomes ready when all components it
//!   depends on have published their values (`OnceLock` hand-off, no
//!   locks on the hot path). Independent subtrees of the program solve
//!   concurrently.
//!
//! Both produce the same least solution as the naive and worklist solvers
//! (property-tested in `tests/equivalence.rs`).

use crate::sets::PairSet;
use crate::solver::{PairConstraint, PairSolution, PairSystem, PairTerm};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Iterative Tarjan SCC over the m-variable dependency graph.
///
/// Returns `(comp_of_var, components)` with components listed in
/// *reverse* topological order (dependencies after dependents), i.e.
/// iterating the returned list backwards visits dependencies first.
fn tarjan(n_vars: usize, succs: &[Vec<u32>]) -> (Vec<u32>, Vec<Vec<u32>>) {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n_vars];
    let mut lowlink = vec![0u32; n_vars];
    let mut on_stack = vec![false; n_vars];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNSET; n_vars];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS stack: (node, next successor position).
    let mut work: Vec<(u32, usize)> = Vec::new();
    for root in 0..n_vars as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        work.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos < succs[v as usize].len() {
                let w = succs[v as usize][*pos];
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    work.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let cid = comps.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = cid;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    (comp_of, comps)
}

/// The condensation of a [`PairSystem`]: per-variable component ids,
/// components in dependency-first order, per-component constraints, and
/// the condensation DAG edges.
struct Condensation<'a> {
    /// Components in topological (dependency-first) order.
    comps: Vec<Vec<u32>>,
    /// Constraint indices per component (indexed like `comps`).
    comp_constraints: Vec<Vec<u32>>,
    /// For each component, the components that depend on it.
    dependents: Vec<Vec<u32>>,
    /// Number of distinct dependency components per component.
    indegree: Vec<usize>,
    sys: &'a PairSystem,
}

fn condense(sys: &PairSystem) -> Condensation<'_> {
    // succs[v] = variables v's value flows into... for Tarjan any
    // orientation works as long as we fix topological reading; use
    // lhs → rhs ("lhs depends on rhs").
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); sys.n_vars];
    for c in &sys.constraints {
        for t in &c.terms {
            if let PairTerm::MVar(v) = t {
                if *v != c.lhs {
                    succs[c.lhs.index()].push(v.0);
                }
            }
        }
    }
    let (comp_of, comps_rev) = tarjan(sys.n_vars, &succs);
    // Tarjan emits dependencies first under lhs→rhs orientation? It emits
    // components in reverse topological order of the succs orientation:
    // a component is completed only after everything it reaches. With
    // lhs→rhs, a component reaches its dependencies, so dependencies
    // complete (and are emitted) first — comps_rev is already
    // dependency-first.
    let comps = comps_rev;

    let n_comps = comps.len();
    let mut comp_constraints: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
    for (ci, c) in sys.constraints.iter().enumerate() {
        comp_constraints[comp_of[c.lhs.index()] as usize].push(ci as u32);
    }
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
    let mut indegree = vec![0usize; n_comps];
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for c in &sys.constraints {
        let lc = comp_of[c.lhs.index()];
        for t in &c.terms {
            if let PairTerm::MVar(v) = t {
                let vc = comp_of[v.index()];
                if vc != lc && seen.insert((vc, lc)) {
                    dependents[vc as usize].push(lc);
                    indegree[lc as usize] += 1;
                }
            }
        }
    }
    Condensation {
        comps,
        comp_constraints,
        dependents,
        indegree,
        sys,
    }
}

/// Solves one component's local fixed point.
///
/// `local` holds the component's values (indexed by position in
/// `members`); external variables are read from `published`.
fn solve_component(
    cond: &Condensation<'_>,
    cid: usize,
    published: &[OnceLock<PairSet>],
) -> Vec<PairSet> {
    let sys = cond.sys;
    let members = &cond.comps[cid];
    let slot_of = |v: u32| members.iter().position(|&m| m == v);
    let mut local: Vec<PairSet> = members
        .iter()
        .map(|_| PairSet::empty(sys.universe))
        .collect();
    let empty = PairSet::empty(sys.universe);

    // Fast path: a singleton component whose constraints never read the
    // member itself needs exactly one evaluation — no verification pass
    // re-applying the (expensive, already-absorbed) constant terms.
    let acyclic_singleton = members.len() == 1
        && cond.comp_constraints[cid].iter().all(|&ci| {
            sys.constraints[ci as usize]
                .terms
                .iter()
                .all(|t| !matches!(t, PairTerm::MVar(v) if v.0 == members[0]))
        });
    if acyclic_singleton {
        for &ci in &cond.comp_constraints[cid] {
            let c: &PairConstraint = &sys.constraints[ci as usize];
            for t in &c.terms {
                match t {
                    PairTerm::Lcross(l, s) => {
                        local[0].add_lcross(*l, s);
                    }
                    PairTerm::Symcross(a, b) => {
                        local[0].add_symcross(a, b);
                    }
                    PairTerm::MVar(v) => {
                        let s = published[v.index()].get().unwrap_or(&empty);
                        local[0].union_with(s);
                    }
                }
            }
        }
        return local;
    }

    loop {
        let mut changed = false;
        for &ci in &cond.comp_constraints[cid] {
            let c: &PairConstraint = &sys.constraints[ci as usize];
            let lhs_slot = slot_of(c.lhs.0).expect("constraint lhs in component");
            for t in &c.terms {
                match t {
                    PairTerm::Lcross(l, s) => {
                        changed |= local[lhs_slot].add_lcross(*l, s);
                    }
                    PairTerm::Symcross(a, b) => {
                        changed |= local[lhs_slot].add_symcross(a, b);
                    }
                    PairTerm::MVar(v) => {
                        if *v == c.lhs {
                            continue;
                        }
                        match slot_of(v.0) {
                            Some(src) => {
                                // Intra-component: split-borrow.
                                let (lo, hi) = (lhs_slot.min(src), lhs_slot.max(src));
                                let (left, right) = local.split_at_mut(hi);
                                let (dst, s) = if lhs_slot < src {
                                    (&mut left[lo], &right[0])
                                } else {
                                    (&mut right[0], &left[lo])
                                };
                                changed |= dst.union_with(s);
                            }
                            None => {
                                // Cross-component: the dependency is
                                // final (published before we started).
                                let s = published[v.index()].get().unwrap_or(&empty);
                                changed |= local[lhs_slot].union_with(s);
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    local
}

/// Publishes a solved component's values.
fn publish(cond: &Condensation<'_>, cid: usize, local: Vec<PairSet>, published: &[OnceLock<PairSet>]) {
    for (&v, value) in cond.comps[cid].iter().zip(local) {
        published[v as usize]
            .set(value)
            .expect("each variable is published exactly once");
    }
}

fn collect(sys: &PairSystem, published: Vec<OnceLock<PairSet>>, evals_hint: usize) -> PairSolution {
    let values = published
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(|| PairSet::empty(sys.universe)))
        .collect();
    PairSolution {
        values,
        passes: 0,
        evals: evals_hint,
    }
}

/// Sequential SCC-condensation solver: components in topological order,
/// each iterated to its local fixed point exactly once.
pub fn solve_pair_scc(sys: &PairSystem) -> PairSolution {
    let cond = condense(sys);
    let published: Vec<OnceLock<PairSet>> =
        (0..sys.n_vars).map(|_| OnceLock::new()).collect();
    for cid in 0..cond.comps.len() {
        let local = solve_component(&cond, cid, &published);
        publish(&cond, cid, local, &published);
    }
    collect(sys, published, sys.constraints.len())
}

/// Parallel SCC-condensation solver: a work crew drains the condensation
/// DAG, starting each component once its dependencies have published.
pub fn solve_pair_scc_parallel(sys: &PairSystem, threads: usize) -> PairSolution {
    let threads = threads.max(1);
    let cond = condense(sys);
    let n_comps = cond.comps.len();
    if n_comps == 0 {
        return collect(sys, (0..sys.n_vars).map(|_| OnceLock::new()).collect(), 0);
    }
    let published: Vec<OnceLock<PairSet>> =
        (0..sys.n_vars).map(|_| OnceLock::new()).collect();
    let remaining_deps: Vec<AtomicUsize> = cond
        .indegree
        .iter()
        .map(|&d| AtomicUsize::new(d))
        .collect();
    let done = AtomicUsize::new(0);

    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    for (cid, &deg) in cond.indegree.iter().enumerate() {
        if deg == 0 {
            tx.send(cid as u32).unwrap();
        }
    }

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let tx = tx.clone();
            let cond = &cond;
            let published = &published;
            let remaining_deps = &remaining_deps;
            let done = &done;
            scope.spawn(move |_| loop {
                match rx.try_recv() {
                    Ok(cid) => {
                        let cid = cid as usize;
                        let local = solve_component(cond, cid, published);
                        publish(cond, cid, local, published);
                        for &dep in &cond.dependents[cid] {
                            if remaining_deps[dep as usize].fetch_sub(1, Ordering::AcqRel) == 1
                            {
                                tx.send(dep).unwrap();
                            }
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(crossbeam::channel::TryRecvError::Empty) => {
                        if done.load(Ordering::SeqCst) == n_comps {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => break,
                }
            });
        }
        drop(tx);
    })
    .expect("scc solver threads must not panic");

    collect(sys, published, sys.constraints.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::LabelSet;
    use crate::solver::{solve_pair_naive, PairVar};
    use fx10_syntax::Label;
    use std::sync::Arc;

    fn c(labels: &[u32]) -> crate::sets::SharedLabelSet {
        Arc::new(LabelSet::from_labels(
            32,
            labels.iter().map(|&l| Label(l)),
        ))
    }

    fn chain_with_cycle() -> PairSystem {
        // m0 → m1 → m2 with a cycle {m1, m2} and a constant seed at m2.
        PairSystem {
            n_vars: 4,
            universe: 32,
            constraints: vec![
                PairConstraint {
                    lhs: PairVar(0),
                    terms: vec![
                        PairTerm::MVar(PairVar(1)),
                        PairTerm::Lcross(Label(0), c(&[5])),
                    ],
                },
                PairConstraint {
                    lhs: PairVar(1),
                    terms: vec![PairTerm::MVar(PairVar(2))],
                },
                PairConstraint {
                    lhs: PairVar(2),
                    terms: vec![
                        PairTerm::MVar(PairVar(1)),
                        PairTerm::Symcross(c(&[1, 2]), c(&[3])),
                    ],
                },
                // m3 independent (parallel branch).
                PairConstraint {
                    lhs: PairVar(3),
                    terms: vec![PairTerm::Lcross(Label(9), c(&[10, 11]))],
                },
            ],
        }
    }

    #[test]
    fn tarjan_finds_the_cycle() {
        let sys = chain_with_cycle();
        let cond = condense(&sys);
        let pos = |v: usize| {
            cond.comps
                .iter()
                .position(|comp| comp.contains(&(v as u32)))
                .unwrap()
        };
        assert_eq!(pos(1), pos(2), "m1, m2 share an SCC");
        assert_ne!(pos(0), pos(1));
        // Dependencies come before dependents.
        assert!(pos(1) < pos(0), "the cycle is solved before m0");
    }

    #[test]
    fn scc_solvers_match_naive() {
        let sys = chain_with_cycle();
        let naive = solve_pair_naive(&sys);
        let seq = solve_pair_scc(&sys);
        let par = solve_pair_scc_parallel(&sys, 4);
        assert_eq!(naive.values, seq.values);
        assert_eq!(naive.values, par.values);
        // The cycle propagated the symcross both ways and up to m0.
        assert!(seq.get(PairVar(0)).contains(Label(1), Label(3)));
        assert!(seq.get(PairVar(1)).contains(Label(2), Label(3)));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 20_000-long dependency chain: the iterative Tarjan and the
        // topological solve must handle it without recursion.
        let n = 20_000usize;
        let mut constraints = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let mut terms = vec![];
            if v + 1 < n as u32 {
                terms.push(PairTerm::MVar(PairVar(v + 1)));
            } else {
                terms.push(PairTerm::Lcross(Label(0), c(&[1])));
            }
            constraints.push(PairConstraint {
                lhs: PairVar(v),
                terms,
            });
        }
        let sys = PairSystem {
            n_vars: n,
            universe: 32,
            constraints,
        };
        let seq = solve_pair_scc(&sys);
        assert!(seq.get(PairVar(0)).contains(Label(0), Label(1)));
        let par = solve_pair_scc_parallel(&sys, 4);
        assert_eq!(seq.values, par.values);
    }
}
