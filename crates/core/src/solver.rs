//! Fixed-point solvers for union constraint systems (paper §5.2–5.3).
//!
//! A constraint is `lhs ⊇ union(terms)`. The paper's systems give every
//! variable exactly one equality constraint with distinct left-hand
//! sides, in which case the least solution of the ⊇-system coincides with
//! the least fixed point of the paper's function `F` (each pass applies
//! `F` once and keeps previous values — monotonicity makes accumulation
//! and recomputation agree at the least fixed point). The ⊇-form also
//! accommodates the context-insensitive analysis's genuine subset
//! constraints `r_s ⊆ r_i` (constraint 83) with no special casing.
//!
//! Two solvers are provided for each domain:
//! - **naive** — round-robin passes over all constraints until a full pass
//!   changes nothing. The pass count is reported; this is the "Number of
//!   iterations" column of Figure 8 (the final, changeless pass included,
//!   matching the paper's minimum of 2).
//! - **worklist** — seeds all constraints, then re-evaluates only the
//!   constraints whose right-hand-side variables changed. Same solution;
//!   used as the production path and measured by the solver-ablation
//!   bench.
//!
//! Every solver also has a `_budgeted` variant taking a [`BudgetMeter`]:
//! one meter tick per constraint evaluation, so a `max_iters` budget
//! bounds the whole analysis across phases. Budget exhaustion returns
//! the partial (under-approximate) solution tagged with its
//! [`Exhaustion`] provenance; cancellation returns
//! [`Fx10Error::Cancelled`].

use crate::sets::{LabelSet, PairSet, SharedLabelSet};
use fx10_robust::{BudgetMeter, Exhaustion, Fx10Error, Stop};
use fx10_syntax::Label;

/// A level-1 (or Slabels) set variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetVar(pub u32);

impl SetVar {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A right-hand-side atom of a set constraint.
#[derive(Debug, Clone)]
pub enum SetTerm {
    /// A constant label set.
    Const(SharedLabelSet),
    /// Another variable's current value.
    Var(SetVar),
}

/// `lhs ⊇ union(terms)`.
#[derive(Debug, Clone)]
pub struct SetConstraint {
    /// The constrained variable.
    pub lhs: SetVar,
    /// Right-hand-side atoms, joined by union.
    pub terms: Vec<SetTerm>,
}

/// A system of set constraints over `n_vars` variables whose values are
/// label sets over `universe` labels.
#[derive(Debug, Clone)]
pub struct SetSystem {
    /// Number of variables.
    pub n_vars: usize,
    /// Number of labels the sets range over.
    pub universe: usize,
    /// The constraints.
    pub constraints: Vec<SetConstraint>,
}

/// The least solution of a [`SetSystem`] plus solver statistics.
#[derive(Debug, Clone)]
pub struct SetSolution {
    /// Value per variable.
    pub values: Vec<LabelSet>,
    /// Round-robin passes (naive) or 0 (worklist).
    pub passes: usize,
    /// Individual constraint evaluations.
    pub evals: usize,
    /// `Some` when a budget cut the solve short: the values are a sound
    /// under-approximation of the least solution.
    pub exhausted: Option<Exhaustion>,
}

impl SetSolution {
    /// Value of a variable.
    #[inline]
    pub fn get(&self, v: SetVar) -> &LabelSet {
        &self.values[v.index()]
    }

    /// Total heap bytes of all values (space accounting).
    pub fn bytes(&self) -> usize {
        self.values.iter().map(|s| s.bytes()).sum()
    }
}

fn eval_set_constraint(c: &SetConstraint, values: &mut [LabelSet]) -> bool {
    let mut changed = false;
    for t in &c.terms {
        match t {
            SetTerm::Const(s) => {
                changed |= {
                    let lhs = &mut values[c.lhs.index()];
                    lhs.union_with(s)
                }
            }
            SetTerm::Var(v) => {
                if *v == c.lhs {
                    continue; // x ⊇ x is vacuous
                }
                // Split borrows: lhs and rhs are distinct indices.
                let (a, b) = (c.lhs.index(), v.index());
                let (lo, hi) = (a.min(b), a.max(b));
                let (left, right) = values.split_at_mut(hi);
                let (lhs, rhs) = if a < b {
                    (&mut left[lo], &right[0])
                } else {
                    (&mut right[0], &left[lo])
                };
                changed |= lhs.union_with(rhs);
            }
        }
    }
    changed
}

/// Fallback for the infallible wrappers: an unlimited meter cannot trip,
/// so this is unreachable — but library paths never panic, so degrade to
/// an empty, exhaustion-tagged solution instead.
macro_rules! unreachable_partial {
    ($sol:ident) => {
        $sol {
            values: Vec::new(),
            passes: 0,
            evals: 0,
            exhausted: Some(Exhaustion::SolverIterations),
        }
    };
}

/// Naive round-robin solver; reports the pass count.
pub fn solve_set_naive(sys: &SetSystem) -> SetSolution {
    solve_set_naive_budgeted(sys, &mut BudgetMeter::unlimited())
        .unwrap_or_else(|_| unreachable_partial!(SetSolution))
}

/// [`solve_set_naive`] under a budget; exhaustion returns the partial
/// solution tagged, cancellation returns `Err`.
pub fn solve_set_naive_budgeted(
    sys: &SetSystem,
    meter: &mut BudgetMeter,
) -> Result<SetSolution, Fx10Error> {
    let mut values = vec![LabelSet::empty(sys.universe); sys.n_vars];
    let mut passes = 0usize;
    let mut evals = 0usize;
    let mut exhausted = None;
    'solve: loop {
        passes += 1;
        let mut changed = false;
        for c in &sys.constraints {
            match meter.tick() {
                Ok(()) => {}
                Err(Stop::Exhausted(e)) => {
                    exhausted = Some(e);
                    break 'solve;
                }
                Err(stop @ Stop::Cancelled) => return Err(stop.into()),
            }
            evals += 1;
            changed |= eval_set_constraint(c, &mut values);
        }
        if !changed {
            break;
        }
    }
    Ok(SetSolution {
        values,
        passes,
        evals,
        exhausted,
    })
}

/// Worklist solver; same least solution, usually far fewer evaluations.
pub fn solve_set_worklist(sys: &SetSystem) -> SetSolution {
    solve_set_worklist_budgeted(sys, &mut BudgetMeter::unlimited())
        .unwrap_or_else(|_| unreachable_partial!(SetSolution))
}

/// [`solve_set_worklist`] under a budget.
pub fn solve_set_worklist_budgeted(
    sys: &SetSystem,
    meter: &mut BudgetMeter,
) -> Result<SetSolution, Fx10Error> {
    let mut values = vec![LabelSet::empty(sys.universe); sys.n_vars];
    // deps[v] = constraints whose rhs mentions v.
    let mut deps: Vec<Vec<u32>> = vec![Vec::new(); sys.n_vars];
    for (ci, c) in sys.constraints.iter().enumerate() {
        for t in &c.terms {
            if let SetTerm::Var(v) = t {
                deps[v.index()].push(ci as u32);
            }
        }
    }
    let mut on_queue = vec![true; sys.constraints.len()];
    let mut queue: std::collections::VecDeque<u32> = (0..sys.constraints.len() as u32).collect();
    let mut evals = 0usize;
    let mut exhausted = None;
    while let Some(ci) = queue.pop_front() {
        match meter.tick() {
            Ok(()) => {}
            Err(Stop::Exhausted(e)) => {
                exhausted = Some(e);
                break;
            }
            Err(stop @ Stop::Cancelled) => return Err(stop.into()),
        }
        on_queue[ci as usize] = false;
        let c = &sys.constraints[ci as usize];
        evals += 1;
        if eval_set_constraint(c, &mut values) {
            for &d in &deps[c.lhs.index()] {
                if !on_queue[d as usize] {
                    on_queue[d as usize] = true;
                    queue.push_back(d);
                }
            }
        }
    }
    Ok(SetSolution {
        values,
        passes: 0,
        evals,
        exhausted,
    })
}

/// A level-2 (pair) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairVar(pub u32);

impl PairVar {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A right-hand-side atom of a level-2 constraint, *after* the level-1
/// solution has been substituted in (the paper's "simplified level-2
/// constraints", §5.3): label-set arguments are constants.
#[derive(Debug, Clone)]
pub enum PairTerm {
    /// `Lcross(l, c)` for a solved set `c`.
    Lcross(Label, SharedLabelSet),
    /// `symcross(c1, c2)` for solved sets (covers `Scross` too).
    Symcross(SharedLabelSet, SharedLabelSet),
    /// Another m-variable.
    MVar(PairVar),
}

/// `lhs ⊇ union(terms)` over pair sets.
#[derive(Debug, Clone)]
pub struct PairConstraint {
    /// The constrained m-variable.
    pub lhs: PairVar,
    /// Right-hand-side atoms, joined by union.
    pub terms: Vec<PairTerm>,
}

/// A simplified level-2 system.
#[derive(Debug, Clone)]
pub struct PairSystem {
    /// Number of m-variables.
    pub n_vars: usize,
    /// Number of labels the pairs range over.
    pub universe: usize,
    /// The constraints.
    pub constraints: Vec<PairConstraint>,
}

/// The least solution of a [`PairSystem`] plus solver statistics.
#[derive(Debug, Clone)]
pub struct PairSolution {
    /// Value per variable.
    pub values: Vec<PairSet>,
    /// Round-robin passes (naive) or 0 (worklist).
    pub passes: usize,
    /// Individual constraint evaluations.
    pub evals: usize,
    /// `Some` when a budget cut the solve short: the values are a sound
    /// under-approximation of the least solution.
    pub exhausted: Option<Exhaustion>,
}

impl PairSolution {
    /// Value of a variable.
    #[inline]
    pub fn get(&self, v: PairVar) -> &PairSet {
        &self.values[v.index()]
    }

    /// Total heap bytes of all values.
    pub fn bytes(&self) -> usize {
        self.values.iter().map(|s| s.bytes()).sum()
    }
}

fn eval_pair_constraint(c: &PairConstraint, values: &mut [PairSet]) -> bool {
    let mut changed = false;
    for t in &c.terms {
        match t {
            PairTerm::Lcross(l, s) => {
                changed |= values[c.lhs.index()].add_lcross(*l, s);
            }
            PairTerm::Symcross(a, b) => {
                changed |= values[c.lhs.index()].add_symcross(a, b);
            }
            PairTerm::MVar(v) => {
                if *v == c.lhs {
                    continue;
                }
                let (a, b) = (c.lhs.index(), v.index());
                let (lo, hi) = (a.min(b), a.max(b));
                let (left, right) = values.split_at_mut(hi);
                let (lhs, rhs) = if a < b {
                    (&mut left[lo], &right[0])
                } else {
                    (&mut right[0], &left[lo])
                };
                changed |= lhs.union_with(rhs);
            }
        }
    }
    changed
}

/// Naive round-robin level-2 solver; reports the pass count.
pub fn solve_pair_naive(sys: &PairSystem) -> PairSolution {
    solve_pair_naive_budgeted(sys, &mut BudgetMeter::unlimited())
        .unwrap_or_else(|_| unreachable_partial!(PairSolution))
}

/// [`solve_pair_naive`] under a budget.
pub fn solve_pair_naive_budgeted(
    sys: &PairSystem,
    meter: &mut BudgetMeter,
) -> Result<PairSolution, Fx10Error> {
    let mut values = vec![PairSet::empty(sys.universe); sys.n_vars];
    let mut passes = 0usize;
    let mut evals = 0usize;
    let mut exhausted = None;
    'solve: loop {
        passes += 1;
        let mut changed = false;
        for c in &sys.constraints {
            match meter.tick() {
                Ok(()) => {}
                Err(Stop::Exhausted(e)) => {
                    exhausted = Some(e);
                    break 'solve;
                }
                Err(stop @ Stop::Cancelled) => return Err(stop.into()),
            }
            evals += 1;
            changed |= eval_pair_constraint(c, &mut values);
        }
        if !changed {
            break;
        }
    }
    Ok(PairSolution {
        values,
        passes,
        evals,
        exhausted,
    })
}

/// Worklist level-2 solver.
pub fn solve_pair_worklist(sys: &PairSystem) -> PairSolution {
    solve_pair_worklist_budgeted(sys, &mut BudgetMeter::unlimited())
        .unwrap_or_else(|_| unreachable_partial!(PairSolution))
}

/// [`solve_pair_worklist`] under a budget.
pub fn solve_pair_worklist_budgeted(
    sys: &PairSystem,
    meter: &mut BudgetMeter,
) -> Result<PairSolution, Fx10Error> {
    let mut values = vec![PairSet::empty(sys.universe); sys.n_vars];
    let mut deps: Vec<Vec<u32>> = vec![Vec::new(); sys.n_vars];
    for (ci, c) in sys.constraints.iter().enumerate() {
        for t in &c.terms {
            if let PairTerm::MVar(v) = t {
                deps[v.index()].push(ci as u32);
            }
        }
    }
    let mut on_queue = vec![true; sys.constraints.len()];
    let mut queue: std::collections::VecDeque<u32> = (0..sys.constraints.len() as u32).collect();
    let mut evals = 0usize;
    let mut exhausted = None;
    while let Some(ci) = queue.pop_front() {
        match meter.tick() {
            Ok(()) => {}
            Err(Stop::Exhausted(e)) => {
                exhausted = Some(e);
                break;
            }
            Err(stop @ Stop::Cancelled) => return Err(stop.into()),
        }
        on_queue[ci as usize] = false;
        let c = &sys.constraints[ci as usize];
        evals += 1;
        if eval_pair_constraint(c, &mut values) {
            for &d in &deps[c.lhs.index()] {
                if !on_queue[d as usize] {
                    on_queue[d as usize] = true;
                    queue.push_back(d);
                }
            }
        }
    }
    Ok(PairSolution {
        values,
        passes: 0,
        evals,
        exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn c(labels: &[u32]) -> SharedLabelSet {
        Arc::new(LabelSet::from_labels(16, labels.iter().map(|&l| Label(l))))
    }

    fn sys_chain() -> SetSystem {
        // v0 = {0}; v1 = v0 ∪ {1}; v2 = v1; cyclic v0 ⊇ v2 keeps it
        // interesting but adds nothing new.
        SetSystem {
            n_vars: 3,
            universe: 16,
            constraints: vec![
                SetConstraint {
                    lhs: SetVar(0),
                    terms: vec![SetTerm::Const(c(&[0]))],
                },
                SetConstraint {
                    lhs: SetVar(1),
                    terms: vec![SetTerm::Var(SetVar(0)), SetTerm::Const(c(&[1]))],
                },
                SetConstraint {
                    lhs: SetVar(2),
                    terms: vec![SetTerm::Var(SetVar(1))],
                },
                SetConstraint {
                    lhs: SetVar(0),
                    terms: vec![SetTerm::Var(SetVar(2))],
                },
            ],
        }
    }

    #[test]
    fn naive_and_worklist_agree() {
        let sys = sys_chain();
        let a = solve_set_naive(&sys);
        let b = solve_set_worklist(&sys);
        assert_eq!(a.values, b.values);
        assert_eq!(a.get(SetVar(2)).iter().count(), 2);
        assert!(a.get(SetVar(0)).contains(Label(1)), "cycle propagates back");
    }

    #[test]
    fn naive_pass_count_includes_final_check() {
        // A system already at fixpoint (all empty) takes exactly 1 pass;
        // the chain takes a few, ending with a changeless pass.
        let empty = SetSystem {
            n_vars: 1,
            universe: 8,
            constraints: vec![SetConstraint {
                lhs: SetVar(0),
                terms: vec![],
            }],
        };
        assert_eq!(solve_set_naive(&empty).passes, 1);
        assert!(solve_set_naive(&sys_chain()).passes >= 2);
    }

    #[test]
    fn reverse_order_needs_more_passes_than_worklist_evals_suggest() {
        // Constraints listed against dependency order force extra passes.
        let mut sys = sys_chain();
        sys.constraints.reverse();
        let fwd = solve_set_naive(&sys_chain());
        let rev = solve_set_naive(&sys);
        assert_eq!(fwd.values, rev.values);
        assert!(rev.passes >= fwd.passes);
    }

    #[test]
    fn pair_system_solves_lcross_chain() {
        let sys = PairSystem {
            n_vars: 2,
            universe: 16,
            constraints: vec![
                PairConstraint {
                    lhs: PairVar(0),
                    terms: vec![PairTerm::Lcross(Label(3), c(&[1, 2]))],
                },
                PairConstraint {
                    lhs: PairVar(1),
                    terms: vec![
                        PairTerm::MVar(PairVar(0)),
                        PairTerm::Symcross(c(&[5]), c(&[6])),
                    ],
                },
            ],
        };
        let a = solve_pair_naive(&sys);
        let b = solve_pair_worklist(&sys);
        assert_eq!(a.values, b.values);
        assert_eq!(a.get(PairVar(1)).len(), 3); // (1,3), (2,3), (5,6)
        assert!(a.get(PairVar(1)).contains(Label(5), Label(6)));
        assert!(a.get(PairVar(0)).is_subset(a.get(PairVar(1))));
    }

    #[test]
    fn pair_cycles_converge() {
        // m0 ⊇ m1, m1 ⊇ m0, m1 ⊇ {(1,1)}.
        let sys = PairSystem {
            n_vars: 2,
            universe: 8,
            constraints: vec![
                PairConstraint {
                    lhs: PairVar(0),
                    terms: vec![PairTerm::MVar(PairVar(1))],
                },
                PairConstraint {
                    lhs: PairVar(1),
                    terms: vec![
                        PairTerm::MVar(PairVar(0)),
                        PairTerm::Lcross(Label(1), c(&[1])),
                    ],
                },
            ],
        };
        let s = solve_pair_naive(&sys);
        assert_eq!(s.get(PairVar(0)), s.get(PairVar(1)));
        assert_eq!(s.get(PairVar(0)).len(), 1);
    }
}
