//! Dense statement indexing.
//!
//! The constraint formulation needs variables `r_s`, `o_s`, `m_s` "for
//! every statement s" (§5.1), where statements are *suffixes* of
//! instruction sequences (`s ::= i | i s`). Every instruction heads
//! exactly one such suffix, and labels are dense per instruction, so we
//! identify a statement with the label of its head instruction:
//! [`StmtId`] `== Label` numerically. That makes every per-statement table
//! a flat `Vec` indexed by label.

use fx10_syntax::{FuncId, InstrKind, Label, Program, Stmt};

/// Identifies the suffix statement headed by the instruction with this
/// label index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The label of the statement's head instruction (identical index).
    #[inline]
    pub fn label(self) -> Label {
        Label(self.0)
    }
}

/// The head-instruction shape of a statement, with nested statements
/// referenced by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// `skip` or `a[d] = e` — straight-line instructions are
    /// indistinguishable to the analysis.
    Simple,
    /// `while (a[d] != 0) body`.
    While {
        /// The loop body statement.
        body: StmtId,
    },
    /// `async body`.
    Async {
        /// The spawned statement.
        body: StmtId,
    },
    /// `finish body`.
    Finish {
        /// The awaited statement.
        body: StmtId,
    },
    /// `f()`.
    Call {
        /// The called method.
        callee: FuncId,
    },
}

/// Everything the analysis needs to know about one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtInfo {
    /// Head shape.
    pub kind: StmtKind,
    /// The continuation suffix (`s₁` in `i s₁`), if any.
    pub tail: Option<StmtId>,
    /// The enclosing method.
    pub method: FuncId,
}

/// Per-program statement index.
#[derive(Debug, Clone)]
pub struct StmtIndex {
    stmts: Vec<StmtInfo>,
    body_of_method: Vec<StmtId>,
}

impl StmtIndex {
    /// Builds the index by walking every method body.
    pub fn build(p: &Program) -> StmtIndex {
        let mut stmts = vec![
            StmtInfo {
                kind: StmtKind::Simple,
                tail: None,
                method: FuncId(0),
            };
            p.label_count()
        ];
        let mut body_of_method = Vec::with_capacity(p.method_count());

        fn walk(s: &Stmt, m: FuncId, stmts: &mut [StmtInfo]) -> StmtId {
            let first = StmtId(s.head().label.0);
            let ids: Vec<StmtId> = s.instrs().iter().map(|i| StmtId(i.label.0)).collect();
            for (k, instr) in s.instrs().iter().enumerate() {
                let kind = match &instr.kind {
                    InstrKind::Skip | InstrKind::Assign { .. } => StmtKind::Simple,
                    InstrKind::While { body, .. } => StmtKind::While {
                        body: walk(body, m, stmts),
                    },
                    InstrKind::Async { body } => StmtKind::Async {
                        body: walk(body, m, stmts),
                    },
                    InstrKind::Finish { body } => StmtKind::Finish {
                        body: walk(body, m, stmts),
                    },
                    InstrKind::Call { callee } => StmtKind::Call { callee: *callee },
                };
                stmts[ids[k].index()] = StmtInfo {
                    kind,
                    tail: ids.get(k + 1).copied(),
                    method: m,
                };
            }
            first
        }

        for (mi, method) in p.methods().iter().enumerate() {
            let first = walk(method.body(), FuncId(mi as u32), &mut stmts);
            body_of_method.push(first);
        }

        StmtIndex {
            stmts,
            body_of_method,
        }
    }

    /// Number of statements (== number of labels).
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True iff the program had no instructions (impossible for validated
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Info for one statement.
    #[inline]
    pub fn info(&self, s: StmtId) -> &StmtInfo {
        &self.stmts[s.index()]
    }

    /// The statement id of a method's body.
    #[inline]
    pub fn method_body(&self, f: FuncId) -> StmtId {
        self.body_of_method[f.index()]
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.body_of_method.len()
    }

    /// Iterates all statement ids.
    pub fn ids(&self) -> impl Iterator<Item = StmtId> {
        (0..self.stmts.len() as u32).map(StmtId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_syntax::examples;

    #[test]
    fn index_of_example_2_2() {
        let p = examples::example_2_2();
        let idx = StmtIndex::build(&p);
        assert_eq!(idx.len(), p.label_count());
        assert_eq!(idx.method_count(), 2);

        // f's body: lone async with a skip body.
        let f = p.find_method("f").unwrap();
        let fb = idx.method_body(f);
        let info = idx.info(fb);
        assert_eq!(info.method, f);
        assert!(info.tail.is_none());
        match info.kind {
            StmtKind::Async { body } => {
                assert_eq!(idx.info(body).kind, StmtKind::Simple);
                assert!(idx.info(body).tail.is_none());
            }
            k => panic!("expected async, got {k:?}"),
        }

        // main's body: finish S1 with tail finish S2.
        let main = p.main();
        let mb = idx.method_body(main);
        let info = idx.info(mb);
        assert_eq!(p.labels().display(mb.label()), "S1");
        let s2 = info.tail.expect("S1 has continuation S2");
        assert_eq!(p.labels().display(s2.label()), "S2");
        assert!(idx.info(s2).tail.is_none());

        // Inside S1's finish: async A3 then call F1.
        match info.kind {
            StmtKind::Finish { body } => {
                let a3 = idx.info(body);
                assert!(matches!(a3.kind, StmtKind::Async { .. }));
                let f1 = a3.tail.unwrap();
                assert_eq!(idx.info(f1).kind, StmtKind::Call { callee: f });
                assert!(idx.info(f1).tail.is_none());
            }
            k => panic!("expected finish, got {k:?}"),
        }
    }

    #[test]
    fn while_bodies_are_indexed() {
        let p = fx10_syntax::Program::parse("def main() { while (a[0] != 0) { a[0] = 0; S; } K; }")
            .unwrap();
        let idx = StmtIndex::build(&p);
        let mb = idx.method_body(p.main());
        match idx.info(mb).kind {
            StmtKind::While { body } => {
                assert_eq!(idx.info(body).kind, StmtKind::Simple);
                let s = idx.info(body).tail.unwrap();
                assert!(idx.info(s).tail.is_none());
            }
            k => panic!("expected while, got {k:?}"),
        }
        assert!(idx.info(idx.info(mb).tail.unwrap()).tail.is_none());
    }
}
