//! Vector clocks and the dynamic race detector over the shared array.
//!
//! Every *activity* (the root, plus one per executed `async`) gets a
//! numeric id and a [`VClock`]. The happens-before relation of
//! async-finish programs is built from exactly two edges:
//!
//! * **fork** — spawning an `async` orders the parent's past before the
//!   child ([`VClock::fork`]: the child starts from the parent's clock,
//!   then both sides bump their own component so neither sees the
//!   other's *future*);
//! * **finish join** — a `finish` scope accumulates the final clock of
//!   every activity it transitively spawned, and the waiting activity
//!   joins that accumulator when the latch reaches zero. A plain `async`
//!   that completes creates *no* edge: its clock only folds into the
//!   enclosing scope's accumulator.
//!
//! Because there are no locks, this relation is series-parallel and —
//! crucially — independent of the schedule that produced it: any two
//! runs taking the same control-flow path compute the same
//! happens-before order, so a single instrumented run (even the serial
//! elision) soundly detects every race on the executed path.
//!
//! The detector keeps FastTrack-style shadow cells: per array cell, the
//! set of read and write *epochs* `(activity, clock-component, label)`.
//! An access races a prior epoch iff the current activity's clock does
//! not dominate it. Epochs are deduplicated by `(activity, label)`
//! keeping the latest clock component — lossless for both detection and
//! the reported label pair, since a later same-label access by the same
//! activity dominates the earlier one with respect to every other
//! activity's view.

use fx10_semantics::parallel::pair;
use fx10_semantics::LabelPair;
use fx10_syntax::Label;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// A vector clock: component `i` counts the events activity `i` has
/// performed that the owner has observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (observes nothing).
    pub fn new() -> VClock {
        VClock(Vec::new())
    }

    /// Component `tid` (0 when never bumped).
    pub fn get(&self, tid: u32) -> u32 {
        self.0.get(tid as usize).copied().unwrap_or(0)
    }

    /// Increments component `tid`.
    pub fn bump(&mut self, tid: u32) {
        let i = tid as usize;
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    /// Pointwise maximum: afterwards `self` observes everything `other`
    /// observed.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(*o);
        }
    }

    /// The fork edge of an `async`: the new activity `child` inherits the
    /// parent's past (clone + bump its own component) and the parent
    /// bumps its own component so the child does not see the parent's
    /// subsequent events as ordered. Returns the child's clock.
    pub fn fork(parent: &mut VClock, parent_tid: u32, child_tid: u32) -> VClock {
        let mut child = parent.clone();
        child.bump(child_tid);
        parent.bump(parent_tid);
        child
    }
}

/// A race observed on a real execution: two accesses to `cell`, at least
/// one a write, unordered by happens-before. `pair` is normalized
/// (smaller label first), matching the static analyses' convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DetectedRace {
    /// The two instruction labels, normalized.
    pub pair: LabelPair,
    /// The array cell both touched.
    pub cell: usize,
}

/// One recorded access epoch.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    tid: u32,
    at: u32,
    label: Label,
}

impl Epoch {
    /// Is this epoch ordered before an access by an activity whose clock
    /// is `clock`?
    fn before(&self, clock: &VClock) -> bool {
        clock.get(self.tid) >= self.at
    }
}

#[derive(Debug, Default)]
struct Shadow {
    writes: Vec<Epoch>,
    reads: Vec<Epoch>,
}

fn record(epochs: &mut Vec<Epoch>, e: Epoch) {
    if let Some(old) = epochs
        .iter_mut()
        .find(|o| o.tid == e.tid && o.label == e.label)
    {
        old.at = old.at.max(e.at);
    } else {
        epochs.push(e);
    }
}

/// The shadow memory: one lock-guarded cell of epochs per array cell,
/// plus the set of races seen so far. Safe to share across the scheduler
/// crew.
#[derive(Debug)]
pub struct Detector {
    cells: Vec<Mutex<Shadow>>,
    races: Mutex<BTreeSet<DetectedRace>>,
}

impl Detector {
    /// A detector for an array of `cells` cells.
    pub fn new(cells: usize) -> Detector {
        Detector {
            cells: (0..cells).map(|_| Mutex::new(Shadow::default())).collect(),
            races: Mutex::new(BTreeSet::new()),
        }
    }

    fn epoch(tid: u32, clock: &VClock, label: Label) -> Epoch {
        Epoch {
            tid,
            at: clock.get(tid),
            label,
        }
    }

    fn flag(&self, prior: &Epoch, label: Label, cell: usize) {
        self.races.lock().unwrap().insert(DetectedRace {
            pair: pair(prior.label, label),
            cell,
        });
    }

    /// Activity `tid` (at `clock`) reads `cell` at instruction `label`.
    pub fn on_read(&self, cell: usize, label: Label, tid: u32, clock: &VClock) {
        let mut shadow = self.cells[cell].lock().unwrap();
        for w in &shadow.writes {
            if !w.before(clock) {
                self.flag(w, label, cell);
            }
        }
        record(&mut shadow.reads, Detector::epoch(tid, clock, label));
    }

    /// Activity `tid` (at `clock`) writes `cell` at instruction `label`.
    pub fn on_write(&self, cell: usize, label: Label, tid: u32, clock: &VClock) {
        let mut shadow = self.cells[cell].lock().unwrap();
        for prior in shadow.writes.iter().chain(&shadow.reads) {
            if !prior.before(clock) {
                self.flag(prior, label, cell);
            }
        }
        record(&mut shadow.writes, Detector::epoch(tid, clock, label));
    }

    /// Every race observed so far.
    pub fn races(&self) -> BTreeSet<DetectedRace> {
        self.races.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_makes_child_and_parent_future_concurrent() {
        let mut parent = VClock::new();
        parent.bump(0);
        let child = VClock::fork(&mut parent, 0, 1);
        // Child sees the parent's past…
        assert!(child.get(0) >= 1);
        // …but not the parent's post-fork bump, and vice versa.
        assert!(child.get(0) < parent.get(0));
        assert!(parent.get(1) < child.get(1));
    }

    #[test]
    fn unordered_writes_race_and_ordered_do_not() {
        let d = Detector::new(1);
        let mut parent = VClock::new();
        parent.bump(0);
        d.on_write(0, Label(0), 0, &parent);
        let child = VClock::fork(&mut parent, 0, 1);
        // The child's write is after the fork: ordered after the parent's
        // earlier write, concurrent with nothing. No race.
        d.on_write(0, Label(1), 1, &child);
        assert!(d.races().is_empty());
        // The parent's next write is concurrent with the child's.
        d.on_write(0, Label(2), 0, &parent);
        let races = d.races();
        assert_eq!(races.len(), 1);
        let r = races.iter().next().unwrap();
        assert_eq!(r.pair, (Label(1), Label(2)));
        assert_eq!(r.cell, 0);
    }

    #[test]
    fn finish_join_orders_child_before_waiter() {
        let d = Detector::new(1);
        let mut parent = VClock::new();
        parent.bump(0);
        let child = VClock::fork(&mut parent, 0, 1);
        d.on_write(0, Label(0), 1, &child);
        // finish: the scope accumulated the child's final clock; the
        // parent joins it before continuing.
        parent.join(&child);
        d.on_write(0, Label(1), 0, &parent);
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_read_is_not_a_race_but_read_write_is() {
        let d = Detector::new(1);
        let mut parent = VClock::new();
        parent.bump(0);
        let child = VClock::fork(&mut parent, 0, 1);
        d.on_read(0, Label(0), 0, &parent);
        d.on_read(0, Label(1), 1, &child);
        assert!(d.races().is_empty());
        d.on_write(0, Label(2), 1, &child);
        let races = d.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races.iter().next().unwrap().pair, (Label(0), Label(2)));
    }

    #[test]
    fn same_label_epochs_dedupe_without_losing_the_race() {
        let d = Detector::new(1);
        let mut parent = VClock::new();
        parent.bump(0);
        // A loop writing the same cell at the same label many times.
        for _ in 0..100 {
            d.on_write(0, Label(0), 0, &parent);
            parent.bump(0);
        }
        let child = VClock::fork(&mut parent, 0, 1);
        drop(child);
        // Shadow kept one epoch, not a hundred.
        assert_eq!(d.cells[0].lock().unwrap().writes.len(), 1);
        // A concurrent write still races it.
        let other = VClock::new();
        d.on_write(0, Label(1), 2, &other);
        assert_eq!(d.races().len(), 1);
    }
}
